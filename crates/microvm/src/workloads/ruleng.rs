//! `ruleng`: the `_202_jess` analogue.
//!
//! An expert-system shell solves a series of problems; each problem
//! runs many match/fire cycles whose match loops are the fine-grained
//! repetition units. The three-level hierarchy (match unit ~0.5–5K,
//! problem ~30K, whole run) gives the baseline a rich Table 1(b)
//! profile: many phases at small MPL values that coalesce smoothly as
//! MPL grows, as jess does.

use crate::{ArgExpr, Program, ProgramBuilder, TakenDist, Trip};

/// Builds the `ruleng` program. `scale` multiplies the number of
/// problems solved.
#[must_use]
pub fn ruleng(scale: u32) -> Program {
    let mut b = ProgramBuilder::new();
    let fire_rule = b.declare("fire_rule");
    let main = b.declare("main");

    // Fire: execute the selected rule's right-hand side (small; part
    // of the transition texture between match units).
    b.define(fire_rule, |f| {
        f.branches(2, TakenDist::Bernoulli(0.6));
        f.repeat(Trip::Uniform(10, 40), |actions| {
            actions.branches(2, TakenDist::Bernoulli(0.55));
        });
    });

    b.define(main, |f| {
        // Load the rule base.
        f.repeat(Trip::Fixed(1500), |load| {
            load.branches(2, TakenDist::Bernoulli(0.7));
        });
        // Problems (epochs).
        f.repeat(Trip::Fixed(12 * scale), |problems| {
            problems.branches(3, TakenDist::Bernoulli(0.5)); // problem setup
                                                             // Cycles within one problem: one loop execution per
                                                             // problem, the mid-level repetition construct (~30K).
            problems.repeat(Trip::Fixed(20), |cycles| {
                cycles.branches(2, TakenDist::Bernoulli(0.5)); // agenda check
                                                               // Match work: the unit-level loop execution. Trip
                                                               // counts vary widely so unit phases straddle the small
                                                               // MPL values.
                cycles.repeat(Trip::Uniform(100, 900), |match_work| {
                    match_work.branches(2, TakenDist::Bernoulli(0.4)); // alpha tests
                    match_work.cond(
                        TakenDist::Bernoulli(0.15), // beta join needed
                        |join| {
                            join.branches(2, TakenDist::Bernoulli(0.5));
                        },
                        |_| {},
                    );
                });
                cycles.branches(2, TakenDist::Bernoulli(0.35)); // conflict resolution
                cycles.call(fire_rule, ArgExpr::Const(0));
            });
        });
    });

    b.entry(main);
    b.build().expect("ruleng is a valid program")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Interpreter;
    use opd_trace::{ExecutionTrace, TraceStats};

    #[test]
    fn shape_matches_design() {
        let p = ruleng(1);
        let mut t = ExecutionTrace::new();
        Interpreter::new(&p, 5).run(&mut t).unwrap();
        let s = TraceStats::measure(&t);
        // 12 problems x 20 cycles x (~2.2K match + fire) + 3K load.
        assert!(s.dynamic_branches > 200_000, "{}", s.dynamic_branches);
        assert_eq!(s.method_invocations, 12 * 20 + 1);
        assert_eq!(s.recursion_roots, 0);
        // load + problems + 12 cycle loops + 240 match units +
        // 240 fire action loops + per-iteration join loops.
        assert!(s.loop_executions > 400, "{}", s.loop_executions);
    }
}
