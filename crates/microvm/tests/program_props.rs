//! Property tests: arbitrary (valid) programs build, run, terminate,
//! and emit balanced, deterministic traces.

use proptest::prelude::*;

use opd_microvm::{ArgExpr, Interpreter, ProgramBuilder, TakenDist, Trip};
use opd_trace::{CallLoopEventKind, ExecutionTrace, TraceStats};

/// A recipe for one statement; interpreted recursively into builder
/// calls with bounded nesting.
#[derive(Debug, Clone)]
enum StmtSpec {
    Branch(u8),
    Branches(u8),
    Loop(u8, Vec<StmtSpec>),
    Cond(Vec<StmtSpec>, Vec<StmtSpec>),
    CallHelper,
    Recurse,
}

fn arb_stmt(depth: u32) -> impl Strategy<Value = StmtSpec> {
    let leaf = prop_oneof![
        (0u8..=4).prop_map(StmtSpec::Branch),
        (1u8..4).prop_map(StmtSpec::Branches),
        Just(StmtSpec::CallHelper),
        Just(StmtSpec::Recurse),
    ];
    leaf.prop_recursive(depth, 24, 4, |inner| {
        prop_oneof![
            ((1u8..5), prop::collection::vec(inner.clone(), 1..4))
                .prop_map(|(n, body)| StmtSpec::Loop(n, body)),
            (
                prop::collection::vec(inner.clone(), 0..3),
                prop::collection::vec(inner, 0..3)
            )
                .prop_map(|(t, e)| StmtSpec::Cond(t, e)),
        ]
    })
}

fn dist_of(tag: u8) -> TakenDist {
    match tag {
        0 => TakenDist::Always,
        1 => TakenDist::Never,
        2 => TakenDist::Bernoulli(0.5),
        3 => TakenDist::Alternating,
        _ => TakenDist::Periodic(3),
    }
}

fn emit(
    specs: &[StmtSpec],
    b: &mut opd_microvm::BlockBuilder<'_>,
    helper: opd_microvm::FuncId,
    me: opd_microvm::FuncId,
) {
    for spec in specs {
        match spec {
            StmtSpec::Branch(tag) => {
                b.branch(dist_of(*tag));
            }
            StmtSpec::Branches(n) => {
                b.branches(u32::from(*n), TakenDist::Bernoulli(0.4));
            }
            StmtSpec::Loop(n, body) => {
                b.repeat(Trip::Fixed(u32::from(*n)), |l| emit(body, l, helper, me));
            }
            StmtSpec::Cond(t, e) => {
                b.cond(
                    TakenDist::Bernoulli(0.5),
                    |tb| emit(t, tb, helper, me),
                    |eb| emit(e, eb, helper, me),
                );
            }
            StmtSpec::CallHelper => {
                b.call(helper, ArgExpr::Const(2));
            }
            StmtSpec::Recurse => {
                b.if_arg_positive(|g| {
                    g.call(me, ArgExpr::Dec);
                });
            }
        }
    }
}

fn build_program(specs: &[StmtSpec]) -> Option<opd_microvm::Program> {
    let mut b = ProgramBuilder::new();
    let helper = b.declare("helper");
    let main = b.declare("main");
    b.define(helper, |f| {
        f.branch(TakenDist::Bernoulli(0.6));
        f.repeat(Trip::Arg, |l| {
            l.branch(TakenDist::Alternating);
        });
    });
    let mut emitted_any = false;
    b.define(main, |f| {
        // Guarantee at least one branch so traces are never empty.
        f.branch(TakenDist::Always);
        emit(specs, f, helper, main);
        emitted_any = true;
    });
    assert!(emitted_any);
    b.entry(main).entry_arg(3);
    b.build().ok()
}

fn balanced(trace: &ExecutionTrace) -> bool {
    let mut stack: Vec<CallLoopEventKind> = Vec::new();
    for ev in trace.events() {
        if ev.kind().is_enter() {
            stack.push(ev.kind());
        } else {
            match stack.pop() {
                Some(open) if open.matching() == ev.kind() => {}
                _ => return false,
            }
        }
    }
    stack.is_empty()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn arbitrary_programs_run_and_balance(
        specs in prop::collection::vec(arb_stmt(3), 0..6),
        seed in 0u64..1_000,
        fuel in 1u64..50_000,
    ) {
        let Some(program) = build_program(&specs) else {
            // Only possible rejection is an empty loop body, which the
            // generator cannot produce.
            unreachable!("generated programs are valid");
        };
        let mut trace = ExecutionTrace::new();
        let summary = Interpreter::new(&program, seed)
            .with_fuel(fuel)
            .run(&mut trace)
            .expect("bounded recursion cannot exceed the depth limit");
        prop_assert_eq!(summary.branches, trace.branches().len() as u64);
        prop_assert!(summary.branches <= fuel);
        prop_assert!(balanced(&trace), "unbalanced events");
        // Offsets are non-decreasing and within bounds by
        // construction; stats never panic.
        let stats = TraceStats::measure(&trace);
        prop_assert_eq!(stats.dynamic_branches, summary.branches);
    }

    #[test]
    fn equal_seeds_reproduce_exactly(
        specs in prop::collection::vec(arb_stmt(2), 0..5),
        seed in 0u64..100,
    ) {
        let program = build_program(&specs).expect("valid");
        let run = |p: &opd_microvm::Program| {
            let mut t = ExecutionTrace::new();
            Interpreter::new(p, seed).with_fuel(20_000).run(&mut t).unwrap();
            t
        };
        prop_assert_eq!(run(&program), run(&program));
    }

    #[test]
    fn different_seeds_only_change_dynamic_outcomes(
        specs in prop::collection::vec(arb_stmt(2), 1..5),
    ) {
        let program = build_program(&specs).expect("valid");
        let sites = |seed: u64| {
            let mut t = ExecutionTrace::new();
            Interpreter::new(&program, seed).with_fuel(5_000).run(&mut t).unwrap();
            t.branches()
                .iter()
                .map(|e| e.site())
                .collect::<std::collections::HashSet<_>>()
        };
        // Site sets may differ in rare cases (different arms taken),
        // but all sites must come from the same static program: the
        // union is bounded by the program's site count.
        let a = sites(1);
        let b = sites(2);
        let union = a.union(&b).count();
        prop_assert!(union <= program.site_count());
    }
}
