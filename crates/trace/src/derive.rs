//! Derived profile streams: alternative inputs to the framework.
//!
//! Section 2 of the paper stresses that its input is abstract: "a wide
//! variety of inputs, such as the methods invoked, basic blocks,
//! branches, addresses loaded, or instructions executed" can be the
//! profile. This module derives two such alternatives from a recorded
//! execution:
//!
//! * [`site_profile`] — the branch trace with the dynamic taken bit
//!   stripped, leaving pure control-flow *locations* (a basic-block-
//!   like profile: less dynamic noise, smaller element universe);
//! * [`method_profile`] — one element per method invocation (the
//!   method-level profile of Georges et al., which the paper's
//!   baseline discussion cites).
//!
//! Both produce ordinary [`BranchTrace`]s, so every detector in the
//! workspace runs on them unchanged. Note that element *offsets* in a
//! derived stream are positions in that stream, so oracles must be
//! built at the matching granularity (the `inputs` experiment handles
//! the mapping).

use crate::{BranchTrace, CallLoopEventKind, ExecutionTrace, ProfileElement};

/// The branch trace with every element's taken bit cleared: a stream
/// of static control-flow locations.
///
/// # Examples
///
/// ```
/// use opd_trace::{site_profile, ExecutionTrace, MethodId, ProfileElement, TraceSink};
///
/// let mut t = ExecutionTrace::new();
/// t.record_branch(ProfileElement::new(MethodId::new(1), 4, true));
/// t.record_branch(ProfileElement::new(MethodId::new(1), 4, false));
/// let sites = site_profile(&t);
/// // Both executions collapse onto one element value.
/// assert_eq!(sites.as_slice()[0], sites.as_slice()[1]);
/// ```
#[must_use]
pub fn site_profile(trace: &ExecutionTrace) -> BranchTrace {
    trace
        .branches()
        .iter()
        .map(|e| ProfileElement::from_site(e.site(), false))
        .collect()
}

/// One profile element per method invocation, in call order: the
/// method-level execution profile. The element encodes the method id
/// (offset 0, taken bit clear).
#[must_use]
pub fn method_profile(trace: &ExecutionTrace) -> BranchTrace {
    trace
        .events()
        .iter()
        .filter_map(|ev| match ev.kind() {
            CallLoopEventKind::MethodEnter(m) => Some(ProfileElement::new(m, 0, false)),
            _ => None,
        })
        .collect()
}

/// For every element of a derived stream, the corresponding offset in
/// the original branch trace — used to map detected intervals back to
/// branch offsets for scoring.
///
/// For [`site_profile`] the mapping is the identity (same length); for
/// [`method_profile`] it is each method-entry event's branch offset.
#[must_use]
pub fn method_profile_offsets(trace: &ExecutionTrace) -> Vec<u64> {
    trace
        .events()
        .iter()
        .filter_map(|ev| match ev.kind() {
            CallLoopEventKind::MethodEnter(_) => Some(ev.offset()),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LoopId, MethodId, TraceSink};

    fn sample() -> ExecutionTrace {
        let mut t = ExecutionTrace::new();
        t.record_method_enter(MethodId::new(1));
        for i in 0..5 {
            t.record_branch(ProfileElement::new(MethodId::new(1), i, i % 2 == 0));
        }
        t.record_loop_enter(LoopId::new(0));
        t.record_method_enter(MethodId::new(2));
        t.record_branch(ProfileElement::new(MethodId::new(2), 0, true));
        t.record_method_exit(MethodId::new(2));
        t.record_loop_exit(LoopId::new(0));
        t.record_method_exit(MethodId::new(1));
        t
    }

    #[test]
    fn site_profile_strips_taken_bits() {
        let t = sample();
        let sites = site_profile(&t);
        assert_eq!(sites.len(), t.branches().len());
        assert!(sites.iter().all(|e| !e.taken()));
        for (s, b) in sites.iter().zip(t.branches()) {
            assert_eq!(s.site(), b.site());
        }
    }

    #[test]
    fn site_profile_shrinks_element_universe() {
        let t = sample();
        use std::collections::HashSet;
        let raw: HashSet<_> = t.branches().iter().copied().collect();
        let sites: HashSet<_> = site_profile(&t).iter().copied().collect();
        assert!(sites.len() <= raw.len());
    }

    #[test]
    fn method_profile_lists_invocations_in_order() {
        let t = sample();
        let methods = method_profile(&t);
        assert_eq!(methods.len(), 2);
        assert_eq!(methods.as_slice()[0].site().method(), MethodId::new(1));
        assert_eq!(methods.as_slice()[1].site().method(), MethodId::new(2));
        let offsets = method_profile_offsets(&t);
        assert_eq!(offsets, vec![0, 5]);
    }

    #[test]
    fn empty_trace_derives_empty_profiles() {
        let t = ExecutionTrace::new();
        assert!(site_profile(&t).is_empty());
        assert!(method_profile(&t).is_empty());
        assert!(method_profile_offsets(&t).is_empty());
    }
}
