//! Sampled profiles: trading profile-collection overhead for detector
//! accuracy.
//!
//! The paper names profile collection as the first of the three
//! overhead sources in a phase-aware optimization system (Section 7)
//! and cites sampled remote profiling as a client of phase detection.
//! The standard mitigation is to emit only every k-th profile
//! element; [`subsample`] models it, and the `sampling` experiment
//! binary measures what it costs in detection accuracy.

use crate::{BranchTrace, PhaseInterval};

/// Keeps every `stride`-th element of a branch trace (elements 0,
/// `stride`, `2·stride`, …) — a systematic sampling of the profile
/// stream that reduces collection overhead by `stride`×.
///
/// # Panics
///
/// Panics if `stride` is zero.
///
/// # Examples
///
/// ```
/// use opd_trace::{subsample, BranchTrace, MethodId, ProfileElement};
///
/// let trace: BranchTrace = (0..10)
///     .map(|i| ProfileElement::new(MethodId::new(0), i, true))
///     .collect();
/// let sampled = subsample(&trace, 4);
/// assert_eq!(sampled.len(), 3); // offsets 0, 4, 8
/// ```
#[must_use]
pub fn subsample(trace: &BranchTrace, stride: usize) -> BranchTrace {
    assert!(stride > 0, "sampling stride must be positive");
    trace.iter().step_by(stride).copied().collect()
}

/// Maps phase intervals detected in a subsampled stream back to
/// full-trace offsets: sample index `i` stands for the `stride`
/// elements starting at `i·stride`. Interval ends are clamped to
/// `total`.
///
/// # Panics
///
/// Panics if `stride` is zero.
#[must_use]
pub fn upsample_intervals(
    intervals: &[PhaseInterval],
    stride: usize,
    total: u64,
) -> Vec<PhaseInterval> {
    assert!(stride > 0, "sampling stride must be positive");
    let stride = stride as u64;
    intervals
        .iter()
        .filter_map(|p| {
            let start = p.start() * stride;
            let end = (p.end() * stride).min(total);
            (start < end).then(|| PhaseInterval::new(start, end))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MethodId, ProfileElement};

    fn trace(n: u32) -> BranchTrace {
        (0..n)
            .map(|i| ProfileElement::new(MethodId::new(0), i % 7, true))
            .collect()
    }

    #[test]
    fn stride_one_is_identity() {
        let t = trace(100);
        assert_eq!(subsample(&t, 1), t);
    }

    #[test]
    fn stride_reduces_length() {
        let t = trace(100);
        assert_eq!(subsample(&t, 2).len(), 50);
        assert_eq!(subsample(&t, 3).len(), 34); // ceil(100/3)
        assert_eq!(subsample(&t, 1_000).len(), 1);
    }

    #[test]
    fn sampled_elements_are_the_right_ones() {
        let t = trace(20);
        let s = subsample(&t, 5);
        let expected: Vec<_> = [0usize, 5, 10, 15]
            .iter()
            .map(|&i| t.as_slice()[i])
            .collect();
        assert_eq!(s.as_slice(), expected.as_slice());
    }

    #[test]
    fn upsample_scales_and_clamps() {
        let iv = [PhaseInterval::new(2, 5), PhaseInterval::new(9, 12)];
        let up = upsample_intervals(&iv, 4, 45);
        assert_eq!(
            up,
            vec![PhaseInterval::new(8, 20), PhaseInterval::new(36, 45)]
        );
    }

    #[test]
    fn upsample_drops_degenerate() {
        // An interval entirely beyond the clamp disappears.
        let iv = [PhaseInterval::new(50, 60)];
        assert!(upsample_intervals(&iv, 4, 100).is_empty());
    }

    #[test]
    fn empty_trace_subsamples_to_empty() {
        assert!(subsample(&BranchTrace::new(), 3).is_empty());
        assert!(upsample_intervals(&[], 3, 10).is_empty());
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn zero_stride_rejected() {
        let _ = subsample(&BranchTrace::new(), 0);
    }
}
