//! A resynchronizing streaming decoder for corrupted trace buffers.
//!
//! [`crate::decode_trace`] is strict: the first malformed record aborts
//! the whole decode. In production, traces arrive over unreliable
//! transports — a single flipped bit should cost one record, not the
//! entire sweep. [`decode_trace_resync`] therefore *never fails*: it
//! skips corrupt records, counts every skip per category in a
//! [`CorruptionReport`], and keeps going.
//!
//! Resynchronization is possible because both record regions are
//! fixed-width (8-byte packed branches, 13-byte events): after a bad
//! record the decoder is still aligned on the next record boundary, so
//! one corruption never cascades. Alignment is only lost at a truncated
//! tail, which is counted as `truncated_tail_bytes` plus the missing
//! record counts.
//!
//! The report's categories are designed to match a fault injector's
//! ledger exactly (see the `opd-faults` crate): on a seeded corruption
//! run, `bad_elements` equals the number of detectable element flips,
//! `out_of_order_events` the number of order-breaking swaps, and so on.

use crate::codec::{
    decode_event_kind, read_header, CodecError, Reader, BRANCH_RECORD_LEN, EVENT_RECORD_LEN,
    TAG_LOOP_ENTER, TAG_METHOD_EXIT,
};
use crate::{BranchTrace, CallLoopEvent, CallLoopTrace, ExecutionTrace, MethodId, ProfileElement};

/// Per-category counts of everything [`decode_trace_resync`] skipped.
///
/// A clean buffer decodes with a report equal to
/// `CorruptionReport::default()`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct CorruptionReport {
    /// Header damage (bad magic, bad version, or a cut inside the
    /// header). When set, the decode produced an empty trace.
    pub bad_header: Option<CodecError>,
    /// Branch records whose packed value had reserved bits set.
    pub bad_elements: u64,
    /// Event records with an unknown tag byte.
    pub bad_event_tags: u64,
    /// Method-event records whose id exceeded the 24-bit range.
    pub bad_event_ids: u64,
    /// Events whose offset decreased relative to the last accepted
    /// event.
    pub out_of_order_events: u64,
    /// Events whose offset pointed past the *declared* branch count —
    /// a corrupt offset field. Offsets that are merely displaced
    /// because earlier branch records were dropped are clamped, not
    /// counted here.
    pub out_of_range_events: u64,
    /// Declared branch records missing because the buffer ended early.
    pub missing_branches: u64,
    /// Declared event records missing because the buffer ended early.
    pub missing_events: u64,
    /// The buffer ended before the event-count field, so the event
    /// region's size is unknown.
    pub missing_event_count: bool,
    /// Bytes of partial trailing record discarded at the cut point.
    pub truncated_tail_bytes: u64,
}

impl CorruptionReport {
    /// Returns `true` if the buffer decoded without any damage.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        *self == CorruptionReport::default()
    }

    /// Total number of whole records skipped (corrupt or missing).
    #[must_use]
    pub fn records_lost(&self) -> u64 {
        self.bad_elements
            + self.bad_event_tags
            + self.bad_event_ids
            + self.out_of_order_events
            + self.out_of_range_events
            + self.missing_branches
            + self.missing_events
    }
}

impl core::fmt::Display for CorruptionReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.is_clean() {
            return f.write_str("clean");
        }
        if let Some(h) = &self.bad_header {
            return write!(f, "unrecoverable header: {h}");
        }
        if self.missing_event_count {
            f.write_str("event region missing; ")?;
        }
        write!(
            f,
            "{} record(s) lost ({} bad element(s), {} bad tag(s), {} bad id(s), \
             {} out-of-order, {} out-of-range, {} missing branch(es), \
             {} missing event(s), {} tail byte(s))",
            self.records_lost(),
            self.bad_elements,
            self.bad_event_tags,
            self.bad_event_ids,
            self.out_of_order_events,
            self.out_of_range_events,
            self.missing_branches,
            self.missing_events,
            self.truncated_tail_bytes,
        )
    }
}

/// Decodes as much of a (possibly corrupted) trace buffer as possible.
///
/// Never fails and never panics: malformed records are skipped and
/// counted in the returned [`CorruptionReport`]. Unrecoverable header
/// damage yields an empty trace with `bad_header` set.
///
/// # Examples
///
/// ```
/// use opd_trace::{decode_trace_resync, encode_trace, ExecutionTrace, MethodId,
///                 ProfileElement, TraceSink};
///
/// let mut t = ExecutionTrace::new();
/// t.record_branch(ProfileElement::new(MethodId::new(1), 2, true));
/// let mut bytes = encode_trace(&t).to_vec();
/// bytes[14 + 7] = 0xFF; // set reserved bits in the only branch record
///
/// let (decoded, report) = decode_trace_resync(&bytes);
/// assert_eq!(decoded.branches().len(), 0);
/// assert_eq!(report.bad_elements, 1);
/// ```
#[must_use]
pub fn decode_trace_resync(buf: &[u8]) -> (ExecutionTrace, CorruptionReport) {
    let mut report = CorruptionReport::default();
    let mut r = Reader::new(buf);

    let n_branches = match read_header(&mut r) {
        Ok(n) => n,
        Err(e) => {
            report.bad_header = Some(e);
            return (ExecutionTrace::new(), report);
        }
    };

    // Branch region: fixed 8-byte records, so a bad element costs one
    // record and the next read is still aligned.
    let whole_branch_records =
        ((r.remaining() / BRANCH_RECORD_LEN) as u64).min(n_branches) as usize;
    let mut branches = BranchTrace::with_capacity(whole_branch_records);
    for _ in 0..whole_branch_records {
        // Invariant: `whole_branch_records` was computed from
        // `remaining()`, so this read cannot hit the end of the buffer.
        let Ok(raw) = r.u64_le() else { break };
        match ProfileElement::try_from(raw) {
            Ok(elem) => branches.push(elem),
            Err(_) => report.bad_elements += 1,
        }
    }
    if (whole_branch_records as u64) < n_branches {
        // The buffer ended inside the branch region: everything after
        // it (including the event region) is gone.
        report.missing_branches = n_branches - whole_branch_records as u64;
        report.truncated_tail_bytes = r.remaining() as u64;
        let trace = finish(branches, CallLoopTrace::new());
        return (trace, report);
    }

    let n_events = match r.u64_le() {
        Ok(n) => n,
        Err(_) => {
            report.missing_event_count = true;
            report.truncated_tail_bytes = r.remaining() as u64;
            let trace = finish(branches, CallLoopTrace::new());
            return (trace, report);
        }
    };

    // Event region: fixed 13-byte records (tag, id, offset). Offsets
    // are validated against the *declared* branch count — an offset
    // within it is sound data even if earlier corrupt branch records
    // were dropped, so it is clamped to the decoded length rather than
    // discarded (one lost record must not cascade into lost events).
    let whole_event_records = ((r.remaining() / EVENT_RECORD_LEN) as u64).min(n_events) as usize;
    let branch_len = branches.len() as u64;
    let mut events = CallLoopTrace::new();
    let mut last_offset = 0u64;
    for _ in 0..whole_event_records {
        let (Ok(tag), Ok(id), Ok(offset)) = (r.u8(), r.u32_le(), r.u64_le()) else {
            break;
        };
        if !(TAG_LOOP_ENTER..=TAG_METHOD_EXIT).contains(&tag) {
            report.bad_event_tags += 1;
            continue;
        }
        if offset < last_offset {
            report.out_of_order_events += 1;
            continue;
        }
        if offset > n_branches {
            report.out_of_range_events += 1;
            continue;
        }
        let Ok(kind) = decode_event_kind(tag, id) else {
            // The tag was valid, so only the method-id range check can
            // have failed here.
            report.bad_event_ids += 1;
            continue;
        };
        last_offset = offset;
        // Invariant: offsets were checked non-decreasing above (and
        // clamping by a constant preserves that), so this push cannot
        // fail.
        let _ = events.try_push(CallLoopEvent::new(kind, offset.min(branch_len)));
    }
    if (whole_event_records as u64) < n_events {
        report.missing_events = n_events - whole_event_records as u64;
        report.truncated_tail_bytes = r.remaining() as u64;
    }

    (finish(branches, events), report)
}

/// Assembles the decoded streams; all offsets were validated against
/// the decoded branch length, so this cannot fail.
fn finish(branches: BranchTrace, events: CallLoopTrace) -> ExecutionTrace {
    ExecutionTrace::try_from_parts(branches, events).unwrap_or_else(|_| {
        debug_assert!(false, "resync produced an inconsistent trace");
        ExecutionTrace::new()
    })
}

const _: () = {
    // The resync arithmetic assumes the method-id bound checked by
    // `decode_event_kind` matches `MethodId::MAX`.
    assert!(MethodId::MAX == (1 << 24) - 1);
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{encode_trace, EVENT_COUNT_LEN, HEADER_LEN};
    use crate::{LoopId, TraceSink};

    fn sample() -> ExecutionTrace {
        let mut t = ExecutionTrace::new();
        t.record_method_enter(MethodId::new(3));
        t.record_loop_enter(LoopId::new(1));
        for i in 0..32 {
            t.record_branch(ProfileElement::new(MethodId::new(3), i, i % 2 == 0));
        }
        t.record_loop_exit(LoopId::new(1));
        t.record_method_exit(MethodId::new(3));
        t
    }

    #[test]
    fn clean_buffer_decodes_clean() {
        let t = sample();
        let (decoded, report) = decode_trace_resync(&encode_trace(&t));
        assert!(report.is_clean(), "{report}");
        assert_eq!(decoded, t);
    }

    #[test]
    fn bad_element_skipped_and_counted() {
        let t = sample();
        let mut bytes = encode_trace(&t).to_vec();
        // Corrupt branch record #5's reserved byte.
        bytes[HEADER_LEN + 5 * BRANCH_RECORD_LEN + 7] = 0xAB;
        let (decoded, report) = decode_trace_resync(&bytes);
        assert_eq!(report.bad_elements, 1);
        assert_eq!(decoded.branches().len(), t.branches().len() - 1);
        // Events are intact: resync never lost alignment.
        assert_eq!(decoded.events().len(), t.events().len());
    }

    #[test]
    fn truncated_branch_region_counts_missing() {
        let t = sample();
        let bytes = encode_trace(&t);
        // Cut in the middle of branch record #10.
        let cut = HEADER_LEN + 10 * BRANCH_RECORD_LEN + 3;
        let (decoded, report) = decode_trace_resync(&bytes[..cut]);
        assert_eq!(decoded.branches().len(), 10);
        assert_eq!(report.missing_branches, 32 - 10);
        assert_eq!(report.truncated_tail_bytes, 3);
    }

    #[test]
    fn bad_event_tag_skipped() {
        let t = sample();
        let bytes = encode_trace(&t);
        let events_at = HEADER_LEN + 32 * BRANCH_RECORD_LEN + EVENT_COUNT_LEN;
        let mut bytes = bytes.to_vec();
        bytes[events_at] = 0x77; // first event's tag
        let (decoded, report) = decode_trace_resync(&bytes);
        assert_eq!(report.bad_event_tags, 1);
        assert_eq!(decoded.events().len(), t.events().len() - 1);
    }

    #[test]
    fn out_of_range_event_skipped() {
        let t = sample();
        let mut bytes = encode_trace(&t).to_vec();
        let last_event_offset_at = bytes.len() - 8;
        bytes[last_event_offset_at..].copy_from_slice(&u64::MAX.to_le_bytes());
        let (decoded, report) = decode_trace_resync(&bytes);
        assert_eq!(report.out_of_range_events, 1);
        assert_eq!(decoded.events().len(), t.events().len() - 1);
    }

    #[test]
    fn header_damage_yields_empty_trace() {
        let (decoded, report) = decode_trace_resync(b"junk data entirely");
        assert_eq!(decoded, ExecutionTrace::new());
        assert_eq!(report.bad_header, Some(CodecError::BadMagic));
        let (_, report) = decode_trace_resync(&encode_trace(&sample())[..7]);
        assert!(matches!(
            report.bad_header,
            Some(CodecError::Truncated { .. })
        ));
    }

    #[test]
    fn every_cut_point_is_panic_free() {
        let bytes = encode_trace(&sample());
        for cut in 0..bytes.len() {
            let (_, report) = decode_trace_resync(&bytes[..cut]);
            // Something must always be reported for a strict prefix.
            assert!(!report.is_clean(), "cut {cut}");
        }
    }

    #[test]
    fn report_displays() {
        assert_eq!(CorruptionReport::default().to_string(), "clean");
        let r = CorruptionReport {
            bad_elements: 2,
            ..CorruptionReport::default()
        };
        assert!(r.to_string().contains("2 bad element(s)"), "{r}");
    }
}
