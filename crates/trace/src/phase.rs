//! Phase/transition labels over a profile, and the intervals and
//! boundaries derived from them.
//!
//! Both the online detectors and the offline baseline solution emit one
//! [`PhaseState`] per profile element. Phase *boundaries* are the points
//! where a `T` is followed by a `P` (a phase start) or a `P` by a `T`
//! (a phase end), exactly as defined in Section 2 of the paper.

use core::fmt;

/// The state of one profile element: in phase or in transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PhaseState {
    /// The element is part of a stable phase (`P`).
    Phase,
    /// The element is part of a transition between phases (`T`).
    #[default]
    Transition,
}

impl PhaseState {
    /// Returns `true` for [`PhaseState::Phase`].
    #[must_use]
    pub fn is_phase(self) -> bool {
        matches!(self, PhaseState::Phase)
    }

    /// Returns `true` for [`PhaseState::Transition`].
    #[must_use]
    pub fn is_transition(self) -> bool {
        matches!(self, PhaseState::Transition)
    }
}

impl fmt::Display for PhaseState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PhaseState::Phase => "P",
            PhaseState::Transition => "T",
        })
    }
}

/// A half-open interval `[start, end)` of profile-element offsets that
/// constitutes one phase.
///
/// # Examples
///
/// ```
/// use opd_trace::PhaseInterval;
/// let p = PhaseInterval::new(10, 50);
/// assert_eq!(p.len(), 40);
/// assert!(p.contains(10) && !p.contains(50));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PhaseInterval {
    start: u64,
    end: u64,
}

impl PhaseInterval {
    /// Creates a phase interval.
    ///
    /// # Panics
    ///
    /// Panics if `start >= end` (phases are non-empty).
    #[must_use]
    pub fn new(start: u64, end: u64) -> Self {
        assert!(start < end, "empty phase interval [{start}, {end})");
        PhaseInterval { start, end }
    }

    /// Returns the offset of the first element in the phase.
    #[must_use]
    pub fn start(self) -> u64 {
        self.start
    }

    /// Returns the offset one past the last element in the phase.
    #[must_use]
    pub fn end(self) -> u64 {
        self.end
    }

    /// Returns the number of profile elements in the phase.
    #[must_use]
    pub fn len(self) -> u64 {
        self.end - self.start
    }

    /// Phases are never empty; provided for API completeness.
    #[must_use]
    pub fn is_empty(self) -> bool {
        false
    }

    /// Returns `true` if `offset` lies within the interval.
    #[must_use]
    pub fn contains(self, offset: u64) -> bool {
        self.start <= offset && offset < self.end
    }

    /// Returns `true` if the two intervals share at least one element.
    #[must_use]
    pub fn overlaps(self, other: PhaseInterval) -> bool {
        self.start < other.end && other.start < self.end
    }
}

impl fmt::Display for PhaseInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// Whether a boundary starts or ends a phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum BoundaryKind {
    /// A `T -> P` edge: the phase starts at this offset.
    Start,
    /// A `P -> T` edge: the phase ended just before this offset.
    End,
}

/// One phase boundary: a state change at a profile-element offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Boundary {
    /// Start or end of a phase.
    pub kind: BoundaryKind,
    /// The element offset at which the new state takes effect.
    pub offset: u64,
}

impl fmt::Display for Boundary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            BoundaryKind::Start => write!(f, "start@{}", self.offset),
            BoundaryKind::End => write!(f, "end@{}", self.offset),
        }
    }
}

/// A sequence of per-element phase states, one per profile element.
///
/// # Examples
///
/// ```
/// use opd_trace::{intervals_of, PhaseState, StateSeq};
///
/// let mut seq = StateSeq::new();
/// for s in [PhaseState::Transition, PhaseState::Phase, PhaseState::Phase] {
///     seq.push(s);
/// }
/// let phases = intervals_of(&seq);
/// assert_eq!(phases.len(), 1);
/// assert_eq!((phases[0].start(), phases[0].end()), (1, 3));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StateSeq {
    states: Vec<PhaseState>,
}

impl StateSeq {
    /// Creates an empty state sequence.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty sequence with room for `capacity` states.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        StateSeq {
            states: Vec::with_capacity(capacity),
        }
    }

    /// Appends one state.
    pub fn push(&mut self, state: PhaseState) {
        self.states.push(state);
    }

    /// Appends `n` copies of `state` (used with skip factors > 1, where
    /// one detector step labels several elements).
    pub fn push_n(&mut self, state: PhaseState, n: usize) {
        self.states.resize(self.states.len() + n, state);
    }

    /// Returns the number of labelled elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Returns `true` if no elements are labelled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Returns the state of element `offset`, if labelled.
    #[must_use]
    pub fn get(&self, offset: usize) -> Option<PhaseState> {
        self.states.get(offset).copied()
    }

    /// Returns the labels as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[PhaseState] {
        &self.states
    }

    /// Iterates over the labels.
    pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, PhaseState>> {
        self.states.iter().copied()
    }

    /// Returns the number of elements labelled `P`.
    #[must_use]
    pub fn phase_count(&self) -> usize {
        self.states.iter().filter(|s| s.is_phase()).count()
    }
}

impl FromIterator<PhaseState> for StateSeq {
    fn from_iter<I: IntoIterator<Item = PhaseState>>(iter: I) -> Self {
        StateSeq {
            states: iter.into_iter().collect(),
        }
    }
}

impl Extend<PhaseState> for StateSeq {
    fn extend<I: IntoIterator<Item = PhaseState>>(&mut self, iter: I) {
        self.states.extend(iter);
    }
}

impl AsRef<[PhaseState]> for StateSeq {
    fn as_ref(&self) -> &[PhaseState] {
        &self.states
    }
}

/// Extracts the maximal phase intervals from a state sequence.
///
/// A phase interval is a maximal run of `P` states; a trailing run that
/// reaches the end of the sequence is closed at `seq.len()`.
#[must_use]
pub fn intervals_of(seq: &StateSeq) -> Vec<PhaseInterval> {
    let mut out = Vec::new();
    let mut run_start: Option<u64> = None;
    for (i, s) in seq.iter().enumerate() {
        match (run_start, s.is_phase()) {
            (None, true) => run_start = Some(i as u64),
            (Some(start), false) => {
                out.push(PhaseInterval::new(start, i as u64));
                run_start = None;
            }
            _ => {}
        }
    }
    if let Some(start) = run_start {
        out.push(PhaseInterval::new(start, seq.len() as u64));
    }
    out
}

/// Reconstructs a state sequence of length `len` from phase intervals.
///
/// # Panics
///
/// Panics if any interval extends past `len`.
#[must_use]
pub fn states_from_intervals(intervals: &[PhaseInterval], len: u64) -> StateSeq {
    let mut seq = StateSeq {
        states: vec![PhaseState::Transition; len as usize],
    };
    for iv in intervals {
        assert!(iv.end() <= len, "interval {iv} exceeds trace length {len}");
        for s in &mut seq.states[iv.start() as usize..iv.end() as usize] {
            *s = PhaseState::Phase;
        }
    }
    seq
}

/// Lists the phase boundaries (start and end edges) of a set of
/// intervals, in offset order.
#[must_use]
pub fn boundaries_of(intervals: &[PhaseInterval]) -> Vec<Boundary> {
    let mut out = Vec::with_capacity(intervals.len() * 2);
    for iv in intervals {
        out.push(Boundary {
            kind: BoundaryKind::Start,
            offset: iv.start(),
        });
        out.push(Boundary {
            kind: BoundaryKind::End,
            offset: iv.end(),
        });
    }
    out.sort_by_key(|b| b.offset);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(pattern: &str) -> StateSeq {
        pattern
            .chars()
            .map(|c| match c {
                'P' => PhaseState::Phase,
                'T' => PhaseState::Transition,
                _ => panic!("bad pattern char {c}"),
            })
            .collect()
    }

    #[test]
    fn intervals_basic() {
        let s = seq("TTPPPTTPPT");
        let iv = intervals_of(&s);
        assert_eq!(iv.len(), 2);
        assert_eq!((iv[0].start(), iv[0].end()), (2, 5));
        assert_eq!((iv[1].start(), iv[1].end()), (7, 9));
    }

    #[test]
    fn intervals_open_at_end() {
        let s = seq("TPPP");
        let iv = intervals_of(&s);
        assert_eq!(iv, vec![PhaseInterval::new(1, 4)]);
    }

    #[test]
    fn intervals_all_phase_and_all_transition() {
        assert_eq!(intervals_of(&seq("PPPP")), vec![PhaseInterval::new(0, 4)]);
        assert!(intervals_of(&seq("TTTT")).is_empty());
        assert!(intervals_of(&StateSeq::new()).is_empty());
    }

    #[test]
    fn roundtrip_states_intervals() {
        let s = seq("TPPTTPPPPT");
        let iv = intervals_of(&s);
        let back = states_from_intervals(&iv, s.len() as u64);
        assert_eq!(back, s);
    }

    #[test]
    fn boundaries_ordering() {
        let iv = vec![PhaseInterval::new(2, 5), PhaseInterval::new(7, 9)];
        let b = boundaries_of(&iv);
        assert_eq!(b.len(), 4);
        assert_eq!(
            b[0],
            Boundary {
                kind: BoundaryKind::Start,
                offset: 2
            }
        );
        assert_eq!(
            b[1],
            Boundary {
                kind: BoundaryKind::End,
                offset: 5
            }
        );
        assert_eq!(b[3].offset, 9);
    }

    #[test]
    fn push_n_labels_bulk() {
        let mut s = StateSeq::new();
        s.push_n(PhaseState::Phase, 3);
        s.push_n(PhaseState::Transition, 2);
        assert_eq!(s.len(), 5);
        assert_eq!(s.phase_count(), 3);
    }

    #[test]
    fn interval_queries() {
        let a = PhaseInterval::new(5, 10);
        let b = PhaseInterval::new(9, 12);
        let c = PhaseInterval::new(10, 12);
        assert!(a.overlaps(b));
        assert!(!a.overlaps(c));
        assert_eq!(a.len(), 5);
        assert!(!a.is_empty());
        assert_eq!(format!("{a}"), "[5, 10)");
    }

    #[test]
    #[should_panic(expected = "empty phase interval")]
    fn empty_interval_rejected() {
        let _ = PhaseInterval::new(4, 4);
    }

    #[test]
    fn state_display() {
        assert_eq!(format!("{}", PhaseState::Phase), "P");
        assert_eq!(format!("{}", PhaseState::Transition), "T");
        assert!(PhaseState::default().is_transition());
    }
}
