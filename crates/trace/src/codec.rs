//! Compact binary serialization of execution traces.
//!
//! The format is a simple versioned container so traces can be captured
//! once (e.g. a long MicroVM run) and replayed through many detector
//! configurations:
//!
//! ```text
//! magic  b"OPDT"
//! version u16 LE        (currently 1)
//! branch_count u64 LE   then branch_count packed u64 elements
//! event_count u64 LE    then per event: tag u8, id u32 LE, offset u64 LE
//! ```

use core::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::{
    BranchTrace, CallLoopEvent, CallLoopEventKind, CallLoopTrace, ExecutionTrace, LoopId, MethodId,
    ProfileElement,
};

const MAGIC: &[u8; 4] = b"OPDT";
const VERSION: u16 = 1;

const TAG_LOOP_ENTER: u8 = 0;
const TAG_LOOP_EXIT: u8 = 1;
const TAG_METHOD_ENTER: u8 = 2;
const TAG_METHOD_EXIT: u8 = 3;

/// Error produced when decoding a malformed trace buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// The buffer does not start with the `OPDT` magic bytes.
    BadMagic,
    /// The container version is not supported.
    UnsupportedVersion(u16),
    /// The buffer ended before the declared contents.
    Truncated,
    /// A packed element had reserved bits set.
    BadElement(u64),
    /// An event record had an unknown tag byte.
    BadEventTag(u8),
    /// Events were out of order or beyond the branch count.
    InconsistentEvents,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic => f.write_str("missing OPDT magic bytes"),
            CodecError::UnsupportedVersion(v) => write!(f, "unsupported trace version {v}"),
            CodecError::Truncated => f.write_str("trace buffer truncated"),
            CodecError::BadElement(raw) => write!(f, "invalid packed element {raw:#x}"),
            CodecError::BadEventTag(t) => write!(f, "unknown event tag {t}"),
            CodecError::InconsistentEvents => {
                f.write_str("event stream inconsistent with branches")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Encodes an execution trace into a byte buffer.
///
/// # Examples
///
/// ```
/// use opd_trace::{decode_trace, encode_trace, ExecutionTrace, MethodId, ProfileElement, TraceSink};
///
/// let mut t = ExecutionTrace::new();
/// t.record_branch(ProfileElement::new(MethodId::new(1), 2, true));
/// let bytes = encode_trace(&t);
/// assert_eq!(decode_trace(&bytes).unwrap(), t);
/// ```
#[must_use]
pub fn encode_trace(trace: &ExecutionTrace) -> Bytes {
    let branches = trace.branches();
    let events = trace.events();
    let mut buf = BytesMut::with_capacity(4 + 2 + 16 + branches.len() * 8 + events.len() * 13);

    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u64_le(branches.len() as u64);
    for e in branches {
        buf.put_u64_le(e.raw());
    }
    buf.put_u64_le(events.len() as u64);
    for ev in events {
        let (tag, id) = match ev.kind() {
            CallLoopEventKind::LoopEnter(l) => (TAG_LOOP_ENTER, l.index()),
            CallLoopEventKind::LoopExit(l) => (TAG_LOOP_EXIT, l.index()),
            CallLoopEventKind::MethodEnter(m) => (TAG_METHOD_ENTER, m.index()),
            CallLoopEventKind::MethodExit(m) => (TAG_METHOD_EXIT, m.index()),
        };
        buf.put_u8(tag);
        buf.put_u32_le(id);
        buf.put_u64_le(ev.offset());
    }
    buf.freeze()
}

/// Decodes an execution trace from a byte buffer produced by
/// [`encode_trace`].
///
/// # Errors
///
/// Returns a [`CodecError`] if the buffer is truncated, has a bad magic
/// or version, or contains malformed records.
pub fn decode_trace(mut buf: &[u8]) -> Result<ExecutionTrace, CodecError> {
    if buf.remaining() < 4 || &buf[..4] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    buf.advance(4);
    if buf.remaining() < 2 {
        return Err(CodecError::Truncated);
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }

    if buf.remaining() < 8 {
        return Err(CodecError::Truncated);
    }
    let n_branches = buf.get_u64_le() as usize;
    if buf.remaining() < n_branches.checked_mul(8).ok_or(CodecError::Truncated)? {
        return Err(CodecError::Truncated);
    }
    let mut branches = BranchTrace::with_capacity(n_branches);
    for _ in 0..n_branches {
        let raw = buf.get_u64_le();
        let elem = ProfileElement::try_from(raw).map_err(|_| CodecError::BadElement(raw))?;
        branches.push(elem);
    }

    if buf.remaining() < 8 {
        return Err(CodecError::Truncated);
    }
    let n_events = buf.get_u64_le() as usize;
    // Validate the declared count against the remaining bytes *before*
    // allocating: each event record is exactly 13 bytes, so a
    // corrupted count would otherwise request an absurd capacity.
    if buf.remaining() < n_events.checked_mul(13).ok_or(CodecError::Truncated)? {
        return Err(CodecError::Truncated);
    }
    let mut events = Vec::with_capacity(n_events);
    let mut last_offset = 0u64;
    for _ in 0..n_events {
        if buf.remaining() < 13 {
            return Err(CodecError::Truncated);
        }
        let tag = buf.get_u8();
        let id = buf.get_u32_le();
        let offset = buf.get_u64_le();
        if offset < last_offset || offset > n_branches as u64 {
            return Err(CodecError::InconsistentEvents);
        }
        last_offset = offset;
        let kind = match tag {
            TAG_LOOP_ENTER => CallLoopEventKind::LoopEnter(LoopId::new(id)),
            TAG_LOOP_EXIT => CallLoopEventKind::LoopExit(LoopId::new(id)),
            TAG_METHOD_ENTER => CallLoopEventKind::MethodEnter(valid_method(id)?),
            TAG_METHOD_EXIT => CallLoopEventKind::MethodExit(valid_method(id)?),
            other => return Err(CodecError::BadEventTag(other)),
        };
        events.push(CallLoopEvent::new(kind, offset));
    }

    let events: CallLoopTrace = events.into_iter().collect();
    Ok(ExecutionTrace::from_parts(branches, events))
}

fn valid_method(id: u32) -> Result<MethodId, CodecError> {
    if id > MethodId::MAX {
        Err(CodecError::InconsistentEvents)
    } else {
        Ok(MethodId::new(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceSink;

    fn sample() -> ExecutionTrace {
        let mut t = ExecutionTrace::new();
        t.record_method_enter(MethodId::new(1));
        t.record_loop_enter(LoopId::new(7));
        for i in 0..20 {
            t.record_branch(ProfileElement::new(MethodId::new(1), i, i % 3 == 0));
        }
        t.record_loop_exit(LoopId::new(7));
        t.record_method_exit(MethodId::new(1));
        t
    }

    #[test]
    fn roundtrip() {
        let t = sample();
        let bytes = encode_trace(&t);
        assert_eq!(decode_trace(&bytes).unwrap(), t);
    }

    #[test]
    fn empty_roundtrip() {
        let t = ExecutionTrace::new();
        assert_eq!(decode_trace(&encode_trace(&t)).unwrap(), t);
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(decode_trace(b"NOPE"), Err(CodecError::BadMagic));
        assert_eq!(decode_trace(b""), Err(CodecError::BadMagic));
    }

    #[test]
    fn truncated_rejected() {
        let bytes = encode_trace(&sample());
        for cut in [5, 8, 20, bytes.len() - 1] {
            let err = decode_trace(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, CodecError::Truncated | CodecError::InconsistentEvents),
                "cut at {cut} gave {err}"
            );
        }
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = encode_trace(&sample()).to_vec();
        bytes[4] = 99;
        assert_eq!(
            decode_trace(&bytes),
            Err(CodecError::UnsupportedVersion(99))
        );
    }

    #[test]
    fn errors_display() {
        let msgs = [
            CodecError::BadMagic.to_string(),
            CodecError::Truncated.to_string(),
            CodecError::BadEventTag(9).to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
        }
    }
}
