//! Compact binary serialization of execution traces.
//!
//! The format is a simple versioned container so traces can be captured
//! once (e.g. a long MicroVM run) and replayed through many detector
//! configurations:
//!
//! ```text
//! magic  b"OPDT"
//! version u16 LE        (currently 1)
//! branch_count u64 LE   then branch_count packed u64 elements
//! event_count u64 LE    then per event: tag u8, id u32 LE, offset u64 LE
//! ```
//!
//! [`decode_trace`] is strict: the first malformed byte aborts the
//! decode with a typed [`CodecError`]. The resynchronizing decoder in
//! [`crate::resync`] instead skips corrupt records and keeps going —
//! use it when ingesting traces from unreliable transports.

use core::fmt;

use bytes::{BufMut, Bytes, BytesMut};

use crate::{
    BranchTrace, CallLoopEvent, CallLoopEventKind, CallLoopTrace, ExecutionTrace, LoopId, MethodId,
    ProfileElement,
};

/// The four magic bytes opening every serialized trace.
pub const MAGIC: &[u8; 4] = b"OPDT";
/// The container version this build writes and reads.
pub const VERSION: u16 = 1;
/// Bytes before the branch records: magic, version, branch count.
pub const HEADER_LEN: usize = 4 + 2 + 8;
/// Bytes per packed branch record.
pub const BRANCH_RECORD_LEN: usize = 8;
/// Bytes per call-loop event record: tag, id, offset.
pub const EVENT_RECORD_LEN: usize = 1 + 4 + 8;
/// Bytes of the event-count field between the two record regions.
pub const EVENT_COUNT_LEN: usize = 8;

pub(crate) const TAG_LOOP_ENTER: u8 = 0;
pub(crate) const TAG_LOOP_EXIT: u8 = 1;
pub(crate) const TAG_METHOD_ENTER: u8 = 2;
pub(crate) const TAG_METHOD_EXIT: u8 = 3;

/// Error produced when decoding a malformed trace buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// The buffer does not start with the `OPDT` magic bytes.
    BadMagic,
    /// The container version is not supported.
    UnsupportedVersion(u16),
    /// The buffer ended before the declared contents: `at_byte` is the
    /// offset of the first missing byte (the truncation point).
    Truncated {
        /// Offset at which the buffer ran out.
        at_byte: usize,
    },
    /// A packed element had reserved bits set.
    BadElement(u64),
    /// An event record had an unknown tag byte.
    BadEventTag(u8),
    /// Events were out of order or beyond the branch count.
    InconsistentEvents,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic => f.write_str("missing OPDT magic bytes"),
            CodecError::UnsupportedVersion(v) => write!(f, "unsupported trace version {v}"),
            CodecError::Truncated { at_byte } => {
                write!(f, "trace buffer truncated at byte {at_byte}")
            }
            CodecError::BadElement(raw) => write!(f, "invalid packed element {raw:#x}"),
            CodecError::BadEventTag(t) => write!(f, "unknown event tag {t}"),
            CodecError::InconsistentEvents => {
                f.write_str("event stream inconsistent with branches")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Encodes an execution trace into a byte buffer.
///
/// # Examples
///
/// ```
/// use opd_trace::{decode_trace, encode_trace, ExecutionTrace, MethodId, ProfileElement, TraceSink};
///
/// let mut t = ExecutionTrace::new();
/// t.record_branch(ProfileElement::new(MethodId::new(1), 2, true));
/// let bytes = encode_trace(&t);
/// assert_eq!(decode_trace(&bytes).unwrap(), t);
/// ```
#[must_use]
pub fn encode_trace(trace: &ExecutionTrace) -> Bytes {
    let branches = trace.branches();
    let events = trace.events();
    let mut buf = BytesMut::with_capacity(
        HEADER_LEN
            + EVENT_COUNT_LEN
            + branches.len() * BRANCH_RECORD_LEN
            + events.len() * EVENT_RECORD_LEN,
    );

    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u64_le(branches.len() as u64);
    for e in branches {
        buf.put_u64_le(e.raw());
    }
    buf.put_u64_le(events.len() as u64);
    for ev in events {
        let (tag, id) = encode_event_kind(ev.kind());
        buf.put_u8(tag);
        buf.put_u32_le(id);
        buf.put_u64_le(ev.offset());
    }
    buf.freeze()
}

pub(crate) fn encode_event_kind(kind: CallLoopEventKind) -> (u8, u32) {
    match kind {
        CallLoopEventKind::LoopEnter(l) => (TAG_LOOP_ENTER, l.index()),
        CallLoopEventKind::LoopExit(l) => (TAG_LOOP_EXIT, l.index()),
        CallLoopEventKind::MethodEnter(m) => (TAG_METHOD_ENTER, m.index()),
        CallLoopEventKind::MethodExit(m) => (TAG_METHOD_EXIT, m.index()),
    }
}

pub(crate) fn decode_event_kind(tag: u8, id: u32) -> Result<CallLoopEventKind, CodecError> {
    match tag {
        TAG_LOOP_ENTER => Ok(CallLoopEventKind::LoopEnter(LoopId::new(id))),
        TAG_LOOP_EXIT => Ok(CallLoopEventKind::LoopExit(LoopId::new(id))),
        TAG_METHOD_ENTER => Ok(CallLoopEventKind::MethodEnter(valid_method(id)?)),
        TAG_METHOD_EXIT => Ok(CallLoopEventKind::MethodExit(valid_method(id)?)),
        other => Err(CodecError::BadEventTag(other)),
    }
}

/// A positioned little-endian reader over a byte slice; every failed
/// read reports the exact truncation offset.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated {
                at_byte: self.buf.len(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16_le(&mut self) -> Result<u16, CodecError> {
        // Invariant: `take` returned exactly the requested length, so
        // the try_into conversions below cannot fail.
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    pub(crate) fn u32_le(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64_le(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

/// Reads and validates the header, returning the declared branch count.
pub(crate) fn read_header(r: &mut Reader<'_>) -> Result<u64, CodecError> {
    if r.remaining() < MAGIC.len() || &r.buf[..MAGIC.len()] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    r.pos = MAGIC.len();
    let version = r.u16_le()?;
    if version != VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    r.u64_le()
}

/// Decodes an execution trace from a byte buffer produced by
/// [`encode_trace`].
///
/// # Errors
///
/// Returns a [`CodecError`] if the buffer is truncated, has a bad magic
/// or version, or contains malformed records.
pub fn decode_trace(buf: &[u8]) -> Result<ExecutionTrace, CodecError> {
    let mut r = Reader::new(buf);
    let n_branches = read_header(&mut r)? as usize;
    // Validate the declared count against the remaining bytes *before*
    // allocating: each branch record is exactly 8 bytes, so a corrupted
    // count would otherwise request an absurd capacity.
    let truncated = || CodecError::Truncated { at_byte: buf.len() };
    if r.remaining()
        < n_branches
            .checked_mul(BRANCH_RECORD_LEN)
            .ok_or_else(truncated)?
    {
        return Err(truncated());
    }
    let mut branches = BranchTrace::with_capacity(n_branches);
    for _ in 0..n_branches {
        let raw = r.u64_le()?;
        let elem = ProfileElement::try_from(raw).map_err(|_| CodecError::BadElement(raw))?;
        branches.push(elem);
    }

    let n_events = r.u64_le()? as usize;
    // Same pre-allocation guard for the 13-byte event records.
    if r.remaining()
        < n_events
            .checked_mul(EVENT_RECORD_LEN)
            .ok_or_else(truncated)?
    {
        return Err(truncated());
    }
    let mut events = Vec::with_capacity(n_events);
    let mut last_offset = 0u64;
    for _ in 0..n_events {
        let tag = r.u8()?;
        let id = r.u32_le()?;
        let offset = r.u64_le()?;
        if offset < last_offset || offset > n_branches as u64 {
            return Err(CodecError::InconsistentEvents);
        }
        last_offset = offset;
        events.push(CallLoopEvent::new(decode_event_kind(tag, id)?, offset));
    }

    let events: CallLoopTrace = events.into_iter().collect();
    Ok(ExecutionTrace::from_parts(branches, events))
}

fn valid_method(id: u32) -> Result<MethodId, CodecError> {
    if id > MethodId::MAX {
        Err(CodecError::InconsistentEvents)
    } else {
        Ok(MethodId::new(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceSink;

    fn sample() -> ExecutionTrace {
        let mut t = ExecutionTrace::new();
        t.record_method_enter(MethodId::new(1));
        t.record_loop_enter(LoopId::new(7));
        for i in 0..20 {
            t.record_branch(ProfileElement::new(MethodId::new(1), i, i % 3 == 0));
        }
        t.record_loop_exit(LoopId::new(7));
        t.record_method_exit(MethodId::new(1));
        t
    }

    #[test]
    fn roundtrip() {
        let t = sample();
        let bytes = encode_trace(&t);
        assert_eq!(decode_trace(&bytes).unwrap(), t);
    }

    #[test]
    fn empty_roundtrip() {
        let t = ExecutionTrace::new();
        assert_eq!(decode_trace(&encode_trace(&t)).unwrap(), t);
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(decode_trace(b"NOPE"), Err(CodecError::BadMagic));
        assert_eq!(decode_trace(b""), Err(CodecError::BadMagic));
    }

    #[test]
    fn every_truncation_offset_reports_the_exact_cut_point() {
        // The regression the resilience layer is built on: a partial
        // final record anywhere in the container must produce a typed
        // `Truncated { at_byte }` (or `BadMagic` while still inside the
        // magic bytes) — never a slice-index panic.
        let bytes = encode_trace(&sample());
        for cut in 0..bytes.len() {
            match decode_trace(&bytes[..cut]) {
                Err(CodecError::BadMagic) => assert!(cut < MAGIC.len(), "cut {cut}"),
                Err(CodecError::Truncated { at_byte }) => {
                    assert_eq!(at_byte, cut, "cut {cut} misreported");
                }
                other => panic!("cut at {cut} gave {other:?}"),
            }
        }
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = encode_trace(&sample()).to_vec();
        bytes[4] = 99;
        assert_eq!(
            decode_trace(&bytes),
            Err(CodecError::UnsupportedVersion(99))
        );
    }

    #[test]
    fn layout_constants_match_the_encoder() {
        let t = sample();
        let bytes = encode_trace(&t);
        assert_eq!(
            bytes.len(),
            HEADER_LEN
                + t.branches().len() * BRANCH_RECORD_LEN
                + EVENT_COUNT_LEN
                + t.events().len() * EVENT_RECORD_LEN
        );
    }

    #[test]
    fn errors_display() {
        let msgs = [
            CodecError::BadMagic.to_string(),
            CodecError::Truncated { at_byte: 12 }.to_string(),
            CodecError::BadEventTag(9).to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
        }
    }
}
