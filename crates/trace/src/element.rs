//! Profile elements: packed conditional-branch records.

use core::fmt;

use crate::TraceError;

/// Identifier of a (virtual) method, as minted by an instrumenting
/// compiler or by the MicroVM program builder.
///
/// Method ids occupy 24 bits inside a packed [`ProfileElement`], so the
/// valid range is `0..=0x00FF_FFFF`.
///
/// # Examples
///
/// ```
/// use opd_trace::MethodId;
/// let m = MethodId::new(42);
/// assert_eq!(m.index(), 42);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MethodId(u32);

impl MethodId {
    /// Maximum representable method index.
    pub const MAX: u32 = (1 << 24) - 1;

    /// Creates a method id.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds [`MethodId::MAX`].
    #[must_use]
    pub fn new(index: u32) -> Self {
        assert!(index <= Self::MAX, "method index {index} out of range");
        MethodId(index)
    }

    /// Creates a method id from untrusted input, rejecting indices
    /// outside the 24-bit range instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::MethodIdRange`] if `index` exceeds
    /// [`MethodId::MAX`].
    pub fn try_new(index: u32) -> Result<Self, TraceError> {
        if index > Self::MAX {
            Err(TraceError::MethodIdRange { index })
        } else {
            Ok(MethodId(index))
        }
    }

    /// Returns the raw method index.
    #[must_use]
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for MethodId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

impl fmt::Display for MethodId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// A static conditional-branch site: a unique location in the source
/// program, identified by the enclosing method and a bytecode offset.
///
/// A branch *site* is the static half of a [`ProfileElement`]; the
/// dynamic half is the taken bit.
///
/// # Examples
///
/// ```
/// use opd_trace::{BranchSite, MethodId};
/// let site = BranchSite::new(MethodId::new(3), 17);
/// assert_eq!(site.method(), MethodId::new(3));
/// assert_eq!(site.offset(), 17);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BranchSite {
    method: MethodId,
    offset: u32,
}

impl BranchSite {
    /// Maximum representable bytecode offset (23 bits).
    pub const MAX_OFFSET: u32 = (1 << 23) - 1;

    /// Creates a branch site.
    ///
    /// # Panics
    ///
    /// Panics if `offset` exceeds [`BranchSite::MAX_OFFSET`].
    #[must_use]
    pub fn new(method: MethodId, offset: u32) -> Self {
        assert!(
            offset <= Self::MAX_OFFSET,
            "bytecode offset {offset} out of range"
        );
        BranchSite { method, offset }
    }

    /// Creates a branch site from untrusted input, rejecting offsets
    /// outside the 23-bit range instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::OffsetRange`] if `offset` exceeds
    /// [`BranchSite::MAX_OFFSET`].
    pub fn try_new(method: MethodId, offset: u32) -> Result<Self, TraceError> {
        if offset > Self::MAX_OFFSET {
            Err(TraceError::OffsetRange { offset })
        } else {
            Ok(BranchSite { method, offset })
        }
    }

    /// Returns the enclosing method.
    #[must_use]
    pub fn method(self) -> MethodId {
        self.method
    }

    /// Returns the bytecode offset within the method.
    #[must_use]
    pub fn offset(self) -> u32 {
        self.offset
    }
}

impl fmt::Debug for BranchSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+{}", self.method, self.offset)
    }
}

impl fmt::Display for BranchSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+{}", self.method, self.offset)
    }
}

/// One dynamic conditional branch, packed into a `u64`.
///
/// Following Section 4.1 of the paper, each profile element "represents
/// a unique location in the source code as an integer value that encodes
/// a unique method ID, a bytecode offset in the method where the branch
/// is located, and a bit that represents whether the branch was taken".
///
/// Layout (least significant bit first):
///
/// ```text
/// bit 0        : taken flag
/// bits 1..=23  : bytecode offset (23 bits)
/// bits 24..=47 : method id (24 bits)
/// bits 48..=63 : reserved, always zero
/// ```
///
/// # Examples
///
/// ```
/// use opd_trace::{MethodId, ProfileElement};
///
/// let e = ProfileElement::new(MethodId::new(7), 12, true);
/// assert!(e.taken());
/// assert_eq!(e.site().offset(), 12);
/// let raw: u64 = e.into();
/// assert_eq!(ProfileElement::try_from(raw).unwrap(), e);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ProfileElement(u64);

const TAKEN_BITS: u32 = 1;
const OFFSET_BITS: u32 = 23;
const METHOD_BITS: u32 = 24;
const OFFSET_SHIFT: u32 = TAKEN_BITS;
const METHOD_SHIFT: u32 = TAKEN_BITS + OFFSET_BITS;
const USED_BITS: u32 = TAKEN_BITS + OFFSET_BITS + METHOD_BITS;

impl ProfileElement {
    /// Creates a profile element for one executed conditional branch.
    ///
    /// # Panics
    ///
    /// Panics if `offset` exceeds [`BranchSite::MAX_OFFSET`].
    #[must_use]
    pub fn new(method: MethodId, offset: u32, taken: bool) -> Self {
        Self::from_site(BranchSite::new(method, offset), taken)
    }

    /// Creates a profile element from a static site and the dynamic
    /// taken bit.
    #[must_use]
    pub fn from_site(site: BranchSite, taken: bool) -> Self {
        let raw = u64::from(taken)
            | (u64::from(site.offset()) << OFFSET_SHIFT)
            | (u64::from(site.method().index()) << METHOD_SHIFT);
        ProfileElement(raw)
    }

    /// Returns the static branch site of this element.
    #[must_use]
    pub fn site(self) -> BranchSite {
        BranchSite {
            method: MethodId(((self.0 >> METHOD_SHIFT) & u64::from(MethodId::MAX)) as u32),
            offset: ((self.0 >> OFFSET_SHIFT) & u64::from(BranchSite::MAX_OFFSET)) as u32,
        }
    }

    /// Returns whether the branch was taken.
    #[must_use]
    pub fn taken(self) -> bool {
        self.0 & 1 == 1
    }

    /// Returns the packed representation.
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl From<ProfileElement> for u64 {
    fn from(e: ProfileElement) -> Self {
        e.0
    }
}

impl TryFrom<u64> for ProfileElement {
    type Error = ParseElementError;

    fn try_from(raw: u64) -> Result<Self, Self::Error> {
        if raw >> USED_BITS != 0 {
            Err(ParseElementError { raw })
        } else {
            Ok(ProfileElement(raw))
        }
    }
}

impl fmt::Debug for ProfileElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.site(), if self.taken() { "T" } else { "N" })
    }
}

impl fmt::Display for ProfileElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Error returned when a raw `u64` does not encode a profile element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseElementError {
    raw: u64,
}

impl fmt::Display for ParseElementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "value {:#x} has reserved profile-element bits set",
            self.raw
        )
    }
}

impl std::error::Error for ParseElementError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip_extremes() {
        for (m, o, t) in [
            (0, 0, false),
            (MethodId::MAX, BranchSite::MAX_OFFSET, true),
            (1, BranchSite::MAX_OFFSET, false),
            (MethodId::MAX, 0, true),
        ] {
            let e = ProfileElement::new(MethodId::new(m), o, t);
            assert_eq!(e.site().method().index(), m);
            assert_eq!(e.site().offset(), o);
            assert_eq!(e.taken(), t);
        }
    }

    #[test]
    fn raw_roundtrip() {
        let e = ProfileElement::new(MethodId::new(77), 1234, true);
        assert_eq!(ProfileElement::try_from(e.raw()), Ok(e));
    }

    #[test]
    fn reserved_bits_rejected() {
        assert!(ProfileElement::try_from(1u64 << 60).is_err());
    }

    #[test]
    fn taken_bit_distinguishes_elements() {
        let a = ProfileElement::new(MethodId::new(1), 5, true);
        let b = ProfileElement::new(MethodId::new(1), 5, false);
        assert_ne!(a, b);
        assert_eq!(a.site(), b.site());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn method_range_checked() {
        let _ = MethodId::new(MethodId::MAX + 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn offset_range_checked() {
        let _ = BranchSite::new(MethodId::new(0), BranchSite::MAX_OFFSET + 1);
    }

    #[test]
    fn try_constructors_reject_out_of_range() {
        assert!(MethodId::try_new(MethodId::MAX).is_ok());
        assert!(matches!(
            MethodId::try_new(MethodId::MAX + 1),
            Err(TraceError::MethodIdRange { index }) if index == MethodId::MAX + 1
        ));
        let m = MethodId::new(0);
        assert!(BranchSite::try_new(m, BranchSite::MAX_OFFSET).is_ok());
        assert!(matches!(
            BranchSite::try_new(m, BranchSite::MAX_OFFSET + 1),
            Err(TraceError::OffsetRange { .. })
        ));
    }

    #[test]
    fn display_is_nonempty() {
        let e = ProfileElement::new(MethodId::new(2), 3, false);
        assert_eq!(format!("{e}"), "m2+3N");
        assert_eq!(format!("{:?}", MethodId::new(2)), "m2");
    }
}
