//! Profile elements, execution traces, and phase labels.
//!
//! This crate provides the shared vocabulary of the `opd` workspace, the
//! Rust reproduction of *Online Phase Detection Algorithms* (CGO 2006):
//!
//! * [`ProfileElement`] — one dynamic conditional branch, packed into a
//!   `u64` exactly as the paper describes (method id, bytecode offset,
//!   taken bit),
//! * [`CallLoopEvent`] — one loop or method entry/exit correlated with
//!   the branch counter, forming the *call-loop trace* the baseline
//!   solution consumes,
//! * [`ExecutionTrace`] — the pair of correlated streams recorded from
//!   one program execution,
//! * [`PhaseState`], [`StateSeq`], [`PhaseInterval`] — per-element
//!   phase/transition labels and the intervals extracted from them,
//! * [`TraceStats`] — the dynamic execution characteristics reported in
//!   Table 1(a) of the paper.
//!
//! # Examples
//!
//! ```
//! use opd_trace::{ExecutionTrace, MethodId, ProfileElement, TraceSink};
//!
//! let mut trace = ExecutionTrace::new();
//! trace.record_method_enter(MethodId::new(1));
//! trace.record_branch(ProfileElement::new(MethodId::new(1), 4, true));
//! trace.record_branch(ProfileElement::new(MethodId::new(1), 9, false));
//! trace.record_method_exit(MethodId::new(1));
//! assert_eq!(trace.branches().len(), 2);
//! assert_eq!(trace.events().len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod codec;
mod derive;
mod element;
mod error;
mod event;
mod phase;
mod resync;
mod sample;
mod stats;
mod threaded;
mod trace;

pub use codec::{
    decode_trace, encode_trace, CodecError, BRANCH_RECORD_LEN, EVENT_COUNT_LEN, EVENT_RECORD_LEN,
    HEADER_LEN, MAGIC, VERSION,
};
pub use derive::{method_profile, method_profile_offsets, site_profile};
pub use element::{BranchSite, MethodId, ParseElementError, ProfileElement};
pub use error::TraceError;
pub use event::{CallLoopEvent, CallLoopEventKind, LoopId};
pub use phase::{
    boundaries_of, intervals_of, states_from_intervals, Boundary, BoundaryKind, PhaseInterval,
    PhaseState, StateSeq,
};
pub use resync::{decode_trace_resync, CorruptionReport};
pub use sample::{subsample, upsample_intervals};
pub use stats::{StatsSink, TraceStats};
pub use threaded::{
    interleave, try_interleave, InterleaveError, ThreadId, ThreadSink, ThreadedRecord,
    ThreadedTrace,
};
pub use trace::{BranchTrace, CallLoopTrace, ExecutionTrace, TraceSink};
