//! Trace containers and the recording sink abstraction.

use core::fmt;

use crate::{CallLoopEvent, CallLoopEventKind, LoopId, MethodId, ProfileElement, TraceError};

/// A sink that receives the two correlated profile streams as a program
/// executes.
///
/// The MicroVM interpreter (and any other instrumentation front end) is
/// generic over `TraceSink`, so full traces, statistics-only collectors
/// and streaming online detectors can all consume an execution without
/// buffering when they do not need to.
pub trait TraceSink {
    /// Records one executed conditional branch.
    fn record_branch(&mut self, element: ProfileElement);

    /// Records one loop or method entry/exit. `offset` is the number of
    /// branches recorded so far.
    fn record_event(&mut self, kind: CallLoopEventKind, offset: u64);
}

/// A sequence of profile elements: the conditional-branch trace.
///
/// # Examples
///
/// ```
/// use opd_trace::{BranchTrace, MethodId, ProfileElement};
///
/// let trace: BranchTrace = (0..4)
///     .map(|i| ProfileElement::new(MethodId::new(0), i, i % 2 == 0))
///     .collect();
/// assert_eq!(trace.len(), 4);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BranchTrace {
    elements: Vec<ProfileElement>,
}

impl BranchTrace {
    /// Creates an empty branch trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty trace with room for `capacity` elements.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        BranchTrace {
            elements: Vec::with_capacity(capacity),
        }
    }

    /// Appends one element.
    pub fn push(&mut self, element: ProfileElement) {
        self.elements.push(element);
    }

    /// Returns the number of dynamic branches.
    #[must_use]
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Returns `true` if no branches were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Returns the recorded elements as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[ProfileElement] {
        &self.elements
    }

    /// Iterates over the recorded elements.
    pub fn iter(&self) -> std::slice::Iter<'_, ProfileElement> {
        self.elements.iter()
    }
}

impl FromIterator<ProfileElement> for BranchTrace {
    fn from_iter<I: IntoIterator<Item = ProfileElement>>(iter: I) -> Self {
        BranchTrace {
            elements: iter.into_iter().collect(),
        }
    }
}

impl Extend<ProfileElement> for BranchTrace {
    fn extend<I: IntoIterator<Item = ProfileElement>>(&mut self, iter: I) {
        self.elements.extend(iter);
    }
}

impl<'a> IntoIterator for &'a BranchTrace {
    type Item = &'a ProfileElement;
    type IntoIter = std::slice::Iter<'a, ProfileElement>;

    fn into_iter(self) -> Self::IntoIter {
        self.elements.iter()
    }
}

impl IntoIterator for BranchTrace {
    type Item = ProfileElement;
    type IntoIter = std::vec::IntoIter<ProfileElement>;

    fn into_iter(self) -> Self::IntoIter {
        self.elements.into_iter()
    }
}

impl From<Vec<ProfileElement>> for BranchTrace {
    fn from(elements: Vec<ProfileElement>) -> Self {
        BranchTrace { elements }
    }
}

impl AsRef<[ProfileElement]> for BranchTrace {
    fn as_ref(&self) -> &[ProfileElement] {
        &self.elements
    }
}

/// The call-loop trace: loop and method entry/exit events correlated
/// with branch offsets, in execution order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CallLoopTrace {
    events: Vec<CallLoopEvent>,
}

impl CallLoopTrace {
    /// Creates an empty call-loop trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one event.
    ///
    /// # Panics
    ///
    /// Panics if `event` is out of order: offsets must be
    /// non-decreasing.
    pub fn push(&mut self, event: CallLoopEvent) {
        if let Err(e) = self.try_push(event) {
            panic!("call-loop events must have non-decreasing offsets: {e}");
        }
    }

    /// Appends one event from untrusted input, rejecting out-of-order
    /// offsets instead of panicking. On error the trace is unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::OutOfOrderEvent`] if `event.offset()` is
    /// smaller than the last recorded offset.
    pub fn try_push(&mut self, event: CallLoopEvent) -> Result<(), TraceError> {
        if let Some(last) = self.events.last() {
            if last.offset() > event.offset() {
                return Err(TraceError::OutOfOrderEvent {
                    prev: last.offset(),
                    next: event.offset(),
                });
            }
        }
        self.events.push(event);
        Ok(())
    }

    /// Returns the number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if no events were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Returns the recorded events as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[CallLoopEvent] {
        &self.events
    }

    /// Iterates over the recorded events.
    pub fn iter(&self) -> std::slice::Iter<'_, CallLoopEvent> {
        self.events.iter()
    }
}

impl FromIterator<CallLoopEvent> for CallLoopTrace {
    fn from_iter<I: IntoIterator<Item = CallLoopEvent>>(iter: I) -> Self {
        let mut t = CallLoopTrace::new();
        for ev in iter {
            t.push(ev);
        }
        t
    }
}

impl<'a> IntoIterator for &'a CallLoopTrace {
    type Item = &'a CallLoopEvent;
    type IntoIter = std::slice::Iter<'a, CallLoopEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

/// The full record of one program execution: the branch trace plus the
/// correlated call-loop trace.
///
/// `ExecutionTrace` implements [`TraceSink`], so it can be handed
/// directly to the MicroVM interpreter.
///
/// # Examples
///
/// ```
/// use opd_trace::{ExecutionTrace, LoopId, MethodId, ProfileElement, TraceSink};
///
/// let mut t = ExecutionTrace::new();
/// t.record_loop_enter(LoopId::new(0));
/// t.record_branch(ProfileElement::new(MethodId::new(0), 1, true));
/// t.record_loop_exit(LoopId::new(0));
/// assert_eq!(t.events().as_slice()[1].offset(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ExecutionTrace {
    branches: BranchTrace,
    events: CallLoopTrace,
}

impl ExecutionTrace {
    /// Creates an empty execution trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Assembles a trace from already-recorded streams.
    ///
    /// # Panics
    ///
    /// Panics if any event offset exceeds the branch count.
    #[must_use]
    pub fn from_parts(branches: BranchTrace, events: CallLoopTrace) -> Self {
        match Self::try_from_parts(branches, events) {
            Ok(t) => t,
            Err(e) => panic!("event beyond the end of the branch trace: {e}"),
        }
    }

    /// Assembles a trace from untrusted streams, rejecting events that
    /// point past the end of the branch trace instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::EventBeyondEnd`] for the first event whose
    /// offset exceeds the branch count.
    pub fn try_from_parts(
        branches: BranchTrace,
        events: CallLoopTrace,
    ) -> Result<Self, TraceError> {
        let n = branches.len() as u64;
        for ev in &events {
            if ev.offset() > n {
                return Err(TraceError::EventBeyondEnd {
                    offset: ev.offset(),
                    branches: n,
                });
            }
        }
        Ok(ExecutionTrace { branches, events })
    }

    /// Returns the branch trace.
    #[must_use]
    pub fn branches(&self) -> &BranchTrace {
        &self.branches
    }

    /// Returns the call-loop trace.
    #[must_use]
    pub fn events(&self) -> &CallLoopTrace {
        &self.events
    }

    /// Splits the trace into its two streams.
    #[must_use]
    pub fn into_parts(self) -> (BranchTrace, CallLoopTrace) {
        (self.branches, self.events)
    }

    /// Records a loop entry at the current branch offset.
    pub fn record_loop_enter(&mut self, id: LoopId) {
        let off = self.branches.len() as u64;
        self.events
            .push(CallLoopEvent::new(CallLoopEventKind::LoopEnter(id), off));
    }

    /// Records a loop exit at the current branch offset.
    pub fn record_loop_exit(&mut self, id: LoopId) {
        let off = self.branches.len() as u64;
        self.events
            .push(CallLoopEvent::new(CallLoopEventKind::LoopExit(id), off));
    }

    /// Records a method entry at the current branch offset.
    pub fn record_method_enter(&mut self, id: MethodId) {
        let off = self.branches.len() as u64;
        self.events
            .push(CallLoopEvent::new(CallLoopEventKind::MethodEnter(id), off));
    }

    /// Records a method exit at the current branch offset.
    pub fn record_method_exit(&mut self, id: MethodId) {
        let off = self.branches.len() as u64;
        self.events
            .push(CallLoopEvent::new(CallLoopEventKind::MethodExit(id), off));
    }
}

impl TraceSink for ExecutionTrace {
    fn record_branch(&mut self, element: ProfileElement) {
        self.branches.push(element);
    }

    fn record_event(&mut self, kind: CallLoopEventKind, offset: u64) {
        self.events.push(CallLoopEvent::new(kind, offset));
    }
}

impl fmt::Display for ExecutionTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "execution trace: {} branches, {} call-loop events",
            self.branches.len(),
            self.events.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn elem(offset: u32) -> ProfileElement {
        ProfileElement::new(MethodId::new(0), offset, true)
    }

    #[test]
    fn branch_trace_collects() {
        let t: BranchTrace = (0..10).map(elem).collect();
        assert_eq!(t.len(), 10);
        assert!(!t.is_empty());
        assert_eq!(t.iter().count(), 10);
        let back: Vec<_> = t.clone().into_iter().collect();
        assert_eq!(back.len(), 10);
        assert_eq!(t.as_ref().len(), 10);
    }

    #[test]
    fn execution_trace_correlates_offsets() {
        let mut t = ExecutionTrace::new();
        t.record_method_enter(MethodId::new(1));
        t.record_branch(elem(0));
        t.record_branch(elem(1));
        t.record_loop_enter(LoopId::new(5));
        t.record_branch(elem(2));
        t.record_loop_exit(LoopId::new(5));
        t.record_method_exit(MethodId::new(1));

        let offsets: Vec<u64> = t.events().iter().map(|e| e.offset()).collect();
        assert_eq!(offsets, vec![0, 2, 3, 3]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn out_of_order_events_rejected() {
        let mut t = CallLoopTrace::new();
        t.push(CallLoopEvent::new(
            CallLoopEventKind::LoopEnter(LoopId::new(0)),
            5,
        ));
        t.push(CallLoopEvent::new(
            CallLoopEventKind::LoopExit(LoopId::new(0)),
            4,
        ));
    }

    #[test]
    #[should_panic(expected = "beyond the end")]
    fn from_parts_validates_offsets() {
        let branches: BranchTrace = (0..3).map(elem).collect();
        let mut events = CallLoopTrace::new();
        events.push(CallLoopEvent::new(
            CallLoopEventKind::LoopEnter(LoopId::new(0)),
            4,
        ));
        let _ = ExecutionTrace::from_parts(branches, events);
    }

    #[test]
    fn try_push_rejects_and_leaves_trace_unchanged() {
        let mut t = CallLoopTrace::new();
        t.try_push(CallLoopEvent::new(
            CallLoopEventKind::LoopEnter(LoopId::new(0)),
            5,
        ))
        .unwrap();
        let err = t
            .try_push(CallLoopEvent::new(
                CallLoopEventKind::LoopExit(LoopId::new(0)),
                4,
            ))
            .unwrap_err();
        assert_eq!(err, crate::TraceError::OutOfOrderEvent { prev: 5, next: 4 });
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn try_from_parts_rejects_dangling_events() {
        let branches: BranchTrace = (0..3).map(elem).collect();
        let mut events = CallLoopTrace::new();
        events.push(CallLoopEvent::new(
            CallLoopEventKind::LoopEnter(LoopId::new(0)),
            4,
        ));
        let err = ExecutionTrace::try_from_parts(branches, events).unwrap_err();
        assert_eq!(
            err,
            crate::TraceError::EventBeyondEnd {
                offset: 4,
                branches: 3
            }
        );
    }

    #[test]
    fn display_summarizes() {
        let mut t = ExecutionTrace::new();
        t.record_branch(elem(0));
        assert_eq!(
            format!("{t}"),
            "execution trace: 1 branches, 0 call-loop events"
        );
    }
}
