//! Multi-threaded profile streams.
//!
//! The paper evaluates single-threaded applications but notes the
//! framework "can be extended to handle multi-threaded applications"
//! (Section 4.1). The natural extension — used here — tags every
//! profile record with its thread and runs one detector (and one
//! baseline) per thread: phases are a property of each thread's own
//! control flow.
//!
//! [`ThreadedTrace`] is a merged, tagged stream;
//! [`ThreadedTrace::demux`] splits it back into one ordinary
//! [`ExecutionTrace`] per thread, after which everything in this
//! workspace applies unchanged. [`interleave`] builds a merged stream
//! from per-thread traces with a round-robin scheduling quantum, the
//! way a time-sliced VM would emit it.

use core::fmt;
use std::collections::BTreeMap;

use crate::{CallLoopEventKind, ExecutionTrace, ProfileElement, TraceSink};

/// Identifier of a thread in a merged profile stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ThreadId(u32);

impl ThreadId {
    /// Creates a thread id.
    #[must_use]
    pub fn new(index: u32) -> Self {
        ThreadId(index)
    }

    /// Returns the raw index.
    #[must_use]
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// One record of a merged stream: a branch or a call-loop event,
/// tagged with its thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ThreadedRecord {
    /// A conditional branch executed by the thread.
    Branch(ProfileElement),
    /// A loop/method entry or exit on the thread.
    Event(CallLoopEventKind),
}

/// A merged, thread-tagged profile stream.
///
/// # Examples
///
/// ```
/// use opd_trace::{interleave, ExecutionTrace, MethodId, ProfileElement, ThreadId, TraceSink};
///
/// let mut a = ExecutionTrace::new();
/// a.record_branch(ProfileElement::new(MethodId::new(0), 0, true));
/// let mut b = ExecutionTrace::new();
/// b.record_branch(ProfileElement::new(MethodId::new(1), 0, false));
///
/// let merged = interleave(vec![a.clone(), b.clone()], 4);
/// let per_thread = merged.demux();
/// assert_eq!(per_thread[&ThreadId::new(0)], a);
/// assert_eq!(per_thread[&ThreadId::new(1)], b);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ThreadedTrace {
    records: Vec<(ThreadId, ThreadedRecord)>,
}

impl ThreadedTrace {
    /// Creates an empty merged stream.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one tagged record.
    pub fn push(&mut self, thread: ThreadId, record: ThreadedRecord) {
        self.records.push((thread, record));
    }

    /// Number of records (branches plus events).
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if the stream has no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The tagged records, in arrival order.
    #[must_use]
    pub fn records(&self) -> &[(ThreadId, ThreadedRecord)] {
        &self.records
    }

    /// The distinct threads present, ascending.
    #[must_use]
    pub fn threads(&self) -> Vec<ThreadId> {
        let mut out: Vec<ThreadId> = self.records.iter().map(|(t, _)| *t).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Splits the merged stream into one ordinary execution trace per
    /// thread. Within each thread, record order (and hence every
    /// event's branch offset) is preserved, so detectors and the
    /// baseline apply per thread unchanged.
    #[must_use]
    pub fn demux(&self) -> BTreeMap<ThreadId, ExecutionTrace> {
        let mut out: BTreeMap<ThreadId, ExecutionTrace> = BTreeMap::new();
        for &(thread, record) in &self.records {
            let trace = out.entry(thread).or_default();
            match record {
                ThreadedRecord::Branch(e) => trace.record_branch(e),
                ThreadedRecord::Event(kind) => {
                    let off = trace.branches().len() as u64;
                    trace.record_event(kind, off);
                }
            }
        }
        out
    }

    /// A per-thread recording adaptor: everything recorded through the
    /// returned sink is tagged with `thread`.
    pub fn sink_for(&mut self, thread: ThreadId) -> ThreadSink<'_> {
        ThreadSink {
            trace: self,
            thread,
        }
    }
}

/// A [`TraceSink`] view of one thread of a [`ThreadedTrace`].
#[derive(Debug)]
pub struct ThreadSink<'a> {
    trace: &'a mut ThreadedTrace,
    thread: ThreadId,
}

impl TraceSink for ThreadSink<'_> {
    fn record_branch(&mut self, element: ProfileElement) {
        self.trace
            .push(self.thread, ThreadedRecord::Branch(element));
    }

    fn record_event(&mut self, kind: CallLoopEventKind, _offset: u64) {
        self.trace.push(self.thread, ThreadedRecord::Event(kind));
    }
}

/// Error from [`try_interleave`]: the requested schedule is not
/// executable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterleaveError {
    /// The scheduling quantum was zero — no scheduler can make
    /// progress handing out zero records per turn.
    ZeroQuantum,
}

impl fmt::Display for InterleaveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            InterleaveError::ZeroQuantum => write!(f, "scheduling quantum must be positive"),
        }
    }
}

impl std::error::Error for InterleaveError {}

/// Merges per-thread traces into one tagged stream, round-robin with
/// the given scheduling `quantum` (records per turn) — the shape a
/// time-sliced VM's merged profile buffer would have.
///
/// # Panics
///
/// Panics if `quantum` is zero; [`try_interleave`] is the
/// non-panicking form for externally supplied quanta.
#[must_use]
pub fn interleave(traces: Vec<ExecutionTrace>, quantum: usize) -> ThreadedTrace {
    match try_interleave(traces, quantum) {
        Ok(merged) => merged,
        Err(e) => panic!("{e}"),
    }
}

/// [`interleave`], but returning a typed error instead of panicking on
/// an unschedulable quantum.
///
/// # Errors
///
/// Returns [`InterleaveError::ZeroQuantum`] if `quantum == 0`.
pub fn try_interleave(
    traces: Vec<ExecutionTrace>,
    quantum: usize,
) -> Result<ThreadedTrace, InterleaveError> {
    if quantum == 0 {
        return Err(InterleaveError::ZeroQuantum);
    }
    // Flatten each trace into its record sequence (branches and
    // events in offset order).
    let mut streams: Vec<std::vec::IntoIter<ThreadedRecord>> = traces
        .into_iter()
        .map(|t| {
            let (branches, events) = t.into_parts();
            let mut records = Vec::with_capacity(branches.len() + events.len());
            let mut ev = events.as_slice().iter().peekable();
            for (i, b) in branches.iter().enumerate() {
                while let Some(e) = ev.next_if(|e| e.offset() <= i as u64) {
                    records.push(ThreadedRecord::Event(e.kind()));
                }
                records.push(ThreadedRecord::Branch(*b));
            }
            for e in ev {
                records.push(ThreadedRecord::Event(e.kind()));
            }
            records.into_iter()
        })
        .collect();

    let mut out = ThreadedTrace::new();
    let mut live = streams.len();
    while live > 0 {
        live = 0;
        for (i, stream) in streams.iter_mut().enumerate() {
            let thread = ThreadId::new(i as u32);
            let mut taken = 0;
            while taken < quantum {
                match stream.next() {
                    Some(r) => {
                        out.push(thread, r);
                        taken += 1;
                    }
                    None => break,
                }
            }
            if taken == quantum {
                live += 1;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LoopId, MethodId};

    fn trace(method: u32, branches: u32) -> ExecutionTrace {
        let mut t = ExecutionTrace::new();
        t.record_method_enter(MethodId::new(method));
        t.record_loop_enter(LoopId::new(method));
        for i in 0..branches {
            t.record_branch(ProfileElement::new(MethodId::new(method), i % 7, true));
        }
        t.record_loop_exit(LoopId::new(method));
        t.record_method_exit(MethodId::new(method));
        t
    }

    #[test]
    fn interleave_demux_roundtrip() {
        let a = trace(0, 100);
        let b = trace(1, 37);
        let c = trace(2, 250);
        for quantum in [1, 3, 16, 1000] {
            let merged = interleave(vec![a.clone(), b.clone(), c.clone()], quantum);
            let split = merged.demux();
            assert_eq!(split.len(), 3, "quantum {quantum}");
            assert_eq!(split[&ThreadId::new(0)], a);
            assert_eq!(split[&ThreadId::new(1)], b);
            assert_eq!(split[&ThreadId::new(2)], c);
        }
    }

    #[test]
    fn interleaving_actually_mixes_threads() {
        let merged = interleave(vec![trace(0, 50), trace(1, 50)], 5);
        let first_20: Vec<u32> = merged.records()[..20]
            .iter()
            .map(|(t, _)| t.index())
            .collect();
        assert!(first_20.contains(&0) && first_20.contains(&1));
        assert_eq!(merged.threads(), vec![ThreadId::new(0), ThreadId::new(1)]);
    }

    #[test]
    fn sink_for_tags_records() {
        let mut merged = ThreadedTrace::new();
        {
            let mut sink = merged.sink_for(ThreadId::new(9));
            sink.record_branch(ProfileElement::new(MethodId::new(0), 0, true));
            sink.record_event(CallLoopEventKind::LoopEnter(LoopId::new(1)), 1);
        }
        assert_eq!(merged.len(), 2);
        assert!(merged.records().iter().all(|(t, _)| t.index() == 9));
        assert!(!merged.is_empty());
    }

    #[test]
    fn demux_preserves_event_offsets() {
        let a = trace(0, 10);
        let merged = interleave(vec![a.clone()], 3);
        let split = merged.demux();
        let back = &split[&ThreadId::new(0)];
        let offsets: Vec<u64> = back.events().iter().map(|e| e.offset()).collect();
        let orig: Vec<u64> = a.events().iter().map(|e| e.offset()).collect();
        assert_eq!(offsets, orig);
    }

    #[test]
    fn empty_inputs() {
        let merged = interleave(vec![], 4);
        assert!(merged.is_empty());
        assert!(merged.demux().is_empty());
        assert!(merged.threads().is_empty());
        assert_eq!(format!("{}", ThreadId::new(3)), "t3");
    }

    #[test]
    #[should_panic(expected = "quantum")]
    fn zero_quantum_rejected() {
        let _ = interleave(vec![], 0);
    }

    #[test]
    fn zero_quantum_is_a_typed_error() {
        let err = try_interleave(vec![trace(0, 5)], 0).unwrap_err();
        assert_eq!(err, InterleaveError::ZeroQuantum);
        assert!(err.to_string().contains("quantum"));
        // Valid quanta still succeed through the fallible path.
        let merged = try_interleave(vec![trace(0, 5)], 2).unwrap();
        assert_eq!(merged.demux().len(), 1);
    }
}
