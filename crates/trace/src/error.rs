//! The typed error hierarchy for trace construction and ingestion.
//!
//! Production traces arrive truncated, corrupted, or mid-stream; every
//! fallible trace operation reports one of these errors instead of
//! panicking. The panicking constructors (`MethodId::new`,
//! `CallLoopTrace::push`, ...) remain for code whose inputs are
//! program-generated and therefore valid by construction; anything
//! ingesting *external* data should use the `try_*` counterparts,
//! which return [`TraceError`].

use core::fmt;

use crate::codec::CodecError;
use crate::element::ParseElementError;

/// Any error arising while building or ingesting trace data.
///
/// # Examples
///
/// ```
/// use opd_trace::{MethodId, TraceError};
///
/// let err = MethodId::try_new(u32::MAX).unwrap_err();
/// assert!(matches!(err, TraceError::MethodIdRange { .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceError {
    /// A serialized trace buffer was malformed.
    Codec(CodecError),
    /// A raw `u64` had reserved profile-element bits set.
    Element(ParseElementError),
    /// A method index exceeded the 24-bit [`MethodId`](crate::MethodId)
    /// range.
    MethodIdRange {
        /// The rejected index.
        index: u32,
    },
    /// A bytecode offset exceeded the 23-bit
    /// [`BranchSite`](crate::BranchSite) range.
    OffsetRange {
        /// The rejected offset.
        offset: u32,
    },
    /// A call-loop event's offset decreased relative to the previous
    /// event: the stream is not in execution order.
    OutOfOrderEvent {
        /// Offset of the previously accepted event.
        prev: u64,
        /// The smaller offset that followed it.
        next: u64,
    },
    /// A call-loop event's offset pointed beyond the end of the branch
    /// trace it is correlated with.
    EventBeyondEnd {
        /// The event's branch offset.
        offset: u64,
        /// Number of branches actually in the trace.
        branches: u64,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Codec(e) => write!(f, "codec: {e}"),
            TraceError::Element(e) => write!(f, "element: {e}"),
            TraceError::MethodIdRange { index } => {
                write!(f, "method index {index} out of 24-bit range")
            }
            TraceError::OffsetRange { offset } => {
                write!(f, "bytecode offset {offset} out of 23-bit range")
            }
            TraceError::OutOfOrderEvent { prev, next } => {
                write!(
                    f,
                    "event offset {next} after {prev}: not in execution order"
                )
            }
            TraceError::EventBeyondEnd { offset, branches } => {
                write!(
                    f,
                    "event offset {offset} beyond the {branches}-branch trace"
                )
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Codec(e) => Some(e),
            TraceError::Element(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for TraceError {
    fn from(e: CodecError) -> Self {
        TraceError::Codec(e)
    }
}

impl From<ParseElementError> for TraceError {
    fn from(e: ParseElementError) -> Self {
        TraceError::Element(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_nonempty_and_sources_propagate() {
        let errors: Vec<TraceError> = vec![
            CodecError::BadMagic.into(),
            TraceError::MethodIdRange { index: 1 << 30 },
            TraceError::OffsetRange { offset: 1 << 24 },
            TraceError::OutOfOrderEvent { prev: 9, next: 3 },
            TraceError::EventBeyondEnd {
                offset: 10,
                branches: 5,
            },
        ];
        for e in &errors {
            assert!(!e.to_string().is_empty());
        }
        let codec: TraceError = CodecError::BadMagic.into();
        assert!(std::error::Error::source(&codec).is_some());
        assert!(std::error::Error::source(&errors[1]).is_none());
    }
}
