//! Dynamic execution characteristics of a trace (Table 1(a) of the
//! paper).

use std::collections::HashMap;

use crate::{CallLoopEventKind, ExecutionTrace, MethodId, ProfileElement, TraceSink};

/// The per-benchmark execution characteristics reported in Table 1(a):
/// dynamic branches, loop executions, method invocations, and recursion
/// roots.
///
/// A *recursion root* is a method invocation that is later invoked
/// recursively while having no other execution instance of the same
/// method on the stack beneath it (Section 3.1).
///
/// # Examples
///
/// ```
/// use opd_trace::{ExecutionTrace, MethodId, TraceStats};
///
/// let mut t = ExecutionTrace::new();
/// t.record_method_enter(MethodId::new(0)); // main
/// t.record_method_enter(MethodId::new(1)); // foo
/// t.record_method_enter(MethodId::new(2)); // bar
/// t.record_method_enter(MethodId::new(1)); // foo again: recursion!
/// t.record_method_exit(MethodId::new(1));
/// t.record_method_exit(MethodId::new(2));
/// t.record_method_exit(MethodId::new(1));
/// t.record_method_exit(MethodId::new(0));
///
/// let stats = TraceStats::measure(&t);
/// assert_eq!(stats.method_invocations, 4);
/// assert_eq!(stats.recursion_roots, 1);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TraceStats {
    /// Number of profile elements (dynamic conditional branches).
    pub dynamic_branches: u64,
    /// Number of completed loop executions (enter/exit pairs).
    pub loop_executions: u64,
    /// Number of method invocations.
    pub method_invocations: u64,
    /// Number of method invocations that are the root of a recursive
    /// execution.
    pub recursion_roots: u64,
}

impl TraceStats {
    /// Measures the characteristics of an execution trace.
    #[must_use]
    pub fn measure(trace: &ExecutionTrace) -> Self {
        let mut sink = StatsSink::new();
        for ev in trace.events() {
            sink.record_event(ev.kind(), ev.offset());
        }
        sink.stats.dynamic_branches = trace.branches().len() as u64;
        sink.finish()
    }
}

/// A [`TraceSink`] that computes [`TraceStats`] on the fly without
/// storing the trace — hand it to the MicroVM interpreter to size a
/// workload with O(call depth) memory.
///
/// # Examples
///
/// ```
/// use opd_trace::{MethodId, ProfileElement, StatsSink, TraceSink};
///
/// let mut sink = StatsSink::new();
/// sink.record_branch(ProfileElement::new(MethodId::new(0), 1, true));
/// let stats = sink.finish();
/// assert_eq!(stats.dynamic_branches, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct StatsSink {
    stats: TraceStats,
    // Stack of method frames; for each method, the indices of its
    // frames currently on the stack (in push order). The earliest
    // frame of a method that recurses is its recursion root; mark it
    // once.
    stack: Vec<(MethodId, bool)>,
    on_stack: HashMap<MethodId, Vec<usize>>,
}

impl StatsSink {
    /// Creates an empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> TraceStats {
        self.stats
    }

    /// Consumes the sink, returning the final statistics.
    #[must_use]
    pub fn finish(self) -> TraceStats {
        self.stats
    }
}

impl TraceSink for StatsSink {
    fn record_branch(&mut self, _element: ProfileElement) {
        self.stats.dynamic_branches += 1;
    }

    fn record_event(&mut self, kind: CallLoopEventKind, _offset: u64) {
        match kind {
            CallLoopEventKind::LoopEnter(_) => {}
            CallLoopEventKind::LoopExit(_) => self.stats.loop_executions += 1,
            CallLoopEventKind::MethodEnter(m) => {
                self.stats.method_invocations += 1;
                let frames = self.on_stack.entry(m).or_default();
                if let Some(&root_idx) = frames.first() {
                    if !self.stack[root_idx].1 {
                        self.stack[root_idx].1 = true;
                        self.stats.recursion_roots += 1;
                    }
                }
                frames.push(self.stack.len());
                self.stack.push((m, false));
            }
            CallLoopEventKind::MethodExit(m) => {
                if let Some((top, _)) = self.stack.pop() {
                    debug_assert_eq!(top, m, "unbalanced method exit");
                    if let Some(frames) = self.on_stack.get_mut(&m) {
                        frames.pop();
                    }
                }
            }
        }
    }
}

impl std::fmt::Display for TraceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} branches, {} loop executions, {} method invocations, {} recursion roots",
            self.dynamic_branches,
            self.loop_executions,
            self.method_invocations,
            self.recursion_roots
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LoopId, ProfileElement, TraceSink};

    fn m(i: u32) -> MethodId {
        MethodId::new(i)
    }

    #[test]
    fn counts_loops_and_branches() {
        let mut t = ExecutionTrace::new();
        for _ in 0..3 {
            t.record_loop_enter(LoopId::new(0));
            for i in 0..5 {
                t.record_branch(ProfileElement::new(m(0), i, true));
            }
            t.record_loop_exit(LoopId::new(0));
        }
        let s = TraceStats::measure(&t);
        assert_eq!(s.dynamic_branches, 15);
        assert_eq!(s.loop_executions, 3);
        assert_eq!(s.method_invocations, 0);
        assert_eq!(s.recursion_roots, 0);
    }

    #[test]
    fn direct_recursion_counts_one_root() {
        let mut t = ExecutionTrace::new();
        t.record_method_enter(m(1));
        t.record_method_enter(m(1));
        t.record_method_enter(m(1));
        t.record_method_exit(m(1));
        t.record_method_exit(m(1));
        t.record_method_exit(m(1));
        let s = TraceStats::measure(&t);
        assert_eq!(s.method_invocations, 3);
        assert_eq!(s.recursion_roots, 1);
    }

    #[test]
    fn mutual_recursion_roots_per_method() {
        // main -> foo -> bar -> foo: foo's first frame is the only root
        // (bar never re-appears on the stack).
        let mut t = ExecutionTrace::new();
        t.record_method_enter(m(0));
        t.record_method_enter(m(1));
        t.record_method_enter(m(2));
        t.record_method_enter(m(1));
        t.record_method_exit(m(1));
        t.record_method_exit(m(2));
        t.record_method_exit(m(1));
        t.record_method_exit(m(0));
        let s = TraceStats::measure(&t);
        assert_eq!(s.recursion_roots, 1);
    }

    #[test]
    fn separate_executions_are_separate_roots() {
        let mut t = ExecutionTrace::new();
        for _ in 0..2 {
            t.record_method_enter(m(1));
            t.record_method_enter(m(1));
            t.record_method_exit(m(1));
            t.record_method_exit(m(1));
        }
        let s = TraceStats::measure(&t);
        assert_eq!(s.recursion_roots, 2);
    }

    #[test]
    fn non_recursive_calls_have_no_roots() {
        let mut t = ExecutionTrace::new();
        t.record_method_enter(m(0));
        t.record_method_enter(m(1));
        t.record_method_exit(m(1));
        t.record_method_enter(m(1));
        t.record_method_exit(m(1));
        t.record_method_exit(m(0));
        let s = TraceStats::measure(&t);
        assert_eq!(s.method_invocations, 3);
        assert_eq!(s.recursion_roots, 0);
    }

    #[test]
    fn stats_sink_matches_measure() {
        let mut t = ExecutionTrace::new();
        t.record_method_enter(m(0));
        t.record_method_enter(m(1));
        t.record_method_enter(m(1));
        for i in 0..5 {
            t.record_branch(ProfileElement::new(m(1), i, true));
        }
        t.record_method_exit(m(1));
        t.record_method_exit(m(1));
        t.record_loop_enter(LoopId::new(0));
        t.record_loop_exit(LoopId::new(0));
        t.record_method_exit(m(0));

        let mut sink = StatsSink::new();
        for e in t.branches() {
            sink.record_branch(*e);
        }
        for ev in t.events() {
            sink.record_event(ev.kind(), ev.offset());
        }
        assert_eq!(sink.stats(), TraceStats::measure(&t));
        assert_eq!(sink.finish(), TraceStats::measure(&t));
    }

    #[test]
    fn display_mentions_all_fields() {
        let s = TraceStats {
            dynamic_branches: 1,
            loop_executions: 2,
            method_invocations: 3,
            recursion_roots: 4,
        };
        let text = format!("{s}");
        assert!(text.contains('1') && text.contains('4'));
    }
}
