//! Call-loop events: loop and method entry/exit records.

use core::fmt;

use crate::MethodId;

/// Identifier of a static loop in the program.
///
/// # Examples
///
/// ```
/// use opd_trace::LoopId;
/// assert_eq!(LoopId::new(9).index(), 9);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LoopId(u32);

impl LoopId {
    /// Creates a loop id.
    #[must_use]
    pub fn new(index: u32) -> Self {
        LoopId(index)
    }

    /// Returns the raw loop index.
    #[must_use]
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for LoopId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

impl fmt::Display for LoopId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// The kind of a [`CallLoopEvent`]: which repetition construct was
/// entered or exited.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CallLoopEventKind {
    /// A loop execution began (before the first iteration).
    LoopEnter(LoopId),
    /// A loop execution finished (after the last iteration).
    LoopExit(LoopId),
    /// A method was invoked.
    MethodEnter(MethodId),
    /// A method returned (normally or exceptionally).
    MethodExit(MethodId),
}

impl CallLoopEventKind {
    /// Returns `true` for the two `*Enter` variants.
    #[must_use]
    pub fn is_enter(self) -> bool {
        matches!(
            self,
            CallLoopEventKind::LoopEnter(_) | CallLoopEventKind::MethodEnter(_)
        )
    }

    /// Returns the enter event matching this exit event and vice versa.
    ///
    /// # Examples
    ///
    /// ```
    /// use opd_trace::{CallLoopEventKind, LoopId};
    /// let enter = CallLoopEventKind::LoopEnter(LoopId::new(1));
    /// assert_eq!(enter.matching(), CallLoopEventKind::LoopExit(LoopId::new(1)));
    /// ```
    #[must_use]
    pub fn matching(self) -> Self {
        match self {
            CallLoopEventKind::LoopEnter(id) => CallLoopEventKind::LoopExit(id),
            CallLoopEventKind::LoopExit(id) => CallLoopEventKind::LoopEnter(id),
            CallLoopEventKind::MethodEnter(id) => CallLoopEventKind::MethodExit(id),
            CallLoopEventKind::MethodExit(id) => CallLoopEventKind::MethodEnter(id),
        }
    }
}

impl fmt::Display for CallLoopEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CallLoopEventKind::LoopEnter(id) => write!(f, "enter {id}"),
            CallLoopEventKind::LoopExit(id) => write!(f, "exit {id}"),
            CallLoopEventKind::MethodEnter(id) => write!(f, "call {id}"),
            CallLoopEventKind::MethodExit(id) => write!(f, "return {id}"),
        }
    }
}

/// One entry in the call-loop trace.
///
/// Following Section 3.1 of the paper, each repetition-construct event
/// is correlated with the "time" of the latest dynamic branch: `offset`
/// is the number of profile elements recorded *before* this event, so a
/// loop entered after the k-th branch carries `offset == k`.
///
/// # Examples
///
/// ```
/// use opd_trace::{CallLoopEvent, CallLoopEventKind, LoopId};
/// let ev = CallLoopEvent::new(CallLoopEventKind::LoopEnter(LoopId::new(0)), 128);
/// assert_eq!(ev.offset(), 128);
/// assert!(ev.kind().is_enter());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CallLoopEvent {
    kind: CallLoopEventKind,
    offset: u64,
}

impl CallLoopEvent {
    /// Creates an event at the given branch offset.
    #[must_use]
    pub fn new(kind: CallLoopEventKind, offset: u64) -> Self {
        CallLoopEvent { kind, offset }
    }

    /// Returns the construct and direction of this event.
    #[must_use]
    pub fn kind(self) -> CallLoopEventKind {
        self.kind
    }

    /// Returns the number of profile elements recorded before this
    /// event.
    #[must_use]
    pub fn offset(self) -> u64 {
        self.offset
    }
}

impl fmt::Display for CallLoopEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.kind, self.offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matching_is_involutive() {
        let kinds = [
            CallLoopEventKind::LoopEnter(LoopId::new(3)),
            CallLoopEventKind::LoopExit(LoopId::new(3)),
            CallLoopEventKind::MethodEnter(MethodId::new(4)),
            CallLoopEventKind::MethodExit(MethodId::new(4)),
        ];
        for k in kinds {
            assert_eq!(k.matching().matching(), k);
            assert_ne!(k.matching().is_enter(), k.is_enter());
        }
    }

    #[test]
    fn event_accessors() {
        let ev = CallLoopEvent::new(CallLoopEventKind::MethodEnter(MethodId::new(2)), 77);
        assert_eq!(ev.offset(), 77);
        assert_eq!(ev.kind(), CallLoopEventKind::MethodEnter(MethodId::new(2)));
        assert_eq!(format!("{ev}"), "call m2@77");
    }
}
