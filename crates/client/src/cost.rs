//! The economics of a phase-based optimization.

use core::fmt;

/// Error produced for a meaningless cost model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CostModelError {
    /// The speedup was not a finite number greater than 1.
    BadSpeedup(f64),
    /// The miss penalty was not a finite number of at least 1.
    BadMissPenalty(f64),
}

impl fmt::Display for CostModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostModelError::BadSpeedup(s) => {
                write!(f, "speedup {s} must be a finite number > 1")
            }
            CostModelError::BadMissPenalty(p) => {
                write!(f, "miss penalty {p} must be a finite number >= 1")
            }
        }
    }
}

impl std::error::Error for CostModelError {}

/// The cost model of one phase-based optimization, in units of
/// profile elements (the paper's machine-independent "time").
///
/// * executing one element unoptimized costs 1;
/// * applying the optimization at a detected phase start costs
///   [`apply_cost`](CostModel::apply_cost) up front;
/// * while the optimization is active, each element costs
///   `1 / speedup`;
/// * reverting at the phase end costs
///   [`revert_cost`](CostModel::revert_cost).
///
/// # Examples
///
/// ```
/// use opd_client::CostModel;
///
/// let m = CostModel::new(100_000, 1.25, 10_000)?;
/// // Breaking even requires a phase long enough that the saved
/// // fraction (1 - 1/1.25 = 20%) covers 110K elements of overhead.
/// assert_eq!(opd_client::break_even_mpl(&m), 550_000);
/// # Ok::<(), opd_client::CostModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CostModel {
    apply_cost: u64,
    speedup: f64,
    revert_cost: u64,
    miss_penalty: f64,
}

impl CostModel {
    /// Default slowdown of specialized code running on behaviour it
    /// was not specialized for (guard checks, misspeculation).
    pub const DEFAULT_MISS_PENALTY: f64 = 1.1;

    /// Creates a cost model with the default miss penalty.
    ///
    /// # Errors
    ///
    /// Returns [`CostModelError::BadSpeedup`] unless `speedup` is a
    /// finite number greater than 1.
    pub fn new(apply_cost: u64, speedup: f64, revert_cost: u64) -> Result<Self, CostModelError> {
        if !speedup.is_finite() || speedup <= 1.0 {
            return Err(CostModelError::BadSpeedup(speedup));
        }
        Ok(CostModel {
            apply_cost,
            speedup,
            revert_cost,
            miss_penalty: Self::DEFAULT_MISS_PENALTY,
        })
    }

    /// Overrides the miss penalty: the per-element cost multiplier
    /// while the optimization is active but execution is *not* in the
    /// phase it was specialized for.
    ///
    /// # Errors
    ///
    /// Returns [`CostModelError::BadMissPenalty`] unless the penalty
    /// is a finite number of at least 1.
    pub fn with_miss_penalty(mut self, penalty: f64) -> Result<Self, CostModelError> {
        if !penalty.is_finite() || penalty < 1.0 {
            return Err(CostModelError::BadMissPenalty(penalty));
        }
        self.miss_penalty = penalty;
        Ok(self)
    }

    /// Per-element cost multiplier for optimized-but-unstable
    /// elements.
    #[must_use]
    pub fn miss_penalty(&self) -> f64 {
        self.miss_penalty
    }

    /// Elements of work to apply the optimization at a phase start.
    #[must_use]
    pub fn apply_cost(&self) -> u64 {
        self.apply_cost
    }

    /// Execution speedup while the optimization is active.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.speedup
    }

    /// Elements of work to revert at a phase end.
    #[must_use]
    pub fn revert_cost(&self) -> u64 {
        self.revert_cost
    }

    /// Per-element saving while optimized: `1 - 1/speedup`.
    #[must_use]
    pub fn saving_per_element(&self) -> f64 {
        1.0 - 1.0 / self.speedup
    }

    /// Total one-time overhead per optimized phase.
    #[must_use]
    pub fn overhead_per_phase(&self) -> u64 {
        self.apply_cost + self.revert_cost
    }
}

impl Default for CostModel {
    /// A mid-sized client: 10K elements to apply, 25% speedup, 1K to
    /// revert — break-even phase length 55K, matching the MPL range
    /// the paper studies.
    fn default() -> Self {
        CostModel {
            apply_cost: 10_000,
            speedup: 1.25,
            revert_cost: 1_000,
            miss_penalty: Self::DEFAULT_MISS_PENALTY,
        }
    }
}

impl fmt::Display for CostModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "apply {} + revert {} elements, {:.2}x while stable",
            self.apply_cost, self.revert_cost, self.speedup
        )
    }
}

/// The phase length at which the optimization exactly pays for
/// itself: `overhead / saving_per_element`, rounded up.
///
/// This is the quantity the paper's Section 3.1 example computes
/// informally (100K-element action ⇒ a 50K phase is a net loss).
#[must_use]
pub fn break_even_mpl(model: &CostModel) -> u64 {
    // overhead / (1 - 1/s) = overhead * s / (s - 1), the form with
    // better floating-point behaviour for common speedups.
    let s = model.speedup();
    (model.overhead_per_phase() as f64 * s / (s - 1.0)).ceil() as u64
}

/// The MPL a client should request from the baseline (and the phase
/// granularity its detector should target): the break-even length
/// with a 2x amortization margin, so a minimum-length phase nets half
/// its gross saving.
#[must_use]
pub fn recommended_mpl(model: &CostModel) -> u64 {
    break_even_mpl(model).saturating_mul(2).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_is_a_net_loss() {
        // Section 3.1: an action costing ~100K branches on a 50K-long
        // phase is a net loss — for any plausible speedup the
        // break-even length exceeds 50K.
        let m = CostModel::new(100_000, 1.5, 0).unwrap();
        assert!(break_even_mpl(&m) > 50_000);
        assert_eq!(break_even_mpl(&m), 300_000);
    }

    #[test]
    fn break_even_arithmetic() {
        let m = CostModel::new(100, 2.0, 0).unwrap();
        // Saving 0.5/element: 200 elements pay off 100.
        assert_eq!(break_even_mpl(&m), 200);
        assert_eq!(recommended_mpl(&m), 400);
        assert_eq!(m.overhead_per_phase(), 100);
        assert!((m.saving_per_element() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bad_speedups_rejected() {
        for s in [1.0, 0.5, f64::NAN, f64::INFINITY] {
            assert!(CostModel::new(1, s, 1).is_err(), "{s}");
        }
        assert!(!CostModelError::BadSpeedup(1.0).to_string().is_empty());
    }

    #[test]
    fn default_is_in_the_papers_mpl_range() {
        let m = CostModel::default();
        let mpl = recommended_mpl(&m);
        assert!((1_000..=200_000).contains(&mpl), "{mpl}");
        assert!(!m.to_string().is_empty());
    }
}
