//! Adapting the requested MPL online — the paper's Section 7 question
//! "whether it is effective to adapt the MPL over time".

use core::fmt;

use crate::cost::{recommended_mpl, CostModel};

/// An online controller that adjusts the MPL (and hence the CW size a
/// client configures its detector with) based on the phase lengths
/// actually observed.
///
/// Policy: start from the cost model's
/// [`recommended_mpl`](crate::recommended_mpl); fold each completed
/// phase's length into an exponential moving average; propose an MPL
/// of half the average observed length, clamped to never dip below the
/// cost model's break-even point — shorter phases than that can never
/// pay for the client's action.
///
/// # Examples
///
/// ```
/// use opd_client::{AdaptiveMplController, CostModel};
///
/// let model = CostModel::new(100, 2.0, 0)?; // break-even 200
/// let mut ctl = AdaptiveMplController::new(&model);
/// for _ in 0..20 {
///     ctl.observe_phase(100_000); // phases are huge: raise the MPL
/// }
/// assert!(ctl.current_mpl() > 400);
/// # Ok::<(), opd_client::CostModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveMplController {
    floor: u64,
    current: u64,
    ema: f64,
    observed: u64,
    alpha: f64,
}

impl AdaptiveMplController {
    /// Smoothing factor of the phase-length moving average.
    pub const DEFAULT_ALPHA: f64 = 0.2;

    /// Creates a controller seeded from the client's cost model.
    #[must_use]
    pub fn new(model: &CostModel) -> Self {
        let start = recommended_mpl(model);
        AdaptiveMplController {
            floor: crate::cost::break_even_mpl(model).max(1),
            current: start,
            ema: start as f64,
            observed: 0,
            alpha: Self::DEFAULT_ALPHA,
        }
    }

    /// The MPL the client should currently request.
    #[must_use]
    pub fn current_mpl(&self) -> u64 {
        self.current
    }

    /// The CW size a detector should use for the current MPL (half of
    /// it, per the paper's Section 4.2 conclusion).
    #[must_use]
    pub fn current_window(&self) -> usize {
        ((self.current / 2).max(1)) as usize
    }

    /// Number of phases folded in so far.
    #[must_use]
    pub fn phases_observed(&self) -> u64 {
        self.observed
    }

    /// Folds one completed phase's length (in elements) into the
    /// controller, possibly changing [`current_mpl`](Self::current_mpl).
    pub fn observe_phase(&mut self, length: u64) {
        self.observed += 1;
        self.ema = self.alpha * length as f64 + (1.0 - self.alpha) * self.ema;
        // Target phases about twice the MPL: granular enough to find
        // structure, long enough to amortize comfortably.
        let proposal = (self.ema / 2.0) as u64;
        self.current = proposal.max(self.floor);
    }
}

impl fmt::Display for AdaptiveMplController {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mpl {} (ema phase length {:.0}, {} phases observed)",
            self.current, self.ema, self.observed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::new(100, 2.0, 0).unwrap() // break-even 200, start 400
    }

    #[test]
    fn starts_at_recommendation() {
        let ctl = AdaptiveMplController::new(&model());
        assert_eq!(ctl.current_mpl(), 400);
        assert_eq!(ctl.current_window(), 200);
        assert_eq!(ctl.phases_observed(), 0);
    }

    #[test]
    fn grows_towards_long_phases() {
        let mut ctl = AdaptiveMplController::new(&model());
        for _ in 0..50 {
            ctl.observe_phase(20_000);
        }
        // EMA converges to 20_000; MPL to ~10_000.
        assert!((9_000..=10_000).contains(&ctl.current_mpl()), "{ctl}");
    }

    #[test]
    fn never_dips_below_break_even() {
        let mut ctl = AdaptiveMplController::new(&model());
        for _ in 0..100 {
            ctl.observe_phase(10); // absurdly short phases
        }
        assert_eq!(ctl.current_mpl(), 200); // clamped at break-even
    }

    #[test]
    fn adapts_to_regime_change() {
        let mut ctl = AdaptiveMplController::new(&model());
        for _ in 0..30 {
            ctl.observe_phase(50_000);
        }
        let coarse = ctl.current_mpl();
        for _ in 0..30 {
            ctl.observe_phase(2_000);
        }
        let fine = ctl.current_mpl();
        assert!(fine < coarse, "{fine} vs {coarse}");
        assert_eq!(ctl.phases_observed(), 60);
        assert!(!ctl.to_string().is_empty());
    }
}
