//! Phase-aware optimization clients: what a phase detector is *for*.
//!
//! The paper motivates online phase detection with dynamic
//! optimization systems that "apply specialized optimizations during a
//! phase or reconsider optimization decisions between phases"
//! (Section 1), anchors its MPL parameter in client economics ("if a
//! client's phase-based optimization requires an approximate cost of
//! 100,000 branches, then employing this action for a phase that is
//! only 50,000 branches long will result in a net loss", Section 3.1),
//! and closes by planning to "investigate phase-aware dynamic
//! optimizations and how they are impacted by phase detector accuracy
//! and overhead", including "how to set the MPL for a particular
//! client and whether it is effective to adapt the MPL over time"
//! (Section 7).
//!
//! This crate builds that client:
//!
//! * [`CostModel`] — the economics of one phase-based optimization
//!   (apply cost, speedup while stable, revert cost);
//! * [`simulate`] — replays a detector's per-element states under the
//!   cost model, yielding a [`ClientOutcome`] (net benefit, wasted
//!   optimizations, upper bounds via the oracle's states);
//! * [`break_even_mpl`] / [`recommended_mpl`] — the MPL a client
//!   should request, derived from the cost model;
//! * [`AdaptiveMplController`] — an online controller that adapts the
//!   requested MPL from the phase lengths actually observed.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod adapt;
mod cost;
mod simulate;

pub use adapt::AdaptiveMplController;
pub use cost::{break_even_mpl, recommended_mpl, CostModel, CostModelError};
pub use simulate::{simulate, simulate_intervals, ClientOutcome};
