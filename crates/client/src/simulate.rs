//! Replaying detector output under a client cost model.

use core::fmt;

use opd_trace::{intervals_of, PhaseInterval, StateSeq};

use crate::cost::CostModel;

/// What a phase-aware optimization client experienced over one
/// execution, in profile-element cost units.
///
/// The simulation distinguishes elements that were optimized *and*
/// genuinely stable (they run at `1/speedup`) from elements that were
/// optimized while execution was actually in transition (the
/// specialization does not fit; they run at baseline speed). Ground
/// truth comes from the baseline solution's phases, so detector
/// accuracy directly determines client benefit.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ClientOutcome {
    /// Cost of running everything unoptimized (= the element count).
    pub baseline_cost: f64,
    /// Cost under phase-guided optimization: apply/revert overheads,
    /// sped-up stable elements, full-price unstable elements.
    pub optimized_cost: f64,
    /// Phases the client optimized.
    pub phases_optimized: usize,
    /// Optimized phases whose saving did not cover their overhead —
    /// the net-loss actions the paper's Section 3.1 warns about.
    pub wasted_optimizations: usize,
    /// Elements executed under the optimization while genuinely in
    /// phase (these actually sped up).
    pub useful_elements: u64,
    /// Elements executed under the optimization while actually in
    /// transition (no speedup; the detector over-covered).
    pub futile_elements: u64,
}

impl ClientOutcome {
    /// Net saving (positive is good).
    #[must_use]
    pub fn net_benefit(&self) -> f64 {
        self.baseline_cost - self.optimized_cost
    }

    /// Net saving as a percentage of the baseline cost.
    #[must_use]
    pub fn net_benefit_pct(&self) -> f64 {
        if self.baseline_cost == 0.0 {
            0.0
        } else {
            100.0 * self.net_benefit() / self.baseline_cost
        }
    }
}

impl fmt::Display for ClientOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "net benefit {:+.1} ({:+.2}%), {} phases optimized ({} wasted, {} futile elements)",
            self.net_benefit(),
            self.net_benefit_pct(),
            self.phases_optimized,
            self.wasted_optimizations,
            self.futile_elements,
        )
    }
}

/// Simulates a client that optimizes exactly the phases a detector
/// reported (one state per element), judged against the ground-truth
/// phases (normally the baseline solution's).
#[must_use]
pub fn simulate(states: &StateSeq, truth: &[PhaseInterval], model: &CostModel) -> ClientOutcome {
    simulate_intervals(&intervals_of(states), truth, states.len() as u64, model)
}

/// Simulates a client over explicit detected phase intervals.
///
/// `truth` must be sorted and disjoint (as the baseline solution
/// produces). Feeding the truth as its own detection yields the
/// "oracle client" reference outcome.
///
/// # Panics
///
/// Panics if any detected interval extends past `total`.
#[must_use]
pub fn simulate_intervals(
    detected: &[PhaseInterval],
    truth: &[PhaseInterval],
    total: u64,
    model: &CostModel,
) -> ClientOutcome {
    let mut optimized_cost = 0.0;
    let mut useful = 0u64;
    let mut futile = 0u64;
    let mut wasted = 0usize;
    let per_element = 1.0 / model.speedup();
    let miss_penalty = model.miss_penalty();
    let overhead = model.overhead_per_phase() as f64;

    let mut covered = 0u64;
    for p in detected {
        assert!(p.end() <= total, "phase {p} exceeds trace length {total}");
        let len = p.len();
        covered += len;
        let hits = overlap_with(truth, *p);
        let misses = len - hits;
        useful += hits;
        futile += misses;
        let cost = overhead + hits as f64 * per_element + misses as f64 * miss_penalty;
        optimized_cost += cost;
        if cost >= len as f64 {
            wasted += 1;
        }
    }
    optimized_cost += (total - covered) as f64;

    ClientOutcome {
        baseline_cost: total as f64,
        optimized_cost,
        phases_optimized: detected.len(),
        wasted_optimizations: wasted,
        useful_elements: useful,
        futile_elements: futile,
    }
}

/// Elements of `p` covered by the sorted, disjoint `truth` intervals.
fn overlap_with(truth: &[PhaseInterval], p: PhaseInterval) -> u64 {
    let start_idx = truth.partition_point(|t| t.end() <= p.start());
    truth[start_idx..]
        .iter()
        .take_while(|t| t.start() < p.end())
        .map(|t| t.end().min(p.end()) - t.start().max(p.start()))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use opd_trace::PhaseState;

    fn model(apply: u64, speedup: f64) -> CostModel {
        CostModel::new(apply, speedup, 0).unwrap()
    }

    fn states(pattern: &str) -> StateSeq {
        pattern
            .chars()
            .map(|c| {
                if c == 'P' {
                    PhaseState::Phase
                } else {
                    PhaseState::Transition
                }
            })
            .collect()
    }

    fn iv(s: u64, e: u64) -> PhaseInterval {
        PhaseInterval::new(s, e)
    }

    #[test]
    fn no_phases_costs_baseline() {
        let out = simulate(&states("TTTTTTTT"), &[iv(0, 8)], &model(10, 2.0));
        assert_eq!(out.baseline_cost, 8.0);
        assert_eq!(out.optimized_cost, 8.0);
        assert_eq!(out.net_benefit(), 0.0);
        assert_eq!(out.phases_optimized, 0);
    }

    #[test]
    fn accurate_long_phase_pays_off() {
        // 100 truly-stable elements at 2x saves 50, minus 10 apply.
        let seq: StateSeq = (0..110)
            .map(|i| {
                if i < 10 {
                    PhaseState::Transition
                } else {
                    PhaseState::Phase
                }
            })
            .collect();
        let out = simulate(&seq, &[iv(10, 110)], &model(10, 2.0));
        assert!((out.net_benefit() - 40.0).abs() < 1e-9, "{out}");
        assert_eq!(out.useful_elements, 100);
        assert_eq!(out.futile_elements, 0);
        assert_eq!(out.wasted_optimizations, 0);
    }

    #[test]
    fn over_detection_is_penalized() {
        // The detector claims the whole trace; only half is truly
        // stable. Futile elements run *slower* than baseline (the
        // miss penalty), so over-detection strictly loses to accurate
        // detection.
        let all = states(&"P".repeat(100));
        let truth = [iv(0, 50)];
        let m = model(10, 2.0);
        let greedy = simulate(&all, &truth, &m);
        assert_eq!(greedy.useful_elements, 50);
        assert_eq!(greedy.futile_elements, 50);
        let accurate = simulate_intervals(&truth, &truth, 100, &m);
        assert!(greedy.net_benefit() < accurate.net_benefit());
        // The gap is exactly the miss penalty on 50 futile elements.
        let expected = 50.0 * (m.miss_penalty() - 1.0);
        assert!((accurate.net_benefit() - greedy.net_benefit() - expected).abs() < 1e-9);
    }

    #[test]
    fn oracle_detection_is_optimal_when_gaps_are_wide() {
        // Two true phases separated by a gap wider than the apply
        // cost's worth of savings: optimizing them separately (the
        // oracle client) beats merging across the gap.
        let truth = [iv(0, 100), iv(200, 300)];
        let m = model(5, 2.0);
        let oracle = simulate_intervals(&truth, &truth, 300, &m);
        let merged = simulate_intervals(&[iv(0, 300)], &truth, 300, &m);
        assert!(oracle.net_benefit() > merged.net_benefit());
        assert_eq!(merged.futile_elements, 100);
    }

    #[test]
    fn merging_across_tiny_gaps_can_win() {
        // ... but when the gap is shorter than the apply cost is
        // worth, a client is better off keeping the optimization
        // alive across it — real economics the metric allows.
        let truth = [iv(0, 100), iv(102, 200)];
        let m = model(50, 2.0);
        let oracle = simulate_intervals(&truth, &truth, 200, &m);
        let merged = simulate_intervals(&[iv(0, 200)], &truth, 200, &m);
        assert!(merged.net_benefit() > oracle.net_benefit());
    }

    #[test]
    fn short_phase_is_a_net_loss() {
        let out = simulate(&states("PPPPPPPPPP"), &[iv(0, 10)], &model(10, 2.0));
        assert!(out.net_benefit() < 0.0);
        assert_eq!(out.wasted_optimizations, 1);
    }

    #[test]
    fn overlap_arithmetic() {
        let truth = [iv(10, 20), iv(30, 40), iv(50, 60)];
        assert_eq!(overlap_with(&truth, iv(0, 100)), 30);
        assert_eq!(overlap_with(&truth, iv(15, 35)), 10);
        assert_eq!(overlap_with(&truth, iv(20, 30)), 0);
        assert_eq!(overlap_with(&truth, iv(55, 58)), 3);
        assert_eq!(overlap_with(&[], iv(0, 10)), 0);
    }

    #[test]
    fn percentages_and_display() {
        let out = simulate(&states(""), &[], &model(1, 2.0));
        assert_eq!(out.net_benefit_pct(), 0.0);
        let seq = states(&"P".repeat(20));
        let out = simulate(&seq, &[iv(0, 20)], &model(1, 2.0));
        assert!(out.net_benefit_pct() > 0.0);
        assert!(out.to_string().contains("net benefit"));
    }

    #[test]
    #[should_panic(expected = "exceeds trace length")]
    fn intervals_beyond_total_rejected() {
        let _ = simulate_intervals(&[iv(0, 10)], &[], 5, &model(1, 2.0));
    }
}
