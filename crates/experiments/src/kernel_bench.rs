//! The window-kernel benchmark behind `BENCH_kernel.json`: one full
//! grid swept on both kernels (the SWAR default and the scalar
//! reference), timed separately from preparation, diffed
//! configuration-by-configuration, and rendered as the committed
//! artifact.
//!
//! The artifact records the acceptance line for the kernel rewrite:
//! the SWAR sweep of the full 13,230-configuration grid must finish
//! under [`SWAR_BUDGET_SECONDS`] and beat the pre-rewrite baseline
//! ([`BASELINE_SWEEP_SECONDS`], measured on the same machine, same
//! grid, same workload, one thread) by at least
//! [`MIN_BASELINE_SPEEDUP`]×. The timing fields are machine-dependent
//! — the artifact test re-checks the committed numbers against the
//! acceptance lines and regenerates only the deterministic fields.

use std::time::Instant;

use opd_core::{DetectorConfig, KernelKind};

use crate::runner::{sweep_with_kernel, ConfigRun, PreparedWorkload};

/// Sweep-only wall-clock of the pre-rewrite engine on this grid and
/// workload (one thread), measured immediately before the kernel
/// rewrite landed. The artifact's speedup lines are relative to this.
pub const BASELINE_SWEEP_SECONDS: f64 = 108.8;

/// The acceptance budget for the SWAR sweep (sweep only, one thread).
pub const SWAR_BUDGET_SECONDS: f64 = 20.0;

/// Minimum accepted speedup of the SWAR sweep over the baseline.
pub const MIN_BASELINE_SPEEDUP: f64 = 5.0;

/// One kernel's timed sweep of the benchmark grid.
#[derive(Debug, Clone, Copy)]
pub struct KernelTiming {
    /// Which kernel ran.
    pub kernel: KernelKind,
    /// Sweep-only wall-clock, excluding preparation and scoring.
    pub sweep_seconds: f64,
}

impl KernelTiming {
    /// Speedup over the recorded pre-rewrite baseline.
    #[must_use]
    pub fn speedup_vs_baseline(&self) -> f64 {
        if self.sweep_seconds == 0.0 {
            return 0.0;
        }
        BASELINE_SWEEP_SECONDS / self.sweep_seconds
    }
}

/// The full benchmark: both kernels timed over one prepared workload
/// and grid, plus the result diff.
#[derive(Debug, Clone)]
pub struct KernelBenchReport {
    /// Workload name.
    pub workload: &'static str,
    /// Workload scale.
    pub scale: u32,
    /// Worker threads the sweeps ran on.
    pub threads: usize,
    /// Configurations in the swept grid.
    pub grid_configs: usize,
    /// Profile elements in the trace.
    pub trace_elements: u64,
    /// Distinct profile elements in the trace.
    pub trace_distinct: u32,
    /// Wall-clock of workload preparation (execution, interning,
    /// oracles) — reported so the sweep numbers are visibly
    /// sweep-only.
    pub prepare_seconds: f64,
    /// The SWAR (default) kernel's timing, then the scalar
    /// reference's.
    pub kernels: [KernelTiming; 2],
    /// Whether the two kernels produced bit-identical detected and
    /// anchored intervals for every configuration.
    pub results_identical: bool,
}

impl KernelBenchReport {
    /// The SWAR sweep's timing.
    #[must_use]
    pub fn swar(&self) -> KernelTiming {
        self.kernels[0]
    }

    /// The scalar reference sweep's timing.
    #[must_use]
    pub fn scalar(&self) -> KernelTiming {
        self.kernels[1]
    }

    /// SWAR speedup over the scalar reference, same machine, same run.
    #[must_use]
    pub fn swar_speedup_vs_scalar(&self) -> f64 {
        if self.swar().sweep_seconds == 0.0 {
            return 0.0;
        }
        self.scalar().sweep_seconds / self.swar().sweep_seconds
    }

    /// Renders `BENCH_kernel.json` (hand-built; the vendored
    /// serde_json is an inert shim).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str("  \"schema\": \"opd-bench-kernel-v1\",\n");
        out.push_str(&format!("  \"workload\": \"{}\",\n", self.workload));
        out.push_str(&format!("  \"scale\": {},\n", self.scale));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!("  \"grid_configs\": {},\n", self.grid_configs));
        out.push_str(&format!("  \"trace_elements\": {},\n", self.trace_elements));
        out.push_str(&format!("  \"trace_distinct\": {},\n", self.trace_distinct));
        out.push_str(&format!(
            "  \"prepare_seconds\": {:.3},\n",
            self.prepare_seconds
        ));
        out.push_str(&format!(
            "  \"baseline_sweep_seconds\": {BASELINE_SWEEP_SECONDS:.1},\n"
        ));
        out.push_str("  \"kernels\": [\n");
        for (i, t) in self.kernels.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"kernel\": \"{}\", \"sweep_seconds\": {:.3}, \
                 \"speedup_vs_baseline\": {:.2}}}{}\n",
                t.kernel.as_str(),
                t.sweep_seconds,
                t.speedup_vs_baseline(),
                if i + 1 == self.kernels.len() { "" } else { "," },
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"swar_speedup_vs_scalar\": {:.2},\n",
            self.swar_speedup_vs_scalar()
        ));
        out.push_str(&format!(
            "  \"results_identical\": {}\n",
            self.results_identical
        ));
        out.push_str("}\n");
        out
    }
}

fn runs_identical(a: &[ConfigRun], b: &[ConfigRun]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.detected == y.detected && x.anchored == y.anchored)
}

/// Sweeps `configs` over `prepared` on both kernels, timing each
/// sweep (and only the sweep), and diffs the results. `prepare_seconds`
/// is the caller's measured preparation time, recorded verbatim.
#[must_use]
pub fn run_kernel_bench(
    prepared: &PreparedWorkload,
    configs: &[DetectorConfig],
    threads: usize,
    prepare_seconds: f64,
) -> KernelBenchReport {
    let mut kernels = [KernelTiming {
        kernel: KernelKind::Swar,
        sweep_seconds: 0.0,
    }; 2];
    let mut runs: Vec<Vec<ConfigRun>> = Vec::with_capacity(2);
    for (slot, kernel) in [KernelKind::Swar, KernelKind::Scalar]
        .into_iter()
        .enumerate()
    {
        let started = Instant::now();
        runs.push(sweep_with_kernel(prepared, configs, threads, kernel));
        kernels[slot] = KernelTiming {
            kernel,
            sweep_seconds: started.elapsed().as_secs_f64(),
        };
    }
    KernelBenchReport {
        workload: prepared.workload().name(),
        scale: 1,
        threads,
        grid_configs: configs.len(),
        trace_elements: prepared.total_elements(),
        trace_distinct: prepared.interned().distinct_count(),
        prepare_seconds,
        kernels,
        results_identical: runs_identical(&runs[0], &runs[1]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{policy_grid, TwKind};
    use opd_microvm::workloads::Workload;

    #[test]
    fn report_json_is_structurally_complete_and_kernels_agree() {
        let prepared = PreparedWorkload::prepare_with_fuel(Workload::Lexgen, 1, &[1_000], 20_000);
        let configs = policy_grid(TwKind::Constant, 500);
        let report = run_kernel_bench(&prepared, &configs, 1, 0.5);
        assert!(report.results_identical);
        assert_eq!(report.swar().kernel, KernelKind::Swar);
        assert_eq!(report.scalar().kernel, KernelKind::Scalar);
        assert_eq!(report.grid_configs, configs.len());
        assert_eq!(report.trace_elements, 20_000);
        let json = report.to_json();
        for key in [
            "\"schema\": \"opd-bench-kernel-v1\"",
            "\"workload\": \"lexgen\"",
            "\"baseline_sweep_seconds\": 108.8",
            "\"kernel\": \"swar\"",
            "\"kernel\": \"scalar\"",
            "\"swar_speedup_vs_scalar\"",
            "\"results_identical\": true",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn speedup_lines_divide_the_right_way() {
        let t = KernelTiming {
            kernel: KernelKind::Swar,
            sweep_seconds: BASELINE_SWEEP_SECONDS / 8.0,
        };
        assert!((t.speedup_vs_baseline() - 8.0).abs() < 1e-9);
        let report = KernelBenchReport {
            workload: "ruleng",
            scale: 1,
            threads: 1,
            grid_configs: 2,
            trace_elements: 10,
            trace_distinct: 3,
            prepare_seconds: 1.0,
            kernels: [
                KernelTiming {
                    kernel: KernelKind::Swar,
                    sweep_seconds: 2.0,
                },
                KernelTiming {
                    kernel: KernelKind::Scalar,
                    sweep_seconds: 12.0,
                },
            ],
            results_identical: true,
        };
        assert!((report.swar_speedup_vs_scalar() - 6.0).abs() < 1e-9);
    }
}
