//! The evaluation harness: regenerates every table and figure of the
//! CGO 2006 paper's evaluation (Sections 4 and 5).
//!
//! * [`grid`] — the detector parameter spaces (window sizes, skip
//!   factors, models, analyzers) and the >10,000-configuration full
//!   grid the paper's study enumerates;
//! * [`runner`] — trace preparation (workload execution, interning,
//!   oracle computation for all MPL values) and the parallel
//!   configuration sweep;
//! * [`report`] — fixed-width table rendering for experiment output;
//! * [`analysis`] — the per-workload static-bounds artifact
//!   (`BENCH_static_bounds.json`) regress-checking runtime pre-sizing;
//! * [`kernel_bench`] — the two-kernel sweep benchmark behind
//!   `BENCH_kernel.json` (SWAR vs the scalar reference);
//! * [`cert`] — abstract-interpretation resource certificates for
//!   every (config × workload) pair of the default grid, the `OPD-A`
//!   lint sweep, and the `BENCH_cert.json` artifact behind
//!   `opd certify`;
//! * [`serve`] — the multi-tenant streaming study behind `opd serve`
//!   and `opd loadgen`: the ~10k-client fault-injected soak, the
//!   shed-curve sweep, the certificate-admission sweep, and the
//!   `BENCH_serve.json` artifact;
//! * [`exp`] — one module per paper artifact: Table 1, Table 2, and
//!   Figures 4–8, each with a `run` entry point and a printable
//!   result.
//!
//! Binaries (`table1`, `table2`, `fig4` … `fig8`, `sweep`) wrap these
//! modules; all accept `--scale` and `--threads`.
//!
//! # Examples
//!
//! ```no_run
//! use opd_experiments::exp::{table1, ExpOptions};
//!
//! let result = table1::run(&ExpOptions::default());
//! println!("{result}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod analysis;
pub mod cert;
pub mod checkpoint;
pub mod cli;
pub mod dash;
pub mod exp;
pub mod faults;
pub mod grid;
pub mod kernel_bench;
pub mod obs;
pub mod report;
pub mod runner;
pub mod sched;
pub mod serve;
