//! Minimal fixed-width table rendering for experiment output.

use core::fmt;

/// A text table: a title, a header row, and data rows. Columns are
/// sized to their widest cell; the first column is left-aligned and
/// the rest right-aligned (the usual layout for benchmark tables).
///
/// # Examples
///
/// ```
/// use opd_experiments::report::Table;
///
/// let mut t = Table::new("Demo", &["bench", "score"]);
/// t.row(vec!["lexgen".into(), "0.91".into()]);
/// let text = t.to_string();
/// assert!(text.contains("lexgen"));
/// assert!(text.contains("score"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    #[must_use]
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|&h| h.to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }

        writeln!(f, "{}", self.title)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total.max(self.title.len())))?;
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    f.write_str("  ")?;
                }
                if i == 0 {
                    write!(f, "{cell:<w$}")?;
                } else {
                    write!(f, "{cell:>w$}")?;
                }
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Renders a set of phase intervals as a fixed-width ASCII track:
/// `#` where the majority of the covered span is in phase, `.` where
/// it is in transition, `-` for mixed cells. Useful for eyeballing how
/// a detector's output lines up with the oracle's.
///
/// # Examples
///
/// ```
/// use opd_experiments::report::timeline;
/// use opd_trace::PhaseInterval;
///
/// let track = timeline(&[PhaseInterval::new(25, 75)], 100, 20);
/// assert_eq!(track.len(), 20);
/// assert_eq!(&track[..5], ".....");
/// assert_eq!(&track[6..14], "########");
/// ```
#[must_use]
pub fn timeline(phases: &[opd_trace::PhaseInterval], total: u64, width: usize) -> String {
    if total == 0 || width == 0 {
        return String::new();
    }
    let mut out = String::with_capacity(width);
    for cell in 0..width as u64 {
        let lo = cell * total / width as u64;
        let hi = ((cell + 1) * total / width as u64).max(lo + 1);
        let covered: u64 = phases
            .iter()
            .map(|p| p.end().min(hi).saturating_sub(p.start().max(lo)))
            .sum();
        let span = hi - lo;
        out.push(if covered == 0 {
            '.'
        } else if covered * 10 >= span * 9 {
            '#'
        } else {
            '-'
        });
    }
    out
}

/// Formats a score with three decimals.
#[must_use]
pub fn fmt_score(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a percentage with two decimals.
#[must_use]
pub fn fmt_pct(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats an MPL value the way the paper abbreviates it (1K, 200K).
#[must_use]
pub fn fmt_mpl(mpl: u64) -> String {
    if mpl % 1_000 == 0 {
        format!("{}K", mpl / 1_000)
    } else {
        mpl.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("T", &["name", "x"]);
        t.row(vec!["aaa".into(), "1".into()]);
        t.row(vec!["b".into(), "22".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "T");
        assert!(lines[2].starts_with("name"));
        // Right-aligned numeric column.
        assert!(lines[3].ends_with(" 1"));
        assert!(lines[4].ends_with("22"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        Table::new("T", &["a", "b"]).row(vec!["x".into()]);
    }

    #[test]
    fn timeline_tracks() {
        use opd_trace::PhaseInterval;
        // Empty inputs.
        assert_eq!(timeline(&[], 0, 10), "");
        assert_eq!(timeline(&[], 100, 0), "");
        assert_eq!(timeline(&[], 100, 10), "..........");
        // Full coverage.
        assert_eq!(
            timeline(&[PhaseInterval::new(0, 100)], 100, 10),
            "##########"
        );
        // Half coverage with a mixed boundary cell.
        let t = timeline(&[PhaseInterval::new(0, 55)], 100, 10);
        assert_eq!(&t[..5], "#####");
        assert_eq!(&t[6..], "....");
        assert_eq!(t.chars().nth(5), Some('-'));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_score(0.51234), "0.512");
        assert_eq!(fmt_pct(12.345), "12.35");
        assert_eq!(fmt_mpl(1_000), "1K");
        assert_eq!(fmt_mpl(200_000), "200K");
        assert_eq!(fmt_mpl(1_500), "1500");
    }
}
