//! Crash-safe checkpointing for long sweep runs.
//!
//! A full-grid sweep is hours of work at production scale; a crash at
//! 95% must not mean starting over. The sweep engine's unit of work —
//! one `(workload, engine unit)` bucket — is deterministic and
//! scan-order independent, so completed buckets can be persisted and
//! replayed: a resumed run recomputes only the missing buckets and is
//! bit-identical to an uninterrupted one.
//!
//! # File format
//!
//! ```text
//! magic  b"OPDK"
//! version u16 LE           (currently 1)
//! fingerprint u64 LE       (hash of configs + workloads + scale/fuel)
//! then, per completed bucket (append-only):
//!   marker 0xA5
//!   payload_len u32 LE
//!   payload                (bucket encoding, see below)
//!   checksum u64 LE        (FNV-1a 64 of the payload)
//! ```
//!
//! Each bucket payload holds `(workload index, unit index)` plus every
//! member config's detected phases as exact `u64`s — no floats, so
//! restoring is bit-identical by construction.
//!
//! Appends are one `write_all` of a fully-built record followed by a
//! flush: a crash mid-write leaves a partial record at the tail. The
//! reader accepts the longest valid prefix and reports the damaged
//! tail, which the resuming writer truncates away before appending.
//! A record whose declared length overruns the file (or a sanity cap)
//! is treated as tail damage — the length field itself may be the
//! corrupted byte.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::Path;

use opd_core::{DetectedPhase, DetectorConfig, SweepEngine, SweepScratch};
use opd_microvm::workloads::Workload;

use crate::runner::{config_run, lpt_plan, ConfigRun, PreparedWorkload};

/// The four magic bytes opening every checkpoint file.
pub const CHECKPOINT_MAGIC: &[u8; 4] = b"OPDK";
/// The checkpoint format version this build writes and reads.
pub const CHECKPOINT_VERSION: u16 = 1;
/// Header length: magic, version, fingerprint.
pub const CHECKPOINT_HEADER_LEN: usize = 4 + 2 + 8;
const RECORD_MARKER: u8 = 0xA5;
/// Sanity cap on a record's declared payload length: anything larger
/// is a corrupted length field, not a real bucket.
const MAX_RECORD_LEN: u32 = 64 << 20;

/// Errors reading a checkpoint file.
#[derive(Debug)]
#[non_exhaustive]
pub enum CheckpointError {
    /// The file could not be read or written.
    Io(io::Error),
    /// The file does not start with the `OPDK` magic.
    BadMagic,
    /// The file's format version is not supported.
    BadVersion(u16),
    /// The file was written by a run with different configs,
    /// workloads, or parameters.
    FingerprintMismatch {
        /// Fingerprint of the current run.
        expected: u64,
        /// Fingerprint stored in the file.
        found: u64,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io: {e}"),
            CheckpointError::BadMagic => f.write_str("not a checkpoint file (missing OPDK magic)"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::FingerprintMismatch { expected, found } => write!(
                f,
                "checkpoint belongs to a different run (fingerprint {found:#x}, \
                 this run is {expected:#x})"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// FNV-1a 64-bit: tiny, dependency-free, and plenty for detecting
/// torn writes (this is crash safety, not adversarial integrity).
#[must_use]
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Fingerprints a sweep's parameters so a checkpoint is only ever
/// resumed against the run that produced it.
#[must_use]
pub fn run_fingerprint(
    configs: &[DetectorConfig],
    workloads: &[Workload],
    scale: u32,
    fuel: u64,
) -> u64 {
    let mut text = format!("scale={scale};fuel={fuel};");
    for c in configs {
        text.push_str(&format!("{c:?};"));
    }
    for w in workloads {
        text.push_str(w.name());
        text.push(';');
    }
    fnv64(text.as_bytes())
}

/// The per-config phase lists of one completed `(workload, unit)`
/// bucket, exactly as [`SweepEngine::run_unit`] returned them.
pub type BucketRuns = Vec<(u32, Vec<DetectedPhase>)>;

/// What [`read_checkpoint`] recovered from a (possibly torn) file.
#[derive(Debug, Clone)]
pub struct RecoveredCheckpoint {
    /// The fingerprint stored in the header.
    pub fingerprint: u64,
    /// Completed buckets keyed by `(workload index, unit index)`.
    pub buckets: BTreeMap<(u32, u32), BucketRuns>,
    /// Length of the valid prefix; the resuming writer truncates the
    /// file here before appending.
    pub valid_len: u64,
    /// Bytes of torn or corrupt data discarded after the prefix.
    pub damaged_tail_bytes: u64,
}

/// An append-only checkpoint file.
#[derive(Debug)]
pub struct CheckpointWriter {
    file: File,
}

impl CheckpointWriter {
    /// Creates (or overwrites) a checkpoint file for a new run.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn create(path: &Path, fingerprint: u64) -> io::Result<Self> {
        let mut file = File::create(path)?;
        let mut header = Vec::with_capacity(CHECKPOINT_HEADER_LEN);
        header.extend_from_slice(CHECKPOINT_MAGIC);
        header.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
        header.extend_from_slice(&fingerprint.to_le_bytes());
        file.write_all(&header)?;
        file.flush()?;
        Ok(CheckpointWriter { file })
    }

    /// Reopens an existing checkpoint for appending, first truncating
    /// it to `valid_len` to drop a torn tail record.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn resume(path: &Path, valid_len: u64) -> io::Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(valid_len)?;
        let mut file = file;
        file.seek(SeekFrom::End(0))?;
        Ok(CheckpointWriter { file })
    }

    /// Appends one completed bucket as a single checksummed record.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn append_bucket(
        &mut self,
        workload: u32,
        unit: u32,
        runs: &[(usize, Vec<DetectedPhase>)],
    ) -> io::Result<()> {
        let payload = encode_bucket(workload, unit, runs);
        let mut record = Vec::with_capacity(payload.len() + 13);
        record.push(RECORD_MARKER);
        #[allow(clippy::cast_possible_truncation)]
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&payload);
        record.extend_from_slice(&fnv64(&payload).to_le_bytes());
        // One write + flush per bucket: a kill can only tear the final
        // record, which the reader discards.
        self.file.write_all(&record)?;
        self.file.flush()
    }
}

fn encode_bucket(workload: u32, unit: u32, runs: &[(usize, Vec<DetectedPhase>)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&workload.to_le_bytes());
    out.extend_from_slice(&unit.to_le_bytes());
    #[allow(clippy::cast_possible_truncation)]
    out.extend_from_slice(&(runs.len() as u32).to_le_bytes());
    for (ci, phases) in runs {
        #[allow(clippy::cast_possible_truncation)]
        out.extend_from_slice(&(*ci as u32).to_le_bytes());
        #[allow(clippy::cast_possible_truncation)]
        out.extend_from_slice(&(phases.len() as u32).to_le_bytes());
        for p in phases {
            out.extend_from_slice(&p.start.to_le_bytes());
            out.extend_from_slice(&p.anchored_start.to_le_bytes());
            match p.end {
                Some(end) => {
                    out.push(1);
                    out.extend_from_slice(&end.to_le_bytes());
                }
                None => {
                    out.push(0);
                    out.extend_from_slice(&0u64.to_le_bytes());
                }
            }
        }
    }
    out
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let out = self.buf.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(out)
    }

    fn u32_le(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().expect("4-byte slice")))
    }

    fn u64_le(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }
}

fn decode_bucket(payload: &[u8]) -> Option<((u32, u32), BucketRuns)> {
    let mut c = Cursor {
        buf: payload,
        pos: 0,
    };
    let workload = c.u32_le()?;
    let unit = c.u32_le()?;
    let n_runs = c.u32_le()?;
    let mut runs = Vec::with_capacity(n_runs.min(1 << 20) as usize);
    for _ in 0..n_runs {
        let ci = c.u32_le()?;
        let n_phases = c.u32_le()?;
        let mut phases = Vec::with_capacity(n_phases.min(1 << 20) as usize);
        for _ in 0..n_phases {
            let start = c.u64_le()?;
            let anchored_start = c.u64_le()?;
            let has_end = c.u8()?;
            let end = c.u64_le()?;
            phases.push(DetectedPhase {
                start,
                anchored_start,
                end: (has_end == 1).then_some(end),
            });
        }
        runs.push((ci, phases));
    }
    // Trailing garbage means the payload is not a bucket we wrote.
    (c.pos == payload.len()).then_some(((workload, unit), runs))
}

/// Parses a checkpoint image, accepting the longest valid record
/// prefix and discarding any torn or corrupt tail.
///
/// # Errors
///
/// Returns [`CheckpointError::BadMagic`] or
/// [`CheckpointError::BadVersion`] for files this build cannot have
/// written; tail damage is *not* an error (that is the crash being
/// survived).
pub fn parse_checkpoint(bytes: &[u8]) -> Result<RecoveredCheckpoint, CheckpointError> {
    if bytes.len() < CHECKPOINT_HEADER_LEN || &bytes[..4] != CHECKPOINT_MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2-byte slice"));
    if version != CHECKPOINT_VERSION {
        return Err(CheckpointError::BadVersion(version));
    }
    let fingerprint = u64::from_le_bytes(bytes[6..14].try_into().expect("8-byte slice"));

    let mut buckets = BTreeMap::new();
    let mut pos = CHECKPOINT_HEADER_LEN;
    while pos < bytes.len() {
        let record = &bytes[pos..];
        // Any structural damage from here on is a torn tail: stop at
        // the last whole record.
        if record[0] != RECORD_MARKER || record.len() < 5 {
            break;
        }
        let len = u32::from_le_bytes(record[1..5].try_into().expect("4-byte slice"));
        if len > MAX_RECORD_LEN {
            break;
        }
        let len = len as usize;
        if record.len() < 5 + len + 8 {
            break;
        }
        let payload = &record[5..5 + len];
        let checksum = u64::from_le_bytes(record[5 + len..5 + len + 8].try_into().expect("8"));
        if fnv64(payload) != checksum {
            break;
        }
        let Some((key, runs)) = decode_bucket(payload) else {
            break;
        };
        buckets.insert(key, runs);
        pos += 5 + len + 8;
    }

    Ok(RecoveredCheckpoint {
        fingerprint,
        buckets,
        valid_len: pos as u64,
        damaged_tail_bytes: (bytes.len() - pos) as u64,
    })
}

/// Reads and parses a checkpoint file.
///
/// # Errors
///
/// Propagates I/O failures and the structural errors of
/// [`parse_checkpoint`].
pub fn read_checkpoint(path: &Path) -> Result<RecoveredCheckpoint, CheckpointError> {
    parse_checkpoint(&std::fs::read(path)?)
}

/// How a checkpointed sweep's work split between restore and compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResumeSummary {
    /// Buckets restored from the checkpoint file.
    pub restored_buckets: usize,
    /// Buckets computed (and appended) by this run.
    pub computed_buckets: usize,
    /// Torn bytes discarded from the file's tail before resuming.
    pub damaged_tail_bytes: u64,
}

/// Like [`crate::runner::sweep_many`], but checkpointing each
/// completed `(workload, unit)` bucket to `path` — and, when `resume`
/// is set and the file exists, restoring completed buckets instead of
/// recomputing them.
///
/// Results are bit-identical to an uninterrupted
/// [`crate::runner::sweep_many`] run regardless of where (or whether)
/// the previous run died: buckets are deterministic and phase records
/// are exact integers.
///
/// # Errors
///
/// Returns [`CheckpointError`] for I/O failures, for a checkpoint
/// written by an incompatible build, or for one whose fingerprint does
/// not match this run's `configs`/`prepared` parameters.
pub fn sweep_many_checkpointed(
    prepared: &[PreparedWorkload],
    configs: &[DetectorConfig],
    threads: usize,
    path: &Path,
    fingerprint: u64,
    resume: bool,
) -> Result<(Vec<Vec<ConfigRun>>, ResumeSummary), CheckpointError> {
    sweep_many_checkpointed_with_progress(
        prepared,
        configs,
        threads,
        path,
        fingerprint,
        resume,
        &|_, _| {},
    )
}

/// [`sweep_many_checkpointed`] with a progress callback: `progress(
/// completed, total)` fires once per bucket append (after the durable
/// write), with `completed` counting restored buckets too. The CLI's
/// heartbeat line for long runs hangs off this; the callback runs
/// under the writer lock, so keep it cheap.
///
/// # Errors
///
/// Same as [`sweep_many_checkpointed`].
pub fn sweep_many_checkpointed_with_progress(
    prepared: &[PreparedWorkload],
    configs: &[DetectorConfig],
    threads: usize,
    path: &Path,
    fingerprint: u64,
    resume: bool,
    progress: &(dyn Fn(usize, usize) + Sync),
) -> Result<(Vec<Vec<ConfigRun>>, ResumeSummary), CheckpointError> {
    let engine = SweepEngine::new(configs);

    let (mut buckets, writer, damaged_tail_bytes) = if resume && path.exists() {
        let recovered = read_checkpoint(path)?;
        if recovered.fingerprint != fingerprint {
            return Err(CheckpointError::FingerprintMismatch {
                expected: fingerprint,
                found: recovered.fingerprint,
            });
        }
        let writer = CheckpointWriter::resume(path, recovered.valid_len)?;
        (recovered.buckets, writer, recovered.damaged_tail_bytes)
    } else {
        (
            BTreeMap::new(),
            CheckpointWriter::create(path, fingerprint)?,
            0,
        )
    };
    let restored_buckets = buckets.len();

    // Work items: every (workload, unit) pair not already restored.
    #[allow(clippy::cast_possible_truncation)]
    let items: Vec<(u32, u32, u64)> = prepared
        .iter()
        .enumerate()
        .flat_map(|(wi, p)| {
            engine.units().iter().enumerate().map(move |(ui, unit)| {
                (
                    wi as u32,
                    ui as u32,
                    opd_analyze::unit_cost(
                        configs,
                        unit,
                        p.total_elements(),
                        p.site_capacity() as u64,
                    ),
                )
            })
        })
        .filter(|&(wi, ui, _)| !buckets.contains_key(&(wi, ui)))
        .collect();
    let computed_buckets = items.len();

    let site_capacity = prepared
        .iter()
        .map(PreparedWorkload::site_capacity)
        .max()
        .unwrap_or(0);
    let threads = threads.max(1).min(items.len().max(1));
    let total_buckets = restored_buckets + items.len();
    let completed = std::sync::atomic::AtomicUsize::new(restored_buckets);
    let completed = &completed;

    if threads <= 1 {
        let mut writer = writer;
        let mut scratch = SweepScratch::with_site_capacity(site_capacity);
        for &(wi, ui, _) in &items {
            let runs = engine.run_unit(ui as usize, prepared[wi as usize].interned(), &mut scratch);
            writer.append_bucket(wi, ui, &runs)?;
            let done = completed.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
            progress(done, total_buckets);
            #[allow(clippy::cast_possible_truncation)]
            buckets.insert(
                (wi, ui),
                runs.into_iter().map(|(ci, p)| (ci as u32, p)).collect(),
            );
        }
    } else {
        let costs: Vec<u64> = items.iter().map(|&(_, _, c)| c).collect();
        let plan: Vec<Vec<(u32, u32)>> = lpt_plan(&costs, threads)
            .into_iter()
            .map(|b| b.into_iter().map(|i| (items[i].0, items[i].1)).collect())
            .collect();
        let engine = &engine;
        let shared = std::sync::Mutex::new(writer);
        let shared = &shared;
        type WorkerOut = Vec<((u32, u32), BucketRuns)>;
        let results: Vec<io::Result<WorkerOut>> = std::thread::scope(|s| {
            let handles: Vec<_> = plan
                .into_iter()
                .map(|bucket| {
                    s.spawn(move || {
                        let mut scratch = SweepScratch::with_site_capacity(site_capacity);
                        let mut local = Vec::new();
                        for (wi, ui) in bucket {
                            let runs = engine.run_unit(
                                ui as usize,
                                prepared[wi as usize].interned(),
                                &mut scratch,
                            );
                            {
                                let mut writer = shared.lock().expect("checkpoint writer lock");
                                writer.append_bucket(wi, ui, &runs)?;
                                let done = completed
                                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
                                    + 1;
                                progress(done, total_buckets);
                            }
                            #[allow(clippy::cast_possible_truncation)]
                            local.push((
                                (wi, ui),
                                runs.into_iter()
                                    .map(|(ci, p)| (ci as u32, p))
                                    .collect::<BucketRuns>(),
                            ));
                        }
                        Ok(local)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("checkpoint sweep worker panicked"))
                .collect()
        });
        for worker in results {
            for (key, runs) in worker? {
                buckets.insert(key, runs);
            }
        }
    }

    // Assemble configs-ordered results per workload from the buckets.
    let mut out: Vec<Vec<Option<ConfigRun>>> = prepared
        .iter()
        .map(|_| configs.iter().map(|_| None).collect())
        .collect();
    for ((wi, _), runs) in &buckets {
        let p = &prepared[*wi as usize];
        let total = p.interned().len() as u64;
        for (ci, phases) in runs {
            out[*wi as usize][*ci as usize] =
                Some(config_run(configs[*ci as usize], phases, total));
        }
    }
    let out = out
        .into_iter()
        .map(|w| {
            w.into_iter()
                .map(|o| o.expect("every (workload, config) cell restored or computed"))
                .collect()
        })
        .collect();
    Ok((
        out,
        ResumeSummary {
            restored_buckets,
            computed_buckets,
            damaged_tail_bytes,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::default_plan_grid;
    use crate::runner::{prepare_all, sweep_many};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("opd_checkpoint_tests");
        std::fs::create_dir_all(&dir).expect("create tmp dir");
        dir.join(name)
    }

    fn sample_phases() -> Vec<(usize, Vec<DetectedPhase>)> {
        vec![
            (
                0,
                vec![
                    DetectedPhase {
                        start: 10,
                        anchored_start: 5,
                        end: Some(40),
                    },
                    DetectedPhase {
                        start: 50,
                        anchored_start: 48,
                        end: None,
                    },
                ],
            ),
            (3, vec![]),
        ]
    }

    #[test]
    fn bucket_roundtrips_through_the_record_format() {
        let path = tmp("roundtrip.opdk");
        let mut w = CheckpointWriter::create(&path, 0xDEAD).unwrap();
        w.append_bucket(1, 2, &sample_phases()).unwrap();
        w.append_bucket(7, 0, &[]).unwrap();
        drop(w);

        let recovered = read_checkpoint(&path).unwrap();
        assert_eq!(recovered.fingerprint, 0xDEAD);
        assert_eq!(recovered.damaged_tail_bytes, 0);
        assert_eq!(recovered.buckets.len(), 2);
        let runs = &recovered.buckets[&(1, 2)];
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].0, 0);
        assert_eq!(runs[0].1[0].end, Some(40));
        assert_eq!(runs[0].1[1].end, None);
        assert!(recovered.buckets[&(7, 0)].is_empty());
    }

    #[test]
    fn torn_tail_is_discarded_not_fatal() {
        let path = tmp("torn.opdk");
        let mut w = CheckpointWriter::create(&path, 1).unwrap();
        w.append_bucket(0, 0, &sample_phases()).unwrap();
        w.append_bucket(0, 1, &sample_phases()).unwrap();
        drop(w);
        // Simulate a kill mid-append: chop 5 bytes off the last record.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();

        let recovered = read_checkpoint(&path).unwrap();
        assert_eq!(recovered.buckets.len(), 1, "only the whole record");
        assert!(recovered.buckets.contains_key(&(0, 0)));
        assert!(recovered.damaged_tail_bytes > 0);
        // Resuming truncates the tail and can append again.
        let mut w = CheckpointWriter::resume(&path, recovered.valid_len).unwrap();
        w.append_bucket(0, 1, &sample_phases()).unwrap();
        drop(w);
        let again = read_checkpoint(&path).unwrap();
        assert_eq!(again.buckets.len(), 2);
        assert_eq!(again.damaged_tail_bytes, 0);
    }

    #[test]
    fn checkpointed_sweep_is_bit_identical_after_a_kill() {
        // The tentpole acceptance test: full sweep, killed sweep +
        // resume, and fresh checkpointed sweep must agree exactly.
        let prepared = prepare_all(
            &[Workload::Lexgen, Workload::Blockcomp],
            1,
            &[1_000],
            30_000,
        );
        let configs = default_plan_grid();
        let reference = sweep_many(&prepared, &configs, 2);
        let fp = run_fingerprint(
            &configs,
            &[Workload::Lexgen, Workload::Blockcomp],
            1,
            30_000,
        );

        // Run once to completion with checkpointing.
        let path = tmp("kill_resume.opdk");
        let _ = std::fs::remove_file(&path);
        let (full, summary) =
            sweep_many_checkpointed(&prepared, &configs, 2, &path, fp, false).unwrap();
        assert_eq!(summary.restored_buckets, 0);
        assert_eq!(summary.computed_buckets, 2, "one shared unit per workload");

        // Simulate the kill: drop the last 7 bytes (mid-record tear).
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();

        // Resume: one bucket restored, one recomputed.
        let (resumed, summary) =
            sweep_many_checkpointed(&prepared, &configs, 2, &path, fp, true).unwrap();
        assert_eq!(summary.restored_buckets, 1);
        assert_eq!(summary.computed_buckets, 1);
        assert!(summary.damaged_tail_bytes > 0);

        for (w_ref, (w_full, w_res)) in reference.iter().zip(full.iter().zip(&resumed)) {
            for (r_ref, (r_full, r_res)) in w_ref.iter().zip(w_full.iter().zip(w_res)) {
                assert_eq!(r_ref.detected, r_full.detected);
                assert_eq!(r_ref.anchored, r_full.anchored);
                assert_eq!(r_ref.detected, r_res.detected);
                assert_eq!(r_ref.anchored, r_res.anchored);
            }
        }

        // A fully-restored resume computes nothing and still agrees.
        let (restored, summary) =
            sweep_many_checkpointed(&prepared, &configs, 2, &path, fp, true).unwrap();
        assert_eq!(summary.computed_buckets, 0);
        assert_eq!(summary.restored_buckets, 2);
        for (w_ref, w_res) in reference.iter().zip(&restored) {
            for (r_ref, r_res) in w_ref.iter().zip(w_res) {
                assert_eq!(r_ref.detected, r_res.detected);
            }
        }
    }

    #[test]
    fn progress_fires_once_per_computed_bucket() {
        let prepared = prepare_all(
            &[Workload::Lexgen, Workload::Blockcomp],
            1,
            &[1_000],
            20_000,
        );
        let configs = default_plan_grid();
        let fp = run_fingerprint(
            &configs,
            &[Workload::Lexgen, Workload::Blockcomp],
            1,
            20_000,
        );
        let path = tmp("progress.opdk");
        let _ = std::fs::remove_file(&path);
        let ticks = std::sync::Mutex::new(Vec::new());
        let (_, summary) = sweep_many_checkpointed_with_progress(
            &prepared,
            &configs,
            2,
            &path,
            fp,
            false,
            &|done, total| ticks.lock().unwrap().push((done, total)),
        )
        .unwrap();
        let mut ticks = ticks.into_inner().unwrap();
        ticks.sort_unstable();
        assert_eq!(summary.computed_buckets, 2);
        assert_eq!(ticks, vec![(1, 2), (2, 2)]);
        // A fully-restored resume has nothing to report.
        let quiet = std::sync::Mutex::new(0usize);
        let (_, summary) = sweep_many_checkpointed_with_progress(
            &prepared,
            &configs,
            2,
            &path,
            fp,
            true,
            &|_, _| *quiet.lock().unwrap() += 1,
        )
        .unwrap();
        assert_eq!(summary.computed_buckets, 0);
        assert_eq!(quiet.into_inner().unwrap(), 0);
    }

    #[test]
    fn fingerprint_mismatch_is_rejected() {
        let prepared = prepare_all(&[Workload::Lexgen], 1, &[1_000], 10_000);
        let configs = default_plan_grid();
        let path = tmp("fingerprint.opdk");
        let _ = std::fs::remove_file(&path);
        let (_, _) = sweep_many_checkpointed(&prepared, &configs, 1, &path, 111, false).unwrap();
        let err = sweep_many_checkpointed(&prepared, &configs, 1, &path, 222, true).unwrap_err();
        assert!(matches!(
            err,
            CheckpointError::FingerprintMismatch {
                expected: 222,
                found: 111
            }
        ));
    }

    #[test]
    fn structural_damage_is_rejected_with_typed_errors() {
        assert!(matches!(
            parse_checkpoint(b"not a checkpoint"),
            Err(CheckpointError::BadMagic)
        ));
        let mut image = Vec::new();
        image.extend_from_slice(CHECKPOINT_MAGIC);
        image.extend_from_slice(&99u16.to_le_bytes());
        image.extend_from_slice(&0u64.to_le_bytes());
        assert!(matches!(
            parse_checkpoint(&image),
            Err(CheckpointError::BadVersion(99))
        ));
        for e in [
            CheckpointError::BadMagic,
            CheckpointError::BadVersion(9),
            CheckpointError::FingerprintMismatch {
                expected: 1,
                found: 2,
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn run_fingerprint_separates_parameters() {
        let configs = default_plan_grid();
        let a = run_fingerprint(&configs, &[Workload::Lexgen], 1, 100);
        let b = run_fingerprint(&configs, &[Workload::Lexgen], 2, 100);
        let c = run_fingerprint(&configs, &[Workload::Blockcomp], 1, 100);
        let d = run_fingerprint(&configs[..1], &[Workload::Lexgen], 1, 100);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }
}
