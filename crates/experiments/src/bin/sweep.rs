//! Sweeps the full >10,000-configuration grid over one workload and
//! prints the ten most accurate detectors per MPL value.
//!
//! Flags: `--scale N --threads N` (the workload is fixed to `ruleng`,
//! a mid-sized benchmark; edit here to sweep another), plus
//! `--write-bench`: additionally re-sweep the grid on the scalar
//! reference kernel, assert both kernels produced identical results,
//! and write the timing comparison to `BENCH_kernel.json` at the
//! repository root.

use opd_experiments::cli;
use opd_experiments::grid::{full_grid, MPLS_TABLE1};
use opd_experiments::kernel_bench::run_kernel_bench;
use opd_experiments::report::{fmt_mpl, fmt_score, Table};
use opd_experiments::runner::{sweep, PreparedWorkload};
use opd_microvm::workloads::Workload;

fn main() {
    // `--write-bench` is this binary's own flag; everything else goes
    // to the shared parser (which rejects unknown flags).
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let write_bench = args.iter().any(|a| a == "--write-bench");
    args.retain(|a| a != "--write-bench");
    let opts = match cli::parse_args(args) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let workload = Workload::Ruleng;

    eprintln!("preparing {workload} at scale {} ...", opts.scale);
    let prepare_started = std::time::Instant::now();
    let prepared = PreparedWorkload::prepare(workload, opts.scale, &MPLS_TABLE1);
    let prepare_seconds = prepare_started.elapsed().as_secs_f64();
    let configs = full_grid();
    eprintln!(
        "prepared {} elements in {prepare_seconds:.1}s; sweeping {} configurations on {} threads ...",
        prepared.total_elements(),
        configs.len(),
        opts.threads
    );

    if write_bench {
        let report = run_kernel_bench(&prepared, &configs, opts.threads, prepare_seconds);
        assert!(
            report.results_identical,
            "scalar and SWAR kernels diverged on the full grid"
        );
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernel.json");
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(2);
        }
        eprintln!(
            "swar sweep {:.1}s ({:.1}x vs baseline), scalar sweep {:.1}s ({:.1}x vs scalar); \
             results identical; wrote BENCH_kernel.json",
            report.swar().sweep_seconds,
            report.swar().speedup_vs_baseline(),
            report.scalar().sweep_seconds,
            report.swar_speedup_vs_scalar(),
        );
        return;
    }

    let sweep_started = std::time::Instant::now();
    let runs = sweep(&prepared, &configs, opts.threads);
    let sweep_seconds = sweep_started.elapsed().as_secs_f64();

    for &mpl in &MPLS_TABLE1 {
        let oracle = prepared.oracle(mpl);
        let mut scored: Vec<(f64, String)> = runs
            .iter()
            .map(|r| (r.score(oracle).combined(), r.config.to_string()))
            .collect();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0));
        let mut t = Table::new(
            &format!("Top detectors for {workload}, MPL {}", fmt_mpl(mpl)),
            &["Score", "Configuration"],
        );
        for (score, config) in scored.into_iter().take(10) {
            t.row(vec![fmt_score(score), config]);
        }
        println!("{t}");
    }
    eprintln!("(prepare {prepare_seconds:.1}s, sweep {sweep_seconds:.1}s)");
}
