//! Sweeps the full >10,000-configuration grid over one workload and
//! prints the ten most accurate detectors per MPL value.
//!
//! Flags: `--scale N --threads N` (the workload is fixed to `ruleng`,
//! a mid-sized benchmark; edit here to sweep another).

use opd_experiments::cli;
use opd_experiments::grid::{full_grid, MPLS_TABLE1};
use opd_experiments::report::{fmt_mpl, fmt_score, Table};
use opd_experiments::runner::{sweep, PreparedWorkload};
use opd_microvm::workloads::Workload;

fn main() {
    let opts = cli::parse_env();
    let workload = Workload::Ruleng;
    let started = std::time::Instant::now();

    eprintln!("preparing {workload} at scale {} ...", opts.scale);
    let prepared = PreparedWorkload::prepare(workload, opts.scale, &MPLS_TABLE1);
    let configs = full_grid();
    eprintln!(
        "sweeping {} configurations over {} elements on {} threads ...",
        configs.len(),
        prepared.total_elements(),
        opts.threads
    );
    let runs = sweep(&prepared, &configs, opts.threads);

    for &mpl in &MPLS_TABLE1 {
        let oracle = prepared.oracle(mpl);
        let mut scored: Vec<(f64, String)> = runs
            .iter()
            .map(|r| (r.score(oracle).combined(), r.config.to_string()))
            .collect();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0));
        let mut t = Table::new(
            &format!("Top detectors for {workload}, MPL {}", fmt_mpl(mpl)),
            &["Score", "Configuration"],
        );
        for (score, config) in scored.into_iter().take(10) {
            t.row(vec![fmt_score(score), config]);
        }
        println!("{t}");
    }
    eprintln!("(sweep completed in {:.1?})", started.elapsed());
}
