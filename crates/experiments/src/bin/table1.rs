//! Regenerates the paper's table1 artifact. Flags: --scale N --threads N.

use opd_experiments::cli;
use opd_experiments::exp::{table1, ExpOptions};

fn main() {
    let opts = ExpOptions::from_cli(cli::parse_env());
    let started = std::time::Instant::now();
    let result = table1::run(&opts);
    println!("{result}");
    eprintln!(
        "(table1 completed in {:.1?} at scale {})",
        started.elapsed(),
        opts.scale
    );
}
