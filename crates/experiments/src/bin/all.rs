//! Runs every experiment in sequence and writes each artifact to a
//! results directory — the one-command regeneration of the paper's
//! evaluation plus this repository's extension studies.
//!
//! ```sh
//! all [--scale N] [--threads N] [--out DIR]    # default DIR: results
//! ```

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use opd_experiments::cli::{parse_args, CliOpts};
use opd_experiments::exp::{
    client, fig4, fig5, fig6, fig7, fig8, inputs, overhead, related, sampling, scaling, table1,
    table2, ExpOptions,
};

fn main() -> std::process::ExitCode {
    // Split off --out, hand the rest to the shared parser.
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir = PathBuf::from("results");
    if let Some(i) = raw.iter().position(|a| a == "--out") {
        if i + 1 >= raw.len() {
            eprintln!("missing value for --out");
            return std::process::ExitCode::from(2);
        }
        out_dir = PathBuf::from(raw.remove(i + 1));
        raw.remove(i);
    }
    let cli: CliOpts = match parse_args(raw) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return std::process::ExitCode::from(2);
        }
    };
    let opts = ExpOptions::from_cli(cli);

    if let Err(e) = fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        return std::process::ExitCode::from(2);
    }

    let mut summary = String::new();
    let total = Instant::now();
    macro_rules! run_exp {
        ($name:literal, $module:ident) => {{
            let started = Instant::now();
            eprint!("{:>9} ... ", $name);
            let result = $module::run(&opts);
            let text = result.to_string();
            let path = out_dir.join(concat!($name, ".txt"));
            if let Err(e) = fs::write(&path, format!("{text}\n")) {
                eprintln!("cannot write {}: {e}", path.display());
                return std::process::ExitCode::from(2);
            }
            let elapsed = started.elapsed();
            eprintln!("{elapsed:.1?} -> {}", path.display());
            summary.push_str(&format!("{}: {elapsed:.1?}\n", $name));
        }};
    }

    run_exp!("table1", table1);
    run_exp!("table2", table2);
    run_exp!("fig4", fig4);
    run_exp!("fig5", fig5);
    run_exp!("fig6", fig6);
    run_exp!("fig7", fig7);
    run_exp!("fig8", fig8);
    run_exp!("related", related);
    run_exp!("overhead", overhead);
    run_exp!("client", client);
    run_exp!("scaling", scaling);
    run_exp!("sampling", sampling);
    run_exp!("inputs", inputs);

    summary.push_str(&format!(
        "total: {:.1?} at scale {}\n",
        total.elapsed(),
        opts.scale
    ));
    let path = out_dir.join("summary.txt");
    match fs::File::create(&path).and_then(|mut f| f.write_all(summary.as_bytes())) {
        Ok(()) => {
            eprintln!("all experiments done in {:.1?}", total.elapsed());
            std::process::ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::ExitCode::from(2)
        }
    }
}
