//! Runs the scale-sensitivity study of the large-MPL regime.
//! Flags: --scale N --threads N (scales N, 2N, 3N are measured).

use opd_experiments::cli;
use opd_experiments::exp::{scaling, ExpOptions};

fn main() {
    let opts = ExpOptions::from_cli(cli::parse_env());
    let started = std::time::Instant::now();
    let result = scaling::run(&opts);
    println!("{result}");
    for mpl in scaling::SCALING_MPLS {
        println!(
            "gap closes with scale at MPL {}: {}",
            mpl,
            result.gap_closes_with_scale(mpl)
        );
    }
    eprintln!("(scaling completed in {:.1?})", started.elapsed());
}
