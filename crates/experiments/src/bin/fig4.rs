//! Regenerates the paper's fig4 artifact. Flags: --scale N --threads N.

use opd_experiments::cli;
use opd_experiments::exp::{fig4, ExpOptions};

fn main() {
    let opts = ExpOptions::from_cli(cli::parse_env());
    let started = std::time::Instant::now();
    let result = fig4::run(&opts);
    println!("{result}");
    eprintln!(
        "(fig4 completed in {:.1?} at scale {})",
        started.elapsed(),
        opts.scale
    );
}
