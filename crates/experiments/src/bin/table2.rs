//! Regenerates the paper's table2 artifact. Flags: --scale N --threads N.

use opd_experiments::cli;
use opd_experiments::exp::{table2, ExpOptions};

fn main() {
    let opts = ExpOptions::from_cli(cli::parse_env());
    let started = std::time::Instant::now();
    let result = table2::run(&opts);
    println!("{result}");
    eprintln!(
        "(table2 completed in {:.1?} at scale {})",
        started.elapsed(),
        opts.scale
    );
}
