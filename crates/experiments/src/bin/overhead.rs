//! Measures phase-detection overhead per configuration family.
//! Flags: --scale N --threads N.

use opd_experiments::cli;
use opd_experiments::exp::{overhead, ExpOptions};

fn main() {
    let opts = ExpOptions::from_cli(cli::parse_env());
    let result = overhead::run(&opts);
    println!("{result}");
}
