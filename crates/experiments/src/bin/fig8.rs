//! Regenerates the paper's fig8 artifact. Flags: --scale N --threads N.

use opd_experiments::cli;
use opd_experiments::exp::{fig8, ExpOptions};

fn main() {
    let opts = ExpOptions::from_cli(cli::parse_env());
    let started = std::time::Instant::now();
    let result = fig8::run(&opts);
    println!("{result}");
    eprintln!(
        "(fig8 completed in {:.1?} at scale {})",
        started.elapsed(),
        opts.scale
    );
}
