//! Runs the phase-aware optimization client study.
//! Flags: --scale N --threads N.

use opd_experiments::cli;
use opd_experiments::exp::{client, ExpOptions};

fn main() {
    let opts = ExpOptions::from_cli(cli::parse_env());
    let started = std::time::Instant::now();
    let result = client::run(&opts);
    println!("{result}");
    eprintln!(
        "(client completed in {:.1?} at scale {})",
        started.elapsed(),
        opts.scale
    );
}
