//! A small command-line tool over the trace container format:
//!
//! ```sh
//! tracetool record <workload> <file> [--scale N]   # capture a trace
//! tracetool info <file>                            # stats + site counts
//! tracetool phases <file> --mpl N                  # oracle phases
//! tracetool detect <file> --mpl N                  # run a detector, score it
//! ```
//!
//! Workload names: blockcomp, ruleng, tracer, querydb, srccomp,
//! audiodec, parsegen, lexgen.

use std::fs;
use std::process::ExitCode;

use opd_baseline::CallLoopForest;
use opd_core::{DetectorConfig, InternedTrace, PhaseDetector, TwPolicy};
use opd_microvm::workloads::Workload;
use opd_scoring::score_states;
use opd_trace::{decode_trace, encode_trace, ExecutionTrace, TraceStats};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  tracetool record <workload> <file> [--scale N]\n  tracetool info <file>\n  tracetool phases <file> --mpl N\n  tracetool detect <file> --mpl N"
    );
    ExitCode::from(2)
}

fn find_workload(name: &str) -> Option<Workload> {
    Workload::ALL.into_iter().find(|w| w.name() == name)
}

fn load(path: &str) -> Result<ExecutionTrace, String> {
    let bytes = fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    decode_trace(&bytes).map_err(|e| format!("cannot decode {path}: {e}"))
}

fn parse_mpl(args: &[String]) -> Result<u64, String> {
    match args {
        [flag, value] if flag == "--mpl" => value
            .parse()
            .map_err(|e| format!("bad --mpl value {value}: {e}")),
        _ => Err("expected: --mpl N".to_owned()),
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) if cmd == "record" => {
            let (name, file, scale) = match rest {
                [name, file] => (name, file, 1u32),
                [name, file, flag, n] if flag == "--scale" => (
                    name,
                    file,
                    n.parse().map_err(|e| format!("bad --scale: {e}"))?,
                ),
                _ => return Err("expected: record <workload> <file> [--scale N]".to_owned()),
            };
            let workload =
                find_workload(name).ok_or_else(|| format!("unknown workload `{name}`"))?;
            let trace = workload.trace(scale);
            let bytes = encode_trace(&trace);
            fs::write(file, &bytes).map_err(|e| format!("cannot write {file}: {e}"))?;
            println!(
                "recorded {workload} at scale {scale}: {} ({} bytes) -> {file}",
                TraceStats::measure(&trace),
                bytes.len()
            );
            Ok(())
        }
        Some((cmd, rest)) if cmd == "info" => {
            let [file] = rest else {
                return Err("expected: info <file>".to_owned());
            };
            let trace = load(file)?;
            let stats = TraceStats::measure(&trace);
            let interned = InternedTrace::from(trace.branches());
            println!("{file}: {stats}");
            println!("distinct profile elements: {}", interned.distinct_count());
            println!("call-loop events: {}", trace.events().len());
            Ok(())
        }
        Some((cmd, rest)) if cmd == "phases" => {
            let (file, flags) = rest
                .split_first()
                .ok_or_else(|| "expected: phases <file> --mpl N".to_owned())?;
            let mpl = parse_mpl(flags)?;
            let trace = load(file)?;
            let forest = CallLoopForest::build(&trace).map_err(|e| e.to_string())?;
            let sol = forest.solve(mpl);
            println!("{sol}");
            for p in sol.phases().iter().take(40) {
                println!("  {p} ({} elements)", p.len());
            }
            if sol.phase_count() > 40 {
                println!("  ... and {} more", sol.phase_count() - 40);
            }
            Ok(())
        }
        Some((cmd, rest)) if cmd == "detect" => {
            let (file, flags) = rest
                .split_first()
                .ok_or_else(|| "expected: detect <file> --mpl N".to_owned())?;
            let mpl = parse_mpl(flags)?;
            let trace = load(file)?;
            let forest = CallLoopForest::build(&trace).map_err(|e| e.to_string())?;
            let oracle = forest.solve(mpl);
            let config = DetectorConfig::builder()
                .current_window(((mpl / 2).max(1)) as usize)
                .tw_policy(TwPolicy::Adaptive)
                .build()
                .map_err(|e| e.to_string())?;
            let mut detector = PhaseDetector::new(config);
            let states = detector.run(trace.branches());
            println!("config: {}", detector.config());
            println!("oracle: {oracle}");
            println!("{}", score_states(&states, &oracle));
            Ok(())
        }
        _ => {
            usage();
            Err(String::new())
        }
    }
}

fn main() -> ExitCode {
    // Every `run` error is a malformed command line, an unreadable
    // input, or an undecodable container — all exit 2 under the CLI
    // contract (1 is reserved for findings at a failing severity).
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            ExitCode::from(2)
        }
    }
}
