//! Runs the sampling study: profile-collection overhead vs accuracy.
//! Flags: --scale N --threads N.

use opd_experiments::cli;
use opd_experiments::exp::{sampling, ExpOptions};

fn main() {
    let opts = ExpOptions::from_cli(cli::parse_env());
    let started = std::time::Instant::now();
    let result = sampling::run(&opts);
    println!("{result}");
    println!(
        "largest stride retaining 90% of the unsampled score: 1/{}",
        result.max_stride_retaining(0.9)
    );
    eprintln!("(sampling completed in {:.1?})", started.elapsed());
}
