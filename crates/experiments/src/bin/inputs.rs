//! Runs the input-generality study (branches vs sites vs methods).
//! Flags: --scale N --threads N.

use opd_experiments::cli;
use opd_experiments::exp::{inputs, ExpOptions};

fn main() {
    let opts = ExpOptions::from_cli(cli::parse_env());
    let started = std::time::Instant::now();
    let result = inputs::run(&opts);
    println!("{result}");
    eprintln!(
        "(inputs completed in {:.1?} at scale {})",
        started.elapsed(),
        opts.scale
    );
}
