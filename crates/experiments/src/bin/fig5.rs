//! Regenerates the paper's fig5 artifact. Flags: --scale N --threads N.

use opd_experiments::cli;
use opd_experiments::exp::{fig5, ExpOptions};

fn main() {
    let opts = ExpOptions::from_cli(cli::parse_env());
    let started = std::time::Instant::now();
    let result = fig5::run(&opts);
    println!("{result}");
    eprintln!(
        "(fig5 completed in {:.1?} at scale {})",
        started.elapsed(),
        opts.scale
    );
}
