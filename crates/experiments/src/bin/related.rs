//! Runs the extension study: the framework versus related-work
//! detectors (Dhodapkar-Smith, Das et al. Pearson, Lu et al.
//! PC-range). Flags: --scale N --threads N.

use opd_experiments::cli;
use opd_experiments::exp::{related, ExpOptions};

fn main() {
    let opts = ExpOptions::from_cli(cli::parse_env());
    let started = std::time::Instant::now();
    let result = related::run(&opts);
    println!("{result}");
    eprintln!(
        "(related completed in {:.1?} at scale {})",
        started.elapsed(),
        opts.scale
    );
}
