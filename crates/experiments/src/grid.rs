//! The detector parameter spaces of the paper's study.

use core::fmt;

use opd_core::{
    AnalyzerPolicy, AnchorPolicy, ConfigError, DetectorConfig, ModelPolicy, ResizePolicy, TwPolicy,
};

/// The MPL values of Table 1(b), Table 2, and Figure 7.
pub const MPLS_TABLE1: [u64; 6] = [1_000, 5_000, 10_000, 25_000, 50_000, 100_000];

/// The MPL values of Figures 4 and 8 (Table 1's plus 200K).
pub const MPLS_FIG4: [u64; 7] = [1_000, 5_000, 10_000, 25_000, 50_000, 100_000, 200_000];

/// The MPL values of Figures 5 and 6.
pub const MPLS_MAIN: [u64; 4] = [1_000, 10_000, 50_000, 100_000];

/// The current-window sizes considered in Section 4.2.
pub const CW_SIZES: [usize; 7] = [500, 1_000, 5_000, 10_000, 25_000, 50_000, 100_000];

/// The fixed-threshold analyzer values of Figure 6.
pub const THRESHOLD_VALUES: [f64; 4] = [0.5, 0.6, 0.7, 0.8];

/// The average-analyzer delta values of Figure 6.
pub const AVERAGE_DELTAS: [f64; 6] = [0.01, 0.05, 0.1, 0.2, 0.3, 0.4];

/// The three trailing-window strategies compared throughout the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TwKind {
    /// Adaptive TW, skip factor 1 (RN anchor + sliding resize unless
    /// overridden).
    Adaptive,
    /// Constant TW, skip factor 1.
    Constant,
    /// Constant TW with skip factor = CW size = TW size — the policy
    /// most common in prior work.
    FixedInterval,
}

impl TwKind {
    /// All three strategies, in the paper's presentation order.
    pub const ALL: [TwKind; 3] = [TwKind::Adaptive, TwKind::Constant, TwKind::FixedInterval];

    /// A short label matching the paper's terminology.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            TwKind::Adaptive => "Adaptive TW",
            TwKind::Constant => "Constant TW",
            TwKind::FixedInterval => "Fixed Interval",
        }
    }
}

impl fmt::Display for TwKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The paper's ten analyzers: four fixed thresholds and six
/// average-deltas (Figure 6).
#[must_use]
pub fn paper_analyzers() -> Vec<AnalyzerPolicy> {
    THRESHOLD_VALUES
        .iter()
        .map(|&t| AnalyzerPolicy::Threshold(t))
        .chain(
            AVERAGE_DELTAS
                .iter()
                .map(|&delta| AnalyzerPolicy::Average { delta }),
        )
        .collect()
}

/// Builds one detector configuration for a trailing-window strategy.
///
/// # Errors
///
/// Propagates [`ConfigError`] for invalid sizes or analyzer parameters.
pub fn config_for(
    kind: TwKind,
    cw: usize,
    model: ModelPolicy,
    analyzer: AnalyzerPolicy,
) -> Result<DetectorConfig, ConfigError> {
    let builder = DetectorConfig::builder()
        .current_window(cw)
        .trailing_window(cw)
        .model(model)
        .analyzer(analyzer);
    match kind {
        TwKind::Adaptive => builder
            .tw_policy(TwPolicy::Adaptive)
            .anchor(AnchorPolicy::RightmostNoisy)
            .resize(ResizePolicy::Slide)
            .skip_factor(1)
            .build(),
        TwKind::Constant => builder.tw_policy(TwPolicy::Constant).skip_factor(1).build(),
        TwKind::FixedInterval => builder
            .tw_policy(TwPolicy::Constant)
            .skip_factor(cw)
            .build(),
    }
}

/// All model × analyzer configurations for one strategy and CW size
/// (2 × 10 = 20 detectors), the per-cell sweep of Sections 4.2–4.4.
#[must_use]
pub fn policy_grid(kind: TwKind, cw: usize) -> Vec<DetectorConfig> {
    let mut out = Vec::with_capacity(20);
    for model in ModelPolicy::ALL {
        for analyzer in paper_analyzers() {
            out.push(config_for(kind, cw, model, analyzer).expect("grid parameters are valid"));
        }
    }
    out
}

/// Like [`policy_grid`] but restricted to one model (Figure 6 uses the
/// unweighted model only).
#[must_use]
pub fn analyzer_grid(kind: TwKind, cw: usize, model: ModelPolicy) -> Vec<DetectorConfig> {
    paper_analyzers()
        .into_iter()
        .map(|a| config_for(kind, cw, model, a).expect("grid parameters are valid"))
        .collect()
}

/// All model × analyzer configurations for the adaptive policy with an
/// explicit anchor and resize choice (Figure 7 compares RN/LNN and
/// Slide/Move).
#[must_use]
pub fn adaptive_grid(cw: usize, anchor: AnchorPolicy, resize: ResizePolicy) -> Vec<DetectorConfig> {
    let mut out = Vec::with_capacity(20);
    for model in ModelPolicy::ALL {
        for analyzer in paper_analyzers() {
            out.push(
                DetectorConfig::builder()
                    .current_window(cw)
                    .trailing_window(cw)
                    .skip_factor(1)
                    .tw_policy(TwPolicy::Adaptive)
                    .anchor(anchor)
                    .resize(resize)
                    .model(model)
                    .analyzer(analyzer)
                    .build()
                    .expect("grid parameters are valid"),
            );
        }
    }
    out
}

/// The full study grid: over 10,000 distinct detector instantiations
/// (Section 4.1 reports "over 10,000 different algorithms").
///
/// Sweeps CW sizes, TW/CW ratios (½×, 1×, 2×), skip factors (1,
/// CW/10, CW), both models, an extended analyzer set, and — for the
/// adaptive policy — both anchor and both resize policies.
#[must_use]
pub fn full_grid() -> Vec<DetectorConfig> {
    let mut analyzers: Vec<AnalyzerPolicy> = Vec::new();
    for i in 0..13u32 {
        analyzers.push(AnalyzerPolicy::Threshold(f64::from(30 + 5 * i) / 100.0));
    }
    for delta in [0.01, 0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4] {
        analyzers.push(AnalyzerPolicy::Average { delta });
    }

    let mut out = Vec::new();
    for &cw in &CW_SIZES {
        for tw in [cw / 2, cw, cw * 2] {
            let tw = tw.max(1);
            for skip in [1, (cw / 10).max(1), cw] {
                for model in ModelPolicy::ALL {
                    for &analyzer in &analyzers {
                        let base = DetectorConfig::builder()
                            .current_window(cw)
                            .trailing_window(tw)
                            .skip_factor(skip)
                            .model(model)
                            .analyzer(analyzer);
                        out.push(
                            base.clone()
                                .tw_policy(TwPolicy::Constant)
                                .build()
                                .expect("valid constant config"),
                        );
                        for anchor in [AnchorPolicy::RightmostNoisy, AnchorPolicy::LeftmostNonNoisy]
                        {
                            for resize in [ResizePolicy::Slide, ResizePolicy::Move] {
                                out.push(
                                    base.clone()
                                        .tw_policy(TwPolicy::Adaptive)
                                        .anchor(anchor)
                                        .resize(resize)
                                        .build()
                                        .expect("valid adaptive config"),
                                );
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

/// The fixed-threshold values the shared-window benchmark grid adds on
/// top of [`paper_analyzers`].
pub const EXTRA_THRESHOLDS: [f64; 8] = [0.35, 0.45, 0.55, 0.65, 0.75, 0.85, 0.9, 0.95];

/// The default plan/benchmark grid: 28 same-shape Constant-TW configs
/// at CW 500 — the 20-config [`policy_grid`] plus eight extra
/// unweighted thresholds ([`EXTRA_THRESHOLDS`]). Every member shares
/// one trace scan in the sweep engine, and `opd plan` analyzes this
/// grid by default.
#[must_use]
pub fn default_plan_grid() -> Vec<DetectorConfig> {
    let mut configs = policy_grid(TwKind::Constant, 500);
    for t in EXTRA_THRESHOLDS {
        configs.push(
            config_for(
                TwKind::Constant,
                500,
                ModelPolicy::UnweightedSet,
                AnalyzerPolicy::Threshold(t),
            )
            .expect("grid parameters are valid"),
        );
    }
    configs
}

/// The CW size the analysis sections use: half the MPL (Section 4.2
/// concludes CW = ½·MPL and uses it "for the remainder of the paper").
#[must_use]
pub fn half_mpl_cw(mpl: u64) -> usize {
    ((mpl / 2) as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_analyzers_count_and_order() {
        let a = paper_analyzers();
        assert_eq!(a.len(), 10);
        assert_eq!(a[0], AnalyzerPolicy::Threshold(0.5));
        assert_eq!(a[4], AnalyzerPolicy::Average { delta: 0.01 });
    }

    #[test]
    fn policy_grid_has_twenty_configs() {
        for kind in TwKind::ALL {
            let g = policy_grid(kind, 1_000);
            assert_eq!(g.len(), 20, "{kind}");
            for c in &g {
                assert_eq!(c.current_window(), 1_000);
            }
        }
    }

    #[test]
    fn fixed_interval_configs_have_skip_equal_cw() {
        let g = policy_grid(TwKind::FixedInterval, 500);
        assert!(g.iter().all(|c| c.is_fixed_interval()));
        let g = policy_grid(TwKind::Constant, 500);
        assert!(g.iter().all(|c| c.skip_factor() == 1));
    }

    #[test]
    fn full_grid_exceeds_ten_thousand() {
        let g = full_grid();
        assert!(g.len() > 10_000, "only {} configs", g.len());
    }

    #[test]
    fn default_plan_grid_is_one_shared_shape() {
        let g = default_plan_grid();
        assert_eq!(g.len(), 28);
        assert!(g.iter().all(|c| c.shares_windows()));
        assert_eq!(
            g.iter()
                .map(DetectorConfig::shape)
                .collect::<std::collections::HashSet<_>>()
                .len(),
            1
        );
    }

    #[test]
    fn half_mpl() {
        assert_eq!(half_mpl_cw(100_000), 50_000);
        assert_eq!(half_mpl_cw(1), 1);
    }

    #[test]
    fn labels() {
        assert_eq!(TwKind::FixedInterval.label(), "Fixed Interval");
        assert_eq!(format!("{}", TwKind::Adaptive), "Adaptive TW");
    }
}
