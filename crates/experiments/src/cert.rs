//! The `opd certify` implementation: resource certificates for every
//! (config × workload) pair of the default benchmark grid, their
//! `OPD-A` lints, and the `BENCH_cert.json` artifact.
//!
//! Everything here is static — certificates come from the abstract
//! interpretation alone, no trace is ever executed — so the artifact
//! is bit-identical across runs and hosts and freshness-tested by
//! exact comparison (`tests/cert_artifact.rs`), like
//! `BENCH_sched.json`. The dynamic half of the claim (every metered
//! counter inside its certified interval) lives in
//! `tests/cert_bounds.rs`.

use opd_analyze::{predicted_scans, AbsInt, Diagnostic, FlowInfo, ResourceCertificate};
use opd_core::DetectorConfig;
use opd_microvm::workloads::Workload;

use crate::grid::default_plan_grid;

/// The fuel the committed artifact (and the differential suite) pins
/// certificates at: the same trace-length cap `tests/counter_bounds.rs`
/// uses, so the two suites describe the same truncated runs.
pub const CERT_FUEL: u64 = 12_000;

/// One workload's certificates across the whole grid.
#[derive(Debug)]
pub struct WorkloadCertificates {
    /// The certified workload.
    pub workload: Workload,
    /// One certificate per grid config, in grid order.
    pub certs: Vec<ResourceCertificate>,
}

impl WorkloadCertificates {
    /// Grid members whose certified compare-op bound strictly beats
    /// the flat cost-model bound.
    #[must_use]
    pub fn tighter_count(&self) -> usize {
        self.certs
            .iter()
            .filter(|c| c.tighter_than_cost_bound())
            .count()
    }
}

/// Certifies the default plan grid against all 8 workloads at `scale`
/// under `fuel`. Returns the grid and the per-workload certificates;
/// one abstract interpretation per workload covers all 28 configs.
#[must_use]
pub fn grid_certificates(
    scale: u32,
    fuel: u64,
) -> (Vec<DetectorConfig>, Vec<WorkloadCertificates>) {
    let configs = default_plan_grid();
    let per_workload = Workload::ALL
        .iter()
        .map(|&workload| {
            let program = workload.program(scale);
            let absint = AbsInt::of(&program);
            let flow = FlowInfo::compute(&program);
            let certs = configs
                .iter()
                .map(|c| ResourceCertificate::from_parts(&absint, &flow, c, fuel))
                .collect();
            WorkloadCertificates { workload, certs }
        })
        .collect();
    (configs, per_workload)
}

/// Runs the `OPD-A` lints over every (workload × config) pair, in
/// grid order. `budget` enables the A303 admission check per pair.
#[must_use]
pub fn cert_lints(per_workload: &[WorkloadCertificates], budget: Option<u64>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for wc in per_workload {
        for (i, cert) in wc.certs.iter().enumerate() {
            let location = format!("{} × config #{i}", wc.workload);
            out.extend(cert.lints(&location, budget));
        }
    }
    out
}

/// Counts occurrences of one lint code string among `lints`.
fn count_code(lints: &[Diagnostic], code: &str) -> usize {
    lints.iter().filter(|d| d.code().as_str() == code).count()
}

/// Renders `BENCH_cert.json` (hand-built: the vendored serde_json is
/// an inert shim). Every certificate is a pure function of the IR, so
/// the committed artifact is freshness-tested by exact comparison.
///
/// All 28 grid configs share one window shape (cw = tw = 500, skip
/// 1), so per workload the element/step/judged/occupancy/site/memory
/// intervals coincide across configs and are emitted once; the
/// per-config lines carry what differs — compare-op intervals, the
/// flat cost bound, and the phase interval.
#[must_use]
pub fn cert_json(scale: u32, fuel: u64) -> String {
    let (configs, per_workload) = grid_certificates(scale, fuel);
    let lints = cert_lints(&per_workload, None);
    let pairs = configs.len() * per_workload.len();
    let tighter: usize = per_workload
        .iter()
        .map(WorkloadCertificates::tighter_count)
        .sum();

    let mut out = String::with_capacity(1 << 16);
    out.push_str("{\n");
    out.push_str("  \"schema\": \"opd-bench-cert-v1\",\n");
    out.push_str(&format!("  \"scale\": {scale},\n"));
    out.push_str(&format!("  \"fuel\": {fuel},\n"));
    out.push_str(&format!("  \"grid_configs\": {},\n", configs.len()));
    out.push_str(&format!("  \"workloads\": {},\n", per_workload.len()));
    out.push_str(&format!("  \"pairs\": {pairs},\n"));
    out.push_str(&format!(
        "  \"grid_scans\": {},\n",
        predicted_scans(&configs)
    ));
    out.push_str(&format!("  \"tighter_pairs\": {tighter},\n"));
    out.push_str(&format!(
        "  \"tighter_fraction\": {:.4},\n",
        tighter as f64 / pairs as f64
    ));
    out.push_str(&format!(
        "  \"lints\": {{\"a301\": {}, \"a302\": {}, \"a303\": {}, \"a304\": {}, \"a305\": {}}},\n",
        count_code(&lints, "OPD-A301"),
        count_code(&lints, "OPD-A302"),
        count_code(&lints, "OPD-A303"),
        count_code(&lints, "OPD-A304"),
        count_code(&lints, "OPD-A305"),
    ));
    out.push_str("  \"per_workload\": [\n");
    for (wi, wc) in per_workload.iter().enumerate() {
        let shared = &wc.certs[0];
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"elements\": [{},{}], \"steps\": [{},{}], \
             \"judged_steps\": [{},{}], \"occupancy\": [{},{}], \"sites\": [{},{}], \
             \"memory_bytes\": [{},{}], \"warm_step\": {}, \"truncated\": {}, \
             \"tighter\": {},\n",
            wc.workload,
            shared.elements().lo(),
            shared.elements().hi(),
            shared.steps().lo(),
            shared.steps().hi(),
            shared.judged_steps().lo(),
            shared.judged_steps().hi(),
            shared.occupancy().lo(),
            shared.occupancy().hi(),
            shared.sites().lo(),
            shared.sites().hi(),
            shared.memory_bytes().lo(),
            shared.memory_bytes().hi(),
            shared.warm_step(),
            shared.truncated(),
            wc.tighter_count(),
        ));
        out.push_str("     \"configs\": [\n");
        for (ci, cert) in wc.certs.iter().enumerate() {
            let bound = cert
                .cost_compare_bound()
                .map_or_else(|| "null".to_string(), |b| b.to_string());
            out.push_str(&format!(
                "      {{\"config\": {ci}, \"compare_ops\": [{},{}], \"cost_bound\": {bound}, \
                 \"phases\": [{},{}], \"tighter\": {}}}{}\n",
                cert.compare_ops().lo(),
                cert.compare_ops().hi(),
                cert.phases().lo(),
                cert.phases().hi(),
                cert.tighter_than_cost_bound(),
                if ci + 1 < wc.certs.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!(
            "    ]}}{}\n",
            if wi + 1 < per_workload.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_artifact_grid_is_tighter_on_every_pair() {
        let (configs, per_workload) = grid_certificates(1, CERT_FUEL);
        assert_eq!(configs.len(), 28);
        assert_eq!(per_workload.len(), 8);
        for wc in &per_workload {
            assert_eq!(
                wc.tighter_count(),
                configs.len(),
                "{}: warm-up slack must beat the flat bound on the whole grid",
                wc.workload
            );
            for cert in &wc.certs {
                assert!(!cert.vacuous(), "{}", wc.workload);
                let bound = cert.cost_compare_bound().expect("bound fits u64");
                assert!(cert.compare_ops().hi() < bound);
            }
        }
    }

    #[test]
    fn artifact_lints_are_exactly_the_expected_truncations() {
        // At the pinned fuel the only expected findings are A304
        // (fuel-truncated) pairs — never A301/A302/A305 on this grid.
        let (_, per_workload) = grid_certificates(1, CERT_FUEL);
        let lints = cert_lints(&per_workload, None);
        for d in &lints {
            assert_eq!(d.code().as_str(), "OPD-A304", "{}", d.render());
        }
        // With unlimited fuel the grid is entirely lint-clean.
        let (_, per_workload) = grid_certificates(1, u64::MAX);
        assert!(cert_lints(&per_workload, None).is_empty());
    }

    #[test]
    fn a_tiny_budget_rejects_every_pair_a_huge_budget_none() {
        let (_, per_workload) = grid_certificates(1, CERT_FUEL);
        let broke = cert_lints(&per_workload, Some(0));
        let rejected = broke
            .iter()
            .filter(|d| d.code().as_str() == "OPD-A303")
            .count();
        assert_eq!(rejected, 224, "every pair needs some memory");
        let rich = cert_lints(&per_workload, Some(u64::MAX));
        assert!(!rich.iter().any(|d| d.code().as_str() == "OPD-A303"));
    }

    #[test]
    fn cert_json_is_deterministic_and_shaped() {
        let a = cert_json(1, CERT_FUEL);
        let b = cert_json(1, CERT_FUEL);
        assert_eq!(a, b, "certificates must be deterministic");
        for needle in [
            "\"schema\": \"opd-bench-cert-v1\"",
            "\"pairs\": 224",
            "\"tighter_pairs\": 224",
            "\"tighter_fraction\": 1.0000",
            "\"grid_scans\": 1",
            "\"a303\": 0",
        ] {
            assert!(a.contains(needle), "missing {needle}");
        }
        assert!(a.ends_with("}\n"));
    }
}
