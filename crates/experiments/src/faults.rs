//! The fault-injection degradation study behind `opd faults` and the
//! committed `BENCH_faults.json` artifact.
//!
//! For each built-in workload, each studied [`FaultKind`], and each
//! rate in [`STUDY_RATES`], the study corrupts the workload's clean
//! trace with a seeded injector, runs the default 28-config sweep grid
//! over the degraded trace, and scores every config against the
//! *clean-trace* oracle. The reported cell value is the mean combined
//! accuracy over the grid; the per-kind curve is the mean over all
//! workloads.
//!
//! Because every injector draws per candidate site independently of
//! the rate (see `opd-faults`), the faults at a low rate nest inside
//! those at a higher rate under the study's fixed seeds — the
//! accuracy-degradation curves are monotone in the injected-fault set,
//! and empirically monotone in score (asserted by the artifact's
//! regression test).

use opd_baseline::{BaselineSolution, CallLoopForest};
use opd_core::{detected_intervals, DetectorConfig, InternedTrace, SweepEngine, SweepScratch};
use opd_faults::FaultKind;
use opd_microvm::workloads::Workload;
use opd_scoring::score_intervals;
use opd_trace::ExecutionTrace;

/// Fault rates swept by the study, ascending.
pub const STUDY_RATES: [f64; 4] = [0.0, 0.02, 0.1, 0.4];

/// Fault kinds swept by the study: two byte-level corruptions routed
/// through the resynchronizing decoder and two stream-level losses.
pub const STUDY_KINDS: [FaultKind; 4] = [
    FaultKind::BitFlip,
    FaultKind::Truncate,
    FaultKind::DropBranch,
    FaultKind::Burst,
];

/// Trace-length cap used by the committed artifact (kept short enough
/// that the freshness test regenerates the artifact from scratch).
pub const STUDY_FUEL: u64 = 30_000;

/// MPL of the clean-trace oracle every degraded run is scored against.
pub const STUDY_MPL: u64 = 1_000;

/// One `(kind, rate)` cell of the study.
#[derive(Debug, Clone)]
pub struct FaultCell {
    /// The injected fault family.
    pub kind: FaultKind,
    /// The injection rate.
    pub rate: f64,
    /// Mean combined accuracy per workload, in [`Workload::ALL`]
    /// order.
    pub per_workload: Vec<f64>,
    /// Total faults injected across all workloads (from the exact
    /// ledgers).
    pub faults_injected: u64,
}

impl FaultCell {
    /// Mean of the per-workload scores: one point of the kind's
    /// degradation curve.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.per_workload.is_empty() {
            return 0.0;
        }
        self.per_workload.iter().sum::<f64>() / self.per_workload.len() as f64
    }
}

/// The full study: every kind × rate cell over all workloads.
#[derive(Debug, Clone)]
pub struct FaultStudy {
    /// All cells, kind-major then rate-ascending.
    pub cells: Vec<FaultCell>,
}

impl FaultStudy {
    /// The degradation curve (mean accuracy per rate, ascending rate)
    /// for one kind.
    #[must_use]
    pub fn curve(&self, kind: FaultKind) -> Vec<f64> {
        self.cells
            .iter()
            .filter(|c| c.kind == kind)
            .map(FaultCell::mean)
            .collect()
    }
}

/// The fixed per-(workload, kind) injection seed. Rates share the
/// seed so their fault sets nest.
fn study_seed(workload_index: usize, kind_index: usize) -> u64 {
    0x0BD0_0000 + (workload_index as u64) * 64 + kind_index as u64
}

/// Executes one workload and returns its clean trace plus the
/// clean-trace oracle.
fn clean_run(workload: Workload, scale: u32, fuel: u64) -> (ExecutionTrace, BaselineSolution) {
    let program = workload.program(scale);
    let mut trace = ExecutionTrace::new();
    opd_microvm::Interpreter::new(&program, workload.default_seed())
        .with_fuel(fuel)
        .run(&mut trace)
        .expect("workload programs terminate");
    let oracle = CallLoopForest::build(&trace)
        .expect("workload traces are well nested")
        .solve(STUDY_MPL);
    (trace, oracle)
}

/// Mean combined accuracy of the whole grid over one (possibly
/// degraded) trace, scored against the clean-trace oracle.
fn mean_grid_score(
    configs: &[DetectorConfig],
    engine: &SweepEngine<'_>,
    scratch: &mut SweepScratch,
    trace: &ExecutionTrace,
    oracle: &BaselineSolution,
) -> f64 {
    let interned = InternedTrace::from_elements(trace.branches().iter().copied());
    let total = interned.len() as u64;
    // Duplication faults make the degraded trace longer than the clean
    // one; the scorer's timeline is the oracle's, so clamp detected
    // intervals onto it.
    let horizon = oracle.total_elements();
    let mut sum = 0.0;
    let mut n = 0usize;
    for ui in 0..engine.units().len() {
        for (_ci, phases) in engine.run_unit(ui, &interned, scratch) {
            let intervals: Vec<_> = detected_intervals(&phases, total)
                .into_iter()
                .filter(|iv| iv.start() < horizon)
                .map(|iv| opd_trace::PhaseInterval::new(iv.start(), iv.end().min(horizon)))
                .collect();
            sum += score_intervals(&intervals, oracle).combined();
            n += 1;
        }
    }
    debug_assert_eq!(n, configs.len(), "one score per grid config");
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Runs the full degradation study.
#[must_use]
pub fn fault_study(scale: u32, fuel: u64) -> FaultStudy {
    let configs = crate::grid::default_plan_grid();
    let engine = SweepEngine::new(&configs);
    let mut scratch = SweepScratch::with_site_capacity(0);

    let runs: Vec<(ExecutionTrace, BaselineSolution)> = Workload::ALL
        .iter()
        .map(|&w| clean_run(w, scale, fuel))
        .collect();

    let mut cells = Vec::with_capacity(STUDY_KINDS.len() * STUDY_RATES.len());
    for (ki, &kind) in STUDY_KINDS.iter().enumerate() {
        for &rate in &STUDY_RATES {
            let mut per_workload = Vec::with_capacity(runs.len());
            let mut faults_injected = 0u64;
            for (wi, (clean, oracle)) in runs.iter().enumerate() {
                let outcome = kind.apply(clean, rate, study_seed(wi, ki));
                faults_injected += outcome.ledger.total();
                per_workload.push(mean_grid_score(
                    &configs,
                    &engine,
                    &mut scratch,
                    &outcome.trace,
                    oracle,
                ));
            }
            cells.push(FaultCell {
                kind,
                rate,
                per_workload,
                faults_injected,
            });
        }
    }
    FaultStudy { cells }
}

/// Renders the study as the deterministic `BENCH_faults.json`
/// artifact (no timestamps, no host data — byte-comparable by the
/// freshness test).
#[must_use]
pub fn faults_json(scale: u32) -> String {
    let study = fault_study(scale, STUDY_FUEL);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(" \"scale\": {scale},\n"));
    out.push_str(&format!(" \"fuel\": {STUDY_FUEL},\n"));
    out.push_str(&format!(" \"mpl\": {STUDY_MPL},\n"));
    out.push_str(&format!(
        " \"grid\": {},\n",
        crate::grid::default_plan_grid().len()
    ));
    out.push_str(&format!(
        " \"rates\": [{}],\n",
        STUDY_RATES
            .iter()
            .map(|r| format!("{r:?}"))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(&format!(
        " \"workloads\": [{}],\n",
        Workload::ALL
            .iter()
            .map(|w| format!("\"{}\"", w.name()))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(" \"cells\": [\n");
    let cells: Vec<String> = study
        .cells
        .iter()
        .map(|c| {
            format!(
                "  {{\"kind\": \"{}\", \"rate\": {:?}, \"faults\": {}, \"mean\": {:.6}, \
                 \"per_workload\": [{}]}}",
                c.kind,
                c.rate,
                c.faults_injected,
                c.mean(),
                c.per_workload
                    .iter()
                    .map(|s| format!("{s:.6}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })
        .collect();
    out.push_str(&cells.join(",\n"));
    out.push_str("\n ],\n");
    out.push_str(" \"curves\": {\n");
    let curves: Vec<String> = STUDY_KINDS
        .iter()
        .map(|&k| {
            format!(
                "  \"{k}\": [{}]",
                study
                    .curve(k)
                    .iter()
                    .map(|s| format!("{s:.6}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })
        .collect();
    out.push_str(&curves.join(",\n"));
    out.push_str("\n }\n}\n");
    out
}

/// A fast end-to-end exercise of the fault pipeline for CI: two
/// workloads, every fault kind, one aggressive rate — asserting the
/// decoder's corruption reports agree with the injector ledgers and
/// that nothing panics. Returns a human-readable summary.
#[must_use]
pub fn smoke(scale: u32) -> String {
    let mut lines = Vec::new();
    for &workload in &[Workload::Lexgen, Workload::Blockcomp] {
        let (clean, oracle) = clean_run(workload, scale, 8_000);
        let configs = crate::grid::default_plan_grid();
        let engine = SweepEngine::new(&configs);
        let mut scratch = SweepScratch::with_site_capacity(0);
        for kind in FaultKind::ALL {
            let outcome = kind.apply(&clean, 0.25, 7);
            if let Some(report) = &outcome.report {
                // The exactness contract, checked on every smoke run.
                assert_eq!(
                    report.bad_elements,
                    outcome.ledger.detectable_element_flips
                        + outcome.ledger.corrupted_burst_records,
                    "{workload:?}/{kind}: decoder and ledger disagree"
                );
                assert_eq!(
                    report.out_of_order_events, outcome.ledger.order_breaking_swaps,
                    "{workload:?}/{kind}: decoder and ledger disagree on swaps"
                );
            }
            let score = mean_grid_score(&configs, &engine, &mut scratch, &outcome.trace, &oracle);
            lines.push(format!(
                "{} {kind}: {} fault(s), mean accuracy {score:.3}",
                workload.name(),
                outcome.ledger.total(),
            ));
        }
    }
    lines.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_covers_every_kind_without_panicking() {
        let summary = smoke(1);
        for kind in FaultKind::ALL {
            assert!(summary.contains(&kind.to_string()), "{summary}");
        }
    }

    #[test]
    fn study_cells_cover_the_kind_rate_grid() {
        // A reduced-fuel study: shape and basic sanity only (the
        // committed artifact's values are covered by the freshness
        // test at full study fuel).
        let study = fault_study(1, 4_000);
        assert_eq!(study.cells.len(), STUDY_KINDS.len() * STUDY_RATES.len());
        for cell in &study.cells {
            assert_eq!(cell.per_workload.len(), Workload::ALL.len());
            for &s in &cell.per_workload {
                assert!((0.0..=1.0).contains(&s), "{s}");
            }
            if cell.rate == 0.0 {
                assert_eq!(cell.faults_injected, 0, "{:?}", cell.kind);
            } else {
                assert!(cell.faults_injected > 0, "{:?}", cell.kind);
            }
        }
    }
}
