//! Workload preparation and the parallel configuration sweep.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use opd_baseline::{BaselineSolution, CallLoopForest};
use opd_core::{
    anchored_intervals, detected_intervals, DetectorConfig, InternedTrace, PhaseDetector,
};
use opd_microvm::workloads::Workload;
use opd_scoring::{score_intervals, AccuracyScore};
use opd_trace::{BranchTrace, PhaseInterval, TraceStats};

/// One workload executed, interned, and solved for a set of MPL
/// values — everything a sweep needs, computed once.
#[derive(Debug, Clone)]
pub struct PreparedWorkload {
    workload: Workload,
    stats: TraceStats,
    branches: BranchTrace,
    interned: InternedTrace,
    total: u64,
    oracles: BTreeMap<u64, BaselineSolution>,
}

impl PreparedWorkload {
    /// Executes `workload` at `scale`, interns its branch trace, and
    /// computes the baseline solution for every MPL in `mpls`.
    ///
    /// # Panics
    ///
    /// Panics if the workload trace is malformed, which would be a bug
    /// in the MicroVM (covered by its tests).
    #[must_use]
    pub fn prepare(workload: Workload, scale: u32, mpls: &[u64]) -> Self {
        Self::prepare_with_fuel(workload, scale, mpls, u64::MAX)
    }

    /// Like [`prepare`](PreparedWorkload::prepare) but truncates the
    /// execution after `fuel` branches — used by the benchmark suite to
    /// keep iterations short.
    ///
    /// # Panics
    ///
    /// Panics if the workload trace is malformed.
    #[must_use]
    pub fn prepare_with_fuel(workload: Workload, scale: u32, mpls: &[u64], fuel: u64) -> Self {
        let program = workload.program(scale);
        let mut trace = opd_trace::ExecutionTrace::new();
        opd_microvm::Interpreter::new(&program, workload.default_seed())
            .with_fuel(fuel)
            .run(&mut trace)
            .expect("workload programs terminate");
        let stats = TraceStats::measure(&trace);
        let forest = CallLoopForest::build(&trace).expect("workload traces are well nested");
        let oracles = mpls.iter().map(|&mpl| (mpl, forest.solve(mpl))).collect();
        let interned = InternedTrace::from(trace.branches());
        let total = trace.branches().len() as u64;
        let (branches, _) = trace.into_parts();
        PreparedWorkload {
            workload,
            stats,
            branches,
            interned,
            total,
            oracles,
        }
    }

    /// The workload this data came from.
    #[must_use]
    pub fn workload(&self) -> Workload {
        self.workload
    }

    /// The trace's dynamic execution characteristics (Table 1(a)).
    #[must_use]
    pub fn stats(&self) -> &TraceStats {
        &self.stats
    }

    /// The interned branch trace.
    #[must_use]
    pub fn interned(&self) -> &InternedTrace {
        &self.interned
    }

    /// The raw branch trace (for detectors that need the packed
    /// element values rather than interned ids).
    #[must_use]
    pub fn branches(&self) -> &BranchTrace {
        &self.branches
    }

    /// Number of profile elements in the trace.
    #[must_use]
    pub fn total_elements(&self) -> u64 {
        self.total
    }

    /// The baseline solution for one of the prepared MPL values.
    ///
    /// # Panics
    ///
    /// Panics if `mpl` was not in the list passed to `prepare`.
    #[must_use]
    pub fn oracle(&self, mpl: u64) -> &BaselineSolution {
        self.oracles
            .get(&mpl)
            .unwrap_or_else(|| panic!("MPL {mpl} was not prepared"))
    }

    /// All prepared MPL values, ascending.
    #[must_use]
    pub fn mpls(&self) -> Vec<u64> {
        self.oracles.keys().copied().collect()
    }
}

/// Prepares several workloads in parallel (one thread each). `fuel`
/// caps every trace's length; pass `u64::MAX` for complete runs.
#[must_use]
pub fn prepare_all(
    workloads: &[Workload],
    scale: u32,
    mpls: &[u64],
    fuel: u64,
) -> Vec<PreparedWorkload> {
    let mut out: Vec<Option<PreparedWorkload>> = workloads.iter().map(|_| None).collect();
    crossbeam::thread::scope(|s| {
        for (slot, &w) in out.iter_mut().zip(workloads) {
            s.spawn(move |_| {
                *slot = Some(PreparedWorkload::prepare_with_fuel(w, scale, mpls, fuel));
            });
        }
    })
    .expect("worker threads do not panic");
    out.into_iter().map(|o| o.expect("slot filled")).collect()
}

/// The MPL-independent outcome of running one detector configuration
/// over one trace: the detected phase intervals, both as detected and
/// with anchored (retroactive) starts.
#[derive(Debug, Clone)]
pub struct ConfigRun {
    /// The configuration that produced this run.
    pub config: DetectorConfig,
    /// Phases with detection-point starts.
    pub detected: Vec<PhaseInterval>,
    /// Phases with anchored starts (Figure 8).
    pub anchored: Vec<PhaseInterval>,
}

impl ConfigRun {
    /// Scores this run against an oracle, using detection-point
    /// boundaries.
    #[must_use]
    pub fn score(&self, oracle: &BaselineSolution) -> AccuracyScore {
        score_intervals(&self.detected, oracle)
    }

    /// Scores this run using anchored phase-start boundaries.
    #[must_use]
    pub fn anchored_score(&self, oracle: &BaselineSolution) -> AccuracyScore {
        score_intervals(&self.anchored, oracle)
    }
}

/// Runs one detector over a prepared trace.
#[must_use]
pub fn run_detector(config: DetectorConfig, trace: &InternedTrace) -> ConfigRun {
    let mut detector = PhaseDetector::new(config);
    let _states = detector.run_interned(trace);
    let total = trace.len() as u64;
    ConfigRun {
        config,
        detected: detected_intervals(detector.detected_phases(), total),
        anchored: anchored_intervals(detector.detected_phases(), total),
    }
}

/// Runs many configurations over one prepared workload, spreading the
/// work over `threads` threads. Results are in `configs` order.
#[must_use]
pub fn sweep(
    prepared: &PreparedWorkload,
    configs: &[DetectorConfig],
    threads: usize,
) -> Vec<ConfigRun> {
    let threads = threads.max(1).min(configs.len().max(1));
    if threads <= 1 || configs.len() <= 1 {
        return configs
            .iter()
            .map(|&c| run_detector(c, prepared.interned()))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let results: Vec<parking_lot::Mutex<Option<ConfigRun>>> = configs
        .iter()
        .map(|_| parking_lot::Mutex::new(None))
        .collect();
    crossbeam::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= configs.len() {
                    break;
                }
                let run = run_detector(configs[i], prepared.interned());
                *results[i].lock() = Some(run);
            });
        }
    })
    .expect("worker threads do not panic");
    results
        .into_iter()
        .map(|m| m.into_inner().expect("every slot filled"))
        .collect()
}

/// The best combined score among `runs` against one oracle.
#[must_use]
pub fn best_combined(runs: &[ConfigRun], oracle: &BaselineSolution) -> f64 {
    runs.iter()
        .map(|r| r.score(oracle).combined())
        .fold(0.0, f64::max)
}

/// The best combined score using anchored boundaries.
#[must_use]
pub fn best_combined_anchored(runs: &[ConfigRun], oracle: &BaselineSolution) -> f64 {
    runs.iter()
        .map(|r| r.anchored_score(oracle).combined())
        .fold(0.0, f64::max)
}

/// A sensible default worker count: the machine's available
/// parallelism.
#[must_use]
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{policy_grid, TwKind};

    fn small_prepared() -> PreparedWorkload {
        PreparedWorkload::prepare_with_fuel(Workload::Lexgen, 1, &[1_000, 10_000], 60_000)
    }

    #[test]
    fn prepare_computes_oracles_per_mpl() {
        let p = small_prepared();
        assert_eq!(p.mpls(), vec![1_000, 10_000]);
        assert_eq!(p.total_elements(), 60_000);
        assert!(p.oracle(1_000).phase_count() >= p.oracle(10_000).phase_count());
        assert_eq!(p.stats().dynamic_branches, 60_000);
        assert_eq!(p.workload(), Workload::Lexgen);
    }

    #[test]
    #[should_panic(expected = "was not prepared")]
    fn missing_mpl_panics() {
        let p = small_prepared();
        let _ = p.oracle(77);
    }

    #[test]
    fn sweep_matches_sequential_runs() {
        let p = small_prepared();
        let configs = policy_grid(TwKind::Constant, 500);
        let parallel = sweep(&p, &configs, 4);
        let sequential: Vec<ConfigRun> = configs
            .iter()
            .map(|&c| run_detector(c, p.interned()))
            .collect();
        assert_eq!(parallel.len(), sequential.len());
        for (a, b) in parallel.iter().zip(&sequential) {
            assert_eq!(a.detected, b.detected);
            assert_eq!(a.anchored, b.anchored);
        }
    }

    #[test]
    fn scores_are_in_range() {
        let p = small_prepared();
        let configs = policy_grid(TwKind::Adaptive, 500);
        let runs = sweep(&p, &configs, 2);
        let oracle = p.oracle(1_000);
        for r in &runs {
            let s = r.score(oracle).combined();
            assert!((0.0..=1.0).contains(&s), "{s}");
            let a = r.anchored_score(oracle).combined();
            assert!((0.0..=1.0).contains(&a), "{a}");
        }
        assert!(best_combined(&runs, oracle) > 0.0);
        assert!(best_combined_anchored(&runs, oracle) > 0.0);
    }

    #[test]
    fn prepare_all_is_order_preserving() {
        let ws = [Workload::Lexgen, Workload::Blockcomp];
        let prepared = prepare_all(&ws, 1, &[10_000], 80_000);
        assert_eq!(prepared[0].workload(), Workload::Lexgen);
        assert_eq!(prepared[1].workload(), Workload::Blockcomp);
    }

    #[test]
    fn detected_and_anchored_differ_for_adaptive() {
        let p = small_prepared();
        let cfg = policy_grid(TwKind::Adaptive, 500)[0];
        let run = run_detector(cfg, p.interned());
        if !run.detected.is_empty() {
            // Anchored starts never come after detected starts.
            for (d, a) in run.detected.iter().zip(&run.anchored) {
                assert!(a.start() <= d.start());
            }
        }
    }
}
