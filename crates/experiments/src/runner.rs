//! Workload preparation and the parallel configuration sweep.

use std::collections::BTreeMap;

use opd_analyze::{AbsInt, Analysis, ResourceCertificate};
use opd_baseline::{BaselineSolution, CallLoopForest};
use opd_core::{
    anchored_intervals, detected_intervals, DetectedPhase, DetectorConfig, InternedTrace,
    KernelKind, PhaseDetector, SweepEngine, SweepScratch, SweepUnit,
};
use opd_microvm::workloads::Workload;
use opd_scoring::{score_intervals, AccuracyScore};
use opd_trace::{BranchTrace, PhaseInterval, TraceStats};

/// One workload executed, interned, and solved for a set of MPL
/// values — everything a sweep needs, computed once.
#[derive(Debug, Clone)]
pub struct PreparedWorkload {
    workload: Workload,
    stats: TraceStats,
    branches: BranchTrace,
    interned: InternedTrace,
    total: u64,
    oracles: BTreeMap<u64, BaselineSolution>,
    analysis: Analysis,
    absint: AbsInt,
    fuel: u64,
    probe_density: f64,
}

/// The detector configuration one calibration probe runs at prepare
/// time: the default shape of the shared plan grid, so the measured
/// judged-step density reflects the sweeps it will price.
fn probe_config() -> DetectorConfig {
    DetectorConfig::builder()
        .current_window(500)
        .build()
        .expect("probe config is valid")
}

/// Measured judged-step density of `trace`: the fraction of detector
/// steps the probe config actually judged (windows warm and refilled).
/// The static cost model assumes every step is judged; this one cheap
/// metered run at prepare time tells the LPT scheduler how far below
/// that ceiling the workload really sits. Falls back to `1.0`
/// (worst case) for degenerate traces.
fn measure_probe_density(trace: &InternedTrace) -> f64 {
    let mut detector = PhaseDetector::new(probe_config());
    let mut meter = opd_obs::MeterObserver::new();
    let _ = detector.run_interned_phases_observed(trace, &mut meter);
    let m = &meter.metrics;
    if m.steps == 0 {
        return 1.0;
    }
    (m.judged_steps as f64 / m.steps as f64).clamp(0.0, 1.0)
}

impl PreparedWorkload {
    /// Executes `workload` at `scale`, interns its branch trace, and
    /// computes the baseline solution for every MPL in `mpls`.
    ///
    /// # Panics
    ///
    /// Panics if the workload trace is malformed, which would be a bug
    /// in the MicroVM (covered by its tests).
    #[must_use]
    pub fn prepare(workload: Workload, scale: u32, mpls: &[u64]) -> Self {
        Self::prepare_with_fuel(workload, scale, mpls, u64::MAX)
    }

    /// Like [`prepare`](PreparedWorkload::prepare) but truncates the
    /// execution after `fuel` branches — used by the benchmark suite to
    /// keep iterations short.
    ///
    /// # Panics
    ///
    /// Panics if the workload trace is malformed.
    #[must_use]
    pub fn prepare_with_fuel(workload: Workload, scale: u32, mpls: &[u64], fuel: u64) -> Self {
        let program = workload.program(scale);
        let analysis = Analysis::of(&program);
        let absint = AbsInt::of(&program);
        let mut trace = opd_trace::ExecutionTrace::new();
        opd_microvm::Interpreter::new(&program, workload.default_seed())
            .with_fuel(fuel)
            .run(&mut trace)
            .expect("workload programs terminate");
        let stats = TraceStats::measure(&trace);
        let forest = CallLoopForest::build(&trace).expect("workload traces are well nested");
        let oracles = mpls.iter().map(|&mpl| (mpl, forest.solve(mpl))).collect();
        // The static alphabet bound pre-sizes the intern table so
        // interning never rehashes; it is an upper bound on the
        // distinct-element count by the soundness property the
        // differential tests check.
        let interned = InternedTrace::from_elements_with_capacity(
            trace.branches().iter().copied(),
            analysis.flow().alphabet_bound() as usize,
        );
        debug_assert!(u64::from(interned.distinct_count()) <= analysis.flow().alphabet_bound());
        let probe_density = measure_probe_density(&interned);
        let total = trace.branches().len() as u64;
        let (branches, _) = trace.into_parts();
        PreparedWorkload {
            workload,
            stats,
            branches,
            interned,
            total,
            oracles,
            analysis,
            absint,
            fuel,
            probe_density,
        }
    }

    /// The workload this data came from.
    #[must_use]
    pub fn workload(&self) -> Workload {
        self.workload
    }

    /// The trace's dynamic execution characteristics (Table 1(a)).
    #[must_use]
    pub fn stats(&self) -> &TraceStats {
        &self.stats
    }

    /// The interned branch trace.
    #[must_use]
    pub fn interned(&self) -> &InternedTrace {
        &self.interned
    }

    /// The raw branch trace (for detectors that need the packed
    /// element values rather than interned ids).
    #[must_use]
    pub fn branches(&self) -> &BranchTrace {
        &self.branches
    }

    /// Number of profile elements in the trace.
    #[must_use]
    pub fn total_elements(&self) -> u64 {
        self.total
    }

    /// The baseline solution for one of the prepared MPL values.
    ///
    /// # Panics
    ///
    /// Panics if `mpl` was not in the list passed to `prepare`.
    #[must_use]
    pub fn oracle(&self, mpl: u64) -> &BaselineSolution {
        self.oracles
            .get(&mpl)
            .unwrap_or_else(|| panic!("MPL {mpl} was not prepared"))
    }

    /// All prepared MPL values, ascending.
    #[must_use]
    pub fn mpls(&self) -> Vec<u64> {
        self.oracles.keys().copied().collect()
    }

    /// The static analysis of the workload's program: lint findings,
    /// call graph, nesting tree, and worst-case bounds.
    #[must_use]
    pub fn analysis(&self) -> &Analysis {
        &self.analysis
    }

    /// The static alphabet bound, as a site-table capacity: no trace
    /// of this program has more distinct profile elements than this.
    #[must_use]
    pub fn site_capacity(&self) -> usize {
        self.analysis.flow().alphabet_bound() as usize
    }

    /// Measured judged-step density (judged steps / total steps) of
    /// the calibration probe run over this trace, in `0.0..=1.0`. The
    /// sweep scheduler scales the static comparison-op bound by this
    /// factor when pricing LPT buckets.
    #[must_use]
    pub fn probe_density(&self) -> f64 {
        self.probe_density
    }

    /// The abstract interpretation of the workload's program — the
    /// per-site visit intervals resource certificates are issued from.
    #[must_use]
    pub fn absint(&self) -> &AbsInt {
        &self.absint
    }

    /// The fuel limit the trace was prepared under (`u64::MAX` =
    /// complete run).
    #[must_use]
    pub fn fuel(&self) -> u64 {
        self.fuel
    }

    /// Issues one [`ResourceCertificate`] per config for this
    /// prepared workload (at the preparation fuel), or `None` if any
    /// certificate is vacuous — callers then fall back to measured
    /// calibration.
    #[must_use]
    pub fn certificates(&self, configs: &[DetectorConfig]) -> Option<Vec<ResourceCertificate>> {
        let flow = self.analysis.flow();
        let certs: Vec<ResourceCertificate> = configs
            .iter()
            .map(|c| ResourceCertificate::from_parts(&self.absint, flow, c, self.fuel))
            .collect();
        if certs.iter().any(ResourceCertificate::vacuous) {
            None
        } else {
            Some(certs)
        }
    }
}

/// The calibrated LPT price of one sweep unit on one prepared
/// workload: the static window-maintenance part at face value (every
/// element is always consumed) plus the static comparison part scaled
/// by the workload's measured judged-step density. Uses the *measured*
/// distinct-site count — not the static alphabet bound — so two
/// workloads with identical bounds but different live alphabets price
/// differently.
#[must_use]
pub fn calibrated_unit_cost(
    configs: &[DetectorConfig],
    unit: &SweepUnit,
    prepared: &PreparedWorkload,
) -> u64 {
    let (window, compare) = opd_analyze::unit_cost_parts(
        configs,
        unit,
        prepared.total_elements(),
        u64::from(prepared.interned().distinct_count()),
    );
    let scaled = (compare as f64 * prepared.probe_density()).round() as u64;
    window.saturating_add(scaled)
}

/// The certificate-priced LPT cost of one sweep unit: the static
/// window-maintenance part at face value plus the static comparison
/// part scaled by the unit's *certified* judged-step density — the
/// midpoint of each member's judged-step interval over the midpoint
/// of its step interval. Replaces the probe-measured density with a
/// statically derived one when certificates are available (they are
/// for every built-in workload), making LPT pricing independent of
/// the calibration run.
#[must_use]
pub fn certified_unit_cost(
    configs: &[DetectorConfig],
    unit: &SweepUnit,
    prepared: &PreparedWorkload,
    certs: &[ResourceCertificate],
) -> u64 {
    let (window, compare) = opd_analyze::unit_cost_parts(
        configs,
        unit,
        prepared.total_elements(),
        u64::from(prepared.interned().distinct_count()),
    );
    let mut judged: u128 = 0;
    let mut steps: u128 = 0;
    for &i in unit.config_indices() {
        judged += u128::from(certs[i].judged_steps().midpoint());
        steps += u128::from(certs[i].steps().midpoint());
    }
    if steps == 0 {
        return window.saturating_add(compare);
    }
    // judged <= steps per certificate, so the scaled part never
    // exceeds the raw bound and the u128 product cannot overflow.
    let scaled = (u128::from(compare) * judged / steps) as u64;
    window.saturating_add(scaled)
}

/// Prepares several workloads in parallel (one thread each). `fuel`
/// caps every trace's length; pass `u64::MAX` for complete runs.
#[must_use]
pub fn prepare_all(
    workloads: &[Workload],
    scale: u32,
    mpls: &[u64],
    fuel: u64,
) -> Vec<PreparedWorkload> {
    let mut out: Vec<Option<PreparedWorkload>> = workloads.iter().map(|_| None).collect();
    std::thread::scope(|s| {
        for (slot, &w) in out.iter_mut().zip(workloads) {
            s.spawn(move || {
                *slot = Some(PreparedWorkload::prepare_with_fuel(w, scale, mpls, fuel));
            });
        }
    });
    out.into_iter().map(|o| o.expect("slot filled")).collect()
}

/// The MPL-independent outcome of running one detector configuration
/// over one trace: the detected phase intervals, both as detected and
/// with anchored (retroactive) starts.
#[derive(Debug, Clone)]
pub struct ConfigRun {
    /// The configuration that produced this run.
    pub config: DetectorConfig,
    /// Phases with detection-point starts.
    pub detected: Vec<PhaseInterval>,
    /// Phases with anchored starts (Figure 8).
    pub anchored: Vec<PhaseInterval>,
}

impl ConfigRun {
    /// Scores this run against an oracle, using detection-point
    /// boundaries.
    #[must_use]
    pub fn score(&self, oracle: &BaselineSolution) -> AccuracyScore {
        score_intervals(&self.detected, oracle)
    }

    /// Scores this run using anchored phase-start boundaries.
    #[must_use]
    pub fn anchored_score(&self, oracle: &BaselineSolution) -> AccuracyScore {
        score_intervals(&self.anchored, oracle)
    }
}

/// Runs one detector over a prepared trace. The detector run itself
/// allocates nothing per element: phases accumulate in the detector
/// and the interval views are built once at the end.
#[must_use]
pub fn run_detector(config: DetectorConfig, trace: &InternedTrace) -> ConfigRun {
    let mut detector = PhaseDetector::new(config);
    let _ = detector.run_interned_phases_only(trace);
    config_run(config, &detector.take_phases(), trace.len() as u64)
}

/// Builds interval views from one config's detected phases.
pub(crate) fn config_run(
    config: DetectorConfig,
    phases: &[DetectedPhase],
    total: u64,
) -> ConfigRun {
    ConfigRun {
        config,
        detected: detected_intervals(phases, total),
        anchored: anchored_intervals(phases, total),
    }
}

/// Runs many configurations over one prepared workload through the
/// [`SweepEngine`] (same-shape Constant-TW configs share one trace
/// scan), spreading engine units over `threads` threads. Results are
/// in `configs` order and bit-identical to sequential
/// [`run_detector`] calls.
#[must_use]
pub fn sweep(
    prepared: &PreparedWorkload,
    configs: &[DetectorConfig],
    threads: usize,
) -> Vec<ConfigRun> {
    sweep_with_kernel(prepared, configs, threads, KernelKind::default())
}

/// [`sweep`] on an explicit window kernel — the benchmark harness runs
/// the same grid on both kernels and diffs the results.
#[must_use]
pub fn sweep_with_kernel(
    prepared: &PreparedWorkload,
    configs: &[DetectorConfig],
    threads: usize,
    kernel: KernelKind,
) -> Vec<ConfigRun> {
    let mut per_workload =
        sweep_many_with_kernel(std::slice::from_ref(prepared), configs, threads, kernel);
    per_workload.pop().expect("one workload in, one out")
}

/// Runs many configurations over many prepared workloads, distributing
/// `(workload × engine unit)` work items over `threads` threads with a
/// longest-processing-time-first plan. Returns one `configs`-ordered
/// vector per workload, in `prepared` order.
///
/// Workers own disjoint result buckets (no locks on the hot path) and
/// each carries a [`SweepScratch`] so private-path detector
/// allocations are reused across the units it runs.
#[must_use]
pub fn sweep_many(
    prepared: &[PreparedWorkload],
    configs: &[DetectorConfig],
    threads: usize,
) -> Vec<Vec<ConfigRun>> {
    sweep_many_with_kernel(prepared, configs, threads, KernelKind::default())
}

/// [`sweep_many`] on an explicit window kernel.
#[must_use]
pub fn sweep_many_with_kernel(
    prepared: &[PreparedWorkload],
    configs: &[DetectorConfig],
    threads: usize,
    kernel: KernelKind,
) -> Vec<Vec<ConfigRun>> {
    let engine = SweepEngine::with_kernel(configs, kernel);
    // One work item per (workload, unit), priced by the static
    // window-maintenance and comparison-op bounds of the unit's
    // members, with the comparison part scaled by a judged-step
    // density: the certificate midpoints when every member certifies
    // non-vacuously (the normal case), else the measured probe
    // density from prepare time.
    let mut items: Vec<(usize, usize, u64)> =
        Vec::with_capacity(prepared.len() * engine.units().len());
    for (wi, p) in prepared.iter().enumerate() {
        let certs = p.certificates(configs);
        for (ui, unit) in engine.units().iter().enumerate() {
            let cost = match &certs {
                Some(certs) => certified_unit_cost(configs, unit, p, certs),
                None => calibrated_unit_cost(configs, unit, p),
            };
            items.push((wi, ui, cost));
        }
    }
    let threads = threads.max(1).min(items.len().max(1));
    // Pre-size every worker's detector site tables to the largest
    // static alphabet bound, so no unit run grows them mid-scan.
    let site_capacity = prepared
        .iter()
        .map(PreparedWorkload::site_capacity)
        .max()
        .unwrap_or(0);

    let mut out: Vec<Vec<Option<ConfigRun>>> = prepared
        .iter()
        .map(|_| configs.iter().map(|_| None).collect())
        .collect();
    if threads <= 1 {
        let mut scratch = SweepScratch::with_site_capacity(site_capacity);
        for &(wi, ui, _) in &items {
            let p = &prepared[wi];
            let total = p.interned().len() as u64;
            for (ci, phases) in engine.run_unit(ui, p.interned(), &mut scratch) {
                out[wi][ci] = Some(config_run(configs[ci], &phases, total));
            }
        }
    } else {
        let costs: Vec<u64> = items.iter().map(|&(_, _, c)| c).collect();
        let buckets: Vec<Vec<(usize, usize)>> = lpt_plan(&costs, threads)
            .into_iter()
            .map(|bucket| {
                bucket
                    .into_iter()
                    .map(|i| (items[i].0, items[i].1))
                    .collect()
            })
            .collect();
        let engine = &engine;
        let filled: Vec<Vec<(usize, usize, ConfigRun)>> = std::thread::scope(|s| {
            let handles: Vec<_> = buckets
                .into_iter()
                .map(|bucket| {
                    s.spawn(move || {
                        let mut scratch = SweepScratch::with_site_capacity(site_capacity);
                        let mut local = Vec::new();
                        for (wi, ui) in bucket {
                            let p = &prepared[wi];
                            let total = p.interned().len() as u64;
                            for (ci, phases) in engine.run_unit(ui, p.interned(), &mut scratch) {
                                local.push((wi, ci, config_run(configs[ci], &phases, total)));
                            }
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sweep worker panicked"))
                .collect()
        });
        for bucket in filled {
            for (wi, ci, run) in bucket {
                out[wi][ci] = Some(run);
            }
        }
    }
    out.into_iter()
        .map(|w| {
            w.into_iter()
                .map(|o| o.expect("every (workload, config) cell filled"))
                .collect()
        })
        .collect()
}

/// Longest-processing-time-first planning: places each item (heaviest
/// first, index-stable among ties) onto the least-loaded bucket.
/// Returns the item indices per bucket; [`sweep_many`] schedules from
/// this plan, and the scheduling regression tests measure its load
/// imbalance.
///
/// # Panics
///
/// Panics if `buckets` is zero.
#[must_use]
pub fn lpt_plan(costs: &[u64], buckets: usize) -> Vec<Vec<usize>> {
    assert!(buckets > 0, "at least one bucket");
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(costs[i]), i));
    let mut plan: Vec<Vec<usize>> = vec![Vec::new(); buckets];
    let mut loads = vec![0u64; buckets];
    for i in order {
        let t = (0..buckets)
            .min_by_key(|&t| loads[t])
            .expect("at least one bucket");
        loads[t] = loads[t].saturating_add(costs[i]);
        plan[t].push(i);
    }
    plan
}

/// The best combined score among `runs` against one oracle.
#[must_use]
pub fn best_combined(runs: &[ConfigRun], oracle: &BaselineSolution) -> f64 {
    runs.iter()
        .map(|r| r.score(oracle).combined())
        .fold(0.0, f64::max)
}

/// The best combined score using anchored boundaries.
#[must_use]
pub fn best_combined_anchored(runs: &[ConfigRun], oracle: &BaselineSolution) -> f64 {
    runs.iter()
        .map(|r| r.anchored_score(oracle).combined())
        .fold(0.0, f64::max)
}

/// A sensible default worker count: the machine's available
/// parallelism.
#[must_use]
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{policy_grid, TwKind};

    fn small_prepared() -> PreparedWorkload {
        PreparedWorkload::prepare_with_fuel(Workload::Lexgen, 1, &[1_000, 10_000], 60_000)
    }

    #[test]
    fn prepare_computes_oracles_per_mpl() {
        let p = small_prepared();
        assert_eq!(p.mpls(), vec![1_000, 10_000]);
        assert_eq!(p.total_elements(), 60_000);
        assert!(p.oracle(1_000).phase_count() >= p.oracle(10_000).phase_count());
        assert_eq!(p.stats().dynamic_branches, 60_000);
        assert_eq!(p.workload(), Workload::Lexgen);
    }

    #[test]
    fn static_analysis_rides_along_and_bounds_the_alphabet() {
        let p = small_prepared();
        assert!(p.analysis().is_clean());
        assert!(p.interned().distinct_count() as usize <= p.site_capacity());
        assert!(p.analysis().bounds().branches() >= p.total_elements());
    }

    #[test]
    fn probe_density_is_a_measured_fraction() {
        let p = small_prepared();
        let d = p.probe_density();
        assert!((0.0..=1.0).contains(&d), "{d}");
        // A real trace at 60k elements warms the probe's windows and
        // judges at least some steps.
        assert!(d > 0.0, "{d}");
    }

    #[test]
    #[should_panic(expected = "was not prepared")]
    fn missing_mpl_panics() {
        let p = small_prepared();
        let _ = p.oracle(77);
    }

    #[test]
    fn sweep_matches_sequential_runs() {
        let p = small_prepared();
        let configs = policy_grid(TwKind::Constant, 500);
        let parallel = sweep(&p, &configs, 4);
        let sequential: Vec<ConfigRun> = configs
            .iter()
            .map(|&c| run_detector(c, p.interned()))
            .collect();
        assert_eq!(parallel.len(), sequential.len());
        for (a, b) in parallel.iter().zip(&sequential) {
            assert_eq!(a.detected, b.detected);
            assert_eq!(a.anchored, b.anchored);
        }
    }

    #[test]
    fn scores_are_in_range() {
        let p = small_prepared();
        let configs = policy_grid(TwKind::Adaptive, 500);
        let runs = sweep(&p, &configs, 2);
        let oracle = p.oracle(1_000);
        for r in &runs {
            let s = r.score(oracle).combined();
            assert!((0.0..=1.0).contains(&s), "{s}");
            let a = r.anchored_score(oracle).combined();
            assert!((0.0..=1.0).contains(&a), "{a}");
        }
        assert!(best_combined(&runs, oracle) > 0.0);
        assert!(best_combined_anchored(&runs, oracle) > 0.0);
    }

    #[test]
    fn sweep_many_matches_per_workload_sweeps() {
        let ws = [Workload::Lexgen, Workload::Blockcomp];
        let prepared = prepare_all(&ws, 1, &[1_000], 50_000);
        // A grid mixing shared-eligible and private configs.
        let mut configs = policy_grid(TwKind::Constant, 500);
        configs.extend(policy_grid(TwKind::Adaptive, 250));
        let many = sweep_many(&prepared, &configs, 3);
        assert_eq!(many.len(), prepared.len());
        for (p, runs) in prepared.iter().zip(&many) {
            assert_eq!(runs.len(), configs.len());
            for (run, &config) in runs.iter().zip(&configs) {
                let expected = run_detector(config, p.interned());
                assert_eq!(run.detected, expected.detected, "{config:?}");
                assert_eq!(run.anchored, expected.anchored, "{config:?}");
            }
        }
    }

    #[test]
    fn prepare_all_is_order_preserving() {
        let ws = [Workload::Lexgen, Workload::Blockcomp];
        let prepared = prepare_all(&ws, 1, &[10_000], 80_000);
        assert_eq!(prepared[0].workload(), Workload::Lexgen);
        assert_eq!(prepared[1].workload(), Workload::Blockcomp);
    }

    #[test]
    fn lpt_imbalance_stays_small_on_the_plan_grid() {
        // The static-cost LPT plan for (8 workloads × the 28-config
        // shared-scan grid) must spread load evenly: the heaviest
        // bucket may exceed the mean by at most 15%.
        let prepared = prepare_all(&Workload::ALL, 1, &[1_000], 60_000);
        let configs = crate::grid::default_plan_grid();
        let engine = SweepEngine::new(&configs);
        let mut costs = Vec::new();
        for p in &prepared {
            for unit in engine.units() {
                costs.push(opd_analyze::unit_cost(
                    &configs,
                    unit,
                    p.total_elements(),
                    p.site_capacity() as u64,
                ));
            }
        }
        assert_eq!(costs.len(), 8, "one shared unit per workload");
        let threads = 4;
        let plan = lpt_plan(&costs, threads);
        let loads: Vec<u64> = plan
            .iter()
            .map(|bucket| bucket.iter().map(|&i| costs[i]).sum())
            .collect();
        let max = *loads.iter().max().unwrap() as f64;
        let mean = loads.iter().sum::<u64>() as f64 / threads as f64;
        assert!(
            max <= mean * 1.15,
            "LPT imbalance {:.1}% exceeds 15% (loads {loads:?})",
            (max / mean - 1.0) * 100.0
        );
    }

    #[test]
    fn calibrated_lpt_imbalance_stays_small_under_measured_load() {
        // Satellite check for the calibrated scheduler: build the LPT
        // plan from the *calibrated* unit prices (static bounds ×
        // measured judged-step density, measured alphabet), then
        // re-weigh every bucket with what the units actually cost when
        // run — metered comparison ops plus the static
        // window-maintenance part. The heaviest bucket may exceed the
        // mean by at most 20%. The uncalibrated static plan fails this
        // measure (BENCH_obs recorded 1.28 before calibration).
        let prepared = prepare_all(&Workload::ALL, 1, &[1_000], 60_000);
        let configs = crate::grid::default_plan_grid();
        let engine = SweepEngine::new(&configs);
        let mut items = Vec::new();
        let mut calibrated = Vec::new();
        for (wi, p) in prepared.iter().enumerate() {
            for (ui, unit) in engine.units().iter().enumerate() {
                items.push((wi, ui));
                calibrated.push(calibrated_unit_cost(&configs, unit, p));
            }
        }
        assert_eq!(items.len(), 8, "one shared unit per workload");
        // Deterministic measured proxy per item.
        let measured: Vec<u64> = items
            .iter()
            .map(|&(wi, ui)| {
                let p = &prepared[wi];
                let mut scratch = SweepScratch::with_site_capacity(p.site_capacity());
                let mut metrics = opd_obs::UnitMetrics::new();
                let _ = engine.run_unit_metered(ui, p.interned(), &mut scratch, &mut metrics);
                let (window, _) = opd_analyze::unit_cost_parts(
                    &configs,
                    &engine.units()[ui],
                    p.total_elements(),
                    u64::from(p.interned().distinct_count()),
                );
                window + metrics.compare_ops
            })
            .collect();
        let threads = 4;
        let plan = lpt_plan(&calibrated, threads);
        let loads: Vec<u64> = plan
            .iter()
            .map(|bucket| bucket.iter().map(|&i| measured[i]).sum())
            .collect();
        let max = *loads.iter().max().unwrap() as f64;
        let mean = loads.iter().sum::<u64>() as f64 / threads as f64;
        assert!(
            max <= mean * 1.20,
            "calibrated LPT imbalance {:.1}% exceeds 20% (loads {loads:?})",
            (max / mean - 1.0) * 100.0
        );
        // And the calibrated prices must themselves track the measured
        // loads: a plan built directly from the measured proxy should
        // not beat the calibrated plan by much on its heaviest bucket.
        let ideal = lpt_plan(&measured, threads);
        let ideal_max = ideal
            .iter()
            .map(|bucket| bucket.iter().map(|&i| measured[i]).sum::<u64>())
            .max()
            .unwrap() as f64;
        assert!(
            max <= ideal_max * 1.20,
            "calibrated plan max {max} vs measured-optimal max {ideal_max}"
        );
    }

    #[test]
    fn certificates_issue_for_every_workload_and_price_the_sweep() {
        // Certificate-midpoint LPT pricing (the density the parallel
        // sweep now schedules from) must track the measured load as
        // well as the probe calibration does: plan from certified
        // prices, re-weigh with metered costs, max bucket within 20%
        // of the mean and of the measured-optimal plan.
        let prepared = prepare_all(&Workload::ALL, 1, &[1_000], 60_000);
        let configs = crate::grid::default_plan_grid();
        let engine = SweepEngine::new(&configs);
        let mut items = Vec::new();
        let mut certified = Vec::new();
        for (wi, p) in prepared.iter().enumerate() {
            let certs = p
                .certificates(&configs)
                .expect("workload certificates are never vacuous");
            assert_eq!(certs.len(), configs.len());
            for cert in &certs {
                assert!(!cert.truncated() || p.fuel() < u64::MAX);
                assert!(cert.judged_steps().hi() <= cert.steps().hi());
            }
            for (ui, unit) in engine.units().iter().enumerate() {
                items.push((wi, ui));
                certified.push(certified_unit_cost(&configs, unit, p, &certs));
            }
        }
        let measured: Vec<u64> = items
            .iter()
            .map(|&(wi, ui)| {
                let p = &prepared[wi];
                let mut scratch = SweepScratch::with_site_capacity(p.site_capacity());
                let mut metrics = opd_obs::UnitMetrics::new();
                let _ = engine.run_unit_metered(ui, p.interned(), &mut scratch, &mut metrics);
                let (window, _) = opd_analyze::unit_cost_parts(
                    &configs,
                    &engine.units()[ui],
                    p.total_elements(),
                    u64::from(p.interned().distinct_count()),
                );
                window + metrics.compare_ops
            })
            .collect();
        let threads = 4;
        let plan = lpt_plan(&certified, threads);
        let loads: Vec<u64> = plan
            .iter()
            .map(|bucket| bucket.iter().map(|&i| measured[i]).sum())
            .collect();
        let max = *loads.iter().max().unwrap() as f64;
        let mean = loads.iter().sum::<u64>() as f64 / threads as f64;
        assert!(
            max <= mean * 1.20,
            "certified LPT imbalance {:.1}% exceeds 20% (loads {loads:?})",
            (max / mean - 1.0) * 100.0
        );
        let ideal = lpt_plan(&measured, threads);
        let ideal_max = ideal
            .iter()
            .map(|bucket| bucket.iter().map(|&i| measured[i]).sum::<u64>())
            .max()
            .unwrap() as f64;
        assert!(
            max <= ideal_max * 1.20,
            "certified plan max {max} vs measured-optimal max {ideal_max}"
        );
    }

    #[test]
    fn lpt_plan_covers_every_item_once() {
        let costs = [5u64, 3, 8, 1, 1, 6];
        let plan = lpt_plan(&costs, 3);
        let mut seen: Vec<usize> = plan.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
        // The heaviest item goes to an otherwise-light bucket: no
        // bucket holds both of the two heaviest items.
        for bucket in &plan {
            assert!(!(bucket.contains(&2) && bucket.contains(&5)));
        }
    }

    #[test]
    fn detected_and_anchored_differ_for_adaptive() {
        let p = small_prepared();
        let cfg = policy_grid(TwKind::Adaptive, 500)[0];
        let run = run_detector(cfg, p.interned());
        if !run.detected.is_empty() {
            // Anchored starts never come after detected starts.
            for (d, a) in run.detected.iter().zip(&run.anchored) {
                assert!(a.start() <= d.start());
            }
        }
    }
}
