//! The service dashboard study behind `opd top`, `opd metrics-dump`,
//! and the committed `BENCH_dash.json` artifact.
//!
//! [`dash_study`] runs a mid-sized fault-injected soak through the
//! traced engine ([`opd_serve::run_service_traced`]) and folds the
//! causal-span log into the service view the dashboard renders:
//! per-window session states, shed and quarantine rates, and frame
//! latency percentiles in **virtual ticks** (p50/p90/p99 computed by
//! [`HistogramSnapshot::percentile`] over `FrameIngest` span
//! durations). Everything in the study is a pure function of the
//! configuration — the rendered `dash` section of the artifact is
//! byte-identical across thread counts.
//!
//! [`SloPolicy`] is the declarative service-level-objective layer:
//! latency, shed, quarantine, and completion floors checked over the
//! study's windows, surfacing burns as `OPD-O401..O404` diagnostics
//! through the same lint [`Diagnostic`] machinery as every other
//! analyzer (so `opd top` inherits the 0/1/2 exit contract).
//!
//! [`null_span_overhead`] is the measurement behind the
//! zero-overhead-when-off claim for spans: the traced engine
//! monomorphized over [`NullSpanRecorder`] against the plain engine,
//! interleaved samples, median of each — the span-layer counterpart
//! of `obs.rs`'s NullObserver benchmark.

use std::time::Instant;

use opd_analyze::{Code, Diagnostic};
use opd_obs::{
    HistogramSnapshot, MetricsRegistry, MetricsSnapshot, NullSpanRecorder, SpanKind, SpanLog,
};
use opd_serve::{
    keyed_hash, run_service, run_service_traced, BackpressureMode, IngestPolicy, NullSubscriber,
    SeededHazards, ServeConfig, ServeError, ServiceMetrics, ServiceOptions, SupervisionPolicy,
    TraceConfig,
};

use crate::obs::OverheadReport;
use crate::report::Table;
use crate::serve::{WorkloadSource, SERVE_SEED};

/// The dashboard study's master seed.
pub const DASH_SEED: u64 = SERVE_SEED ^ 0xDA5B;

/// Clients in the committed dashboard soak.
pub const DASH_CLIENTS: u32 = 600;

/// Frames per client.
pub const DASH_FRAMES: u32 = 6;

/// Branch elements per frame.
pub const DASH_FRAME_ELEMENTS: u32 = 48;

/// Fraction of frames corrupted in flight.
pub const DASH_FAULT_RATE: f64 = 0.10;

/// Virtual shards of the dashboard soak.
pub const DASH_VSHARDS: u32 = 48;

/// Vshard-range windows the dashboard aggregates over (each window
/// covers `DASH_VSHARDS / DASH_WINDOWS` consecutive vshards).
pub const DASH_WINDOWS: u32 = 8;

/// Timing samples per arm of the span overhead benchmark.
pub const DASH_SAMPLES: usize = 5;

/// Clients in the overhead benchmark's soak (smaller than the study,
/// since each sample runs the full service twice).
pub const OVERHEAD_CLIENTS: u32 = 160;

/// The dashboard soak's frame source at the committed shape.
#[must_use]
pub fn dash_source(scale: u32, clients: u32) -> WorkloadSource {
    WorkloadSource::build(
        scale,
        clients,
        DASH_FRAMES,
        DASH_FRAME_ELEMENTS,
        DASH_FAULT_RATE,
        DASH_SEED,
    )
}

/// The dashboard soak's service configuration: a shedding queue under
/// moderate hazards, immediate poison quarantine, full verification.
#[must_use]
pub fn dash_config() -> ServeConfig {
    ServeConfig {
        ingest: IngestPolicy {
            queue_capacity: 4,
            mode: BackpressureMode::ShedOldest,
            arrivals_per_tick: 2,
        },
        supervision: SupervisionPolicy {
            max_poison_frames: 0,
            ..SupervisionPolicy::default()
        },
        hazards: SeededHazards {
            seed: DASH_SEED,
            kill_rate: 0.02,
            wedge_rate: 0.005,
            poison_rate: 0.002,
        },
        admission_budget_bytes: None,
        vshards: DASH_VSHARDS,
        verify: true,
    }
}

/// One vshard-range window of the dashboard: session states, flow
/// accounting, and the latency histogram of its `FrameIngest` spans.
#[derive(Debug, Clone)]
pub struct DashWindow {
    /// Window index (`0..DASH_WINDOWS`).
    pub index: u32,
    /// First vshard covered (inclusive).
    pub vshard_lo: u32,
    /// Last vshard covered (exclusive).
    pub vshard_hi: u32,
    /// Sessions homed in the window.
    pub sessions: u64,
    /// Sessions that drained their stream.
    pub completed: u64,
    /// Sessions quarantined by the supervisor.
    pub quarantined: u64,
    /// Frames offered across the window's sessions.
    pub frames_offered: u64,
    /// Frames that reached a detector.
    pub frames_processed: u64,
    /// Frames lost to shedding, rejection, quarantine, or
    /// non-delivery.
    pub shed_frames: u64,
    /// Phase boundaries detected.
    pub phases: u64,
    /// Frame latency (enqueue tick to processed tick), from the
    /// window's `FrameIngest` spans.
    pub latency: HistogramSnapshot,
}

impl DashWindow {
    /// Fraction of offered frames the window lost.
    #[must_use]
    pub fn shed_fraction(&self) -> f64 {
        if self.frames_offered == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.shed_frames as f64 / self.frames_offered as f64
        }
    }

    /// Fraction of the window's sessions that were quarantined.
    #[must_use]
    pub fn quarantine_fraction(&self) -> f64 {
        if self.sessions == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.quarantined as f64 / self.sessions as f64
        }
    }

    /// The window's `q`-quantile frame latency in ticks (0.0 when no
    /// frame completed).
    #[must_use]
    pub fn latency_ticks(&self, q: f64) -> f64 {
        self.latency.percentile(q).unwrap_or(0.0)
    }
}

/// The full dashboard study: service totals, per-window views, span
/// accounting, and the run's metrics snapshot.
#[derive(Debug, Clone)]
pub struct DashStudy {
    /// Workload scale the soak ran at.
    pub scale: u32,
    /// Clients in the soak.
    pub clients: u32,
    /// Virtual shards.
    pub vshards: u32,
    /// Sessions that drained their stream.
    pub completed: u64,
    /// Sessions quarantined by the supervisor.
    pub quarantined: u64,
    /// Sessions refused by admission control.
    pub rejected: u64,
    /// Completed sessions that failed bit-identity verification
    /// (the acceptance gate requires zero).
    pub verify_failures: u64,
    /// Supervisor restarts.
    pub restarts: u64,
    /// Deadline kills.
    pub timeouts: u64,
    /// Injected crashes.
    pub crashes: u64,
    /// Frames offered across all sessions.
    pub frames_offered: u64,
    /// Frames that reached a detector.
    pub frames_processed: u64,
    /// Frames lost to shedding, rejection, quarantine, or
    /// non-delivery.
    pub shed_frames: u64,
    /// Corrupt frames seen by the resync decoder.
    pub corrupt_frames: u64,
    /// Phase boundaries detected.
    pub phases: u64,
    /// Global frame latency over every `FrameIngest` span.
    pub latency: HistogramSnapshot,
    /// Per-window views, ascending by window index.
    pub windows: Vec<DashWindow>,
    /// Span counts per kind, in [`SpanKind::ALL`] order.
    pub span_counts: Vec<(SpanKind, u64)>,
    /// A digest over the canonical span-log document — two runs with
    /// equal digests produced byte-identical span logs.
    pub span_digest: u64,
    /// Post-mortems dumped along the way.
    pub postmortems: u64,
    /// The metrics registry's post-run snapshot (includes the
    /// wall-clock `serve.step_ns` histogram — never rendered into the
    /// deterministic artifact).
    pub snapshot: MetricsSnapshot,
}

impl DashStudy {
    /// Fraction of sessions that completed cleanly.
    #[must_use]
    pub fn completion_fraction(&self) -> f64 {
        if self.clients == 0 {
            return 1.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.completed as f64 / f64::from(self.clients)
        }
    }

    /// The global `q`-quantile frame latency in ticks.
    #[must_use]
    pub fn latency_ticks(&self, q: f64) -> f64 {
        self.latency.percentile(q).unwrap_or(0.0)
    }

    /// Total spans recorded.
    #[must_use]
    pub fn spans_total(&self) -> u64 {
        self.span_counts.iter().map(|&(_, n)| n).sum()
    }
}

/// Runs the dashboard soak through the traced engine and folds the
/// span log into the per-window service view. Deterministic: the
/// result (excluding the snapshot's wall-clock histogram) is a pure
/// function of `scale`, independent of `threads`.
///
/// # Errors
///
/// Returns [`ServeError`] if the engine refuses the configuration or
/// a shard stalls; neither happens for the committed parameters.
pub fn dash_study(scale: u32, threads: usize) -> Result<DashStudy, ServeError> {
    let mut registry = MetricsRegistry::for_host();
    let metrics = ServiceMetrics::register(&mut registry);
    dash_study_observed(scale, DASH_CLIENTS, threads, &registry, &metrics)
}

/// [`dash_study`] with an externally owned metrics registry (so a
/// live monitor can sample [`MetricsRegistry::snapshot`] while the
/// soak runs) and an explicit client count. `opd top`'s refresh loop
/// is built on this entry point.
///
/// # Errors
///
/// Returns [`ServeError`] under the same conditions as
/// [`dash_study`].
pub fn dash_study_observed(
    scale: u32,
    clients: u32,
    threads: usize,
    registry: &MetricsRegistry,
    metrics: &ServiceMetrics,
) -> Result<DashStudy, ServeError> {
    let source = dash_source(scale, clients);
    let config = dash_config();
    let (report, trace) = run_service_traced::<SpanLog>(
        &config,
        &source,
        &ServiceOptions {
            threads,
            ..ServiceOptions::default()
        },
        &NullSubscriber,
        Some((registry, metrics)),
        &TraceConfig::default(),
    )?;

    let per_window = DASH_VSHARDS / DASH_WINDOWS;
    let window_of = |vshard: u32| (vshard / per_window).min(DASH_WINDOWS - 1);
    let mut windows: Vec<DashWindow> = (0..DASH_WINDOWS)
        .map(|index| DashWindow {
            index,
            vshard_lo: index * per_window,
            vshard_hi: (index + 1) * per_window,
            sessions: 0,
            completed: 0,
            quarantined: 0,
            frames_offered: 0,
            frames_processed: 0,
            shed_frames: 0,
            phases: 0,
            latency: HistogramSnapshot::empty(),
        })
        .collect();

    for r in &report.sessions {
        let w = &mut windows[window_of(r.client % DASH_VSHARDS) as usize];
        w.sessions += 1;
        match r.status {
            opd_serve::SessionStatus::Completed => w.completed += 1,
            opd_serve::SessionStatus::Quarantined => w.quarantined += 1,
            opd_serve::SessionStatus::Rejected => {}
        }
        w.frames_offered += r.stats.frames_total;
        w.frames_processed += r.stats.frames_processed;
        w.shed_frames += r.stats.shed.lost_frames();
        w.phases += r.stats.phase_count;
    }

    let mut latency = HistogramSnapshot::empty();
    for s in &trace.spans {
        if s.kind == SpanKind::FrameIngest {
            let ticks = s.end.saturating_sub(s.start);
            latency.record(ticks);
            windows[window_of(s.vshard) as usize].latency.record(ticks);
        }
    }

    let log = trace.span_log();
    let mut fnv = 0xCBF2_9CE4_8422_2325u64;
    for &b in log.as_bytes() {
        fnv ^= u64::from(b);
        fnv = fnv.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let span_digest = keyed_hash(&[trace.spans.len() as u64, fnv]);

    Ok(DashStudy {
        scale,
        clients,
        vshards: DASH_VSHARDS,
        completed: report.completed(),
        quarantined: report.quarantined(),
        rejected: report.rejected(),
        verify_failures: report.verify_failures(),
        restarts: report.restarts(),
        timeouts: report.timeouts(),
        crashes: report.crashes(),
        frames_offered: report.sessions.iter().map(|r| r.stats.frames_total).sum(),
        frames_processed: report.frames_processed(),
        shed_frames: report
            .sessions
            .iter()
            .map(|r| r.stats.shed.lost_frames())
            .sum(),
        corrupt_frames: report.corrupt_frames(),
        phases: report.phases(),
        latency,
        windows,
        span_counts: trace.counts_by_kind(),
        span_digest,
        postmortems: trace.postmortems.len() as u64,
        snapshot: registry.snapshot(),
    })
}

/// Declarative service-level objectives over the dashboard's windows.
///
/// Burns surface as `OPD-O401..O404` [`Diagnostic`]s — all
/// [`opd_analyze::Severity::Error`], so any burn fails `opd top`'s
/// exit contract the same way a lint error fails `opd lint`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloPolicy {
    /// `OPD-O401` fires when any window's p99 frame latency exceeds
    /// this many virtual ticks.
    pub max_p99_latency_ticks: f64,
    /// `OPD-O402` fires when any window sheds more than this fraction
    /// of its offered frames.
    pub max_shed_fraction: f64,
    /// `OPD-O403` fires when any window quarantines more than this
    /// fraction of its sessions.
    pub max_quarantine_fraction: f64,
    /// `OPD-O404` fires when fewer than this fraction of all sessions
    /// complete cleanly, or any completed session fails verification.
    pub min_completion_fraction: f64,
}

impl Default for SloPolicy {
    /// Defaults sized for the committed soak: comfortably above its
    /// steady-state rates, tight enough that a regression in the
    /// supervision or backpressure layers burns through.
    fn default() -> Self {
        SloPolicy {
            max_p99_latency_ticks: 512.0,
            max_shed_fraction: 0.10,
            max_quarantine_fraction: 0.12,
            min_completion_fraction: 0.90,
        }
    }
}

impl SloPolicy {
    /// Checks every objective over the study, returning one
    /// diagnostic per burn (empty when all SLOs are met), windows in
    /// ascending order, objectives in `O401..O404` order per window.
    #[must_use]
    pub fn check(&self, study: &DashStudy) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for w in &study.windows {
            let anchor = format!(
                "window {} (vshards {}..{})",
                w.index, w.vshard_lo, w.vshard_hi
            );
            let p99 = w.latency_ticks(0.99);
            if p99 > self.max_p99_latency_ticks {
                out.push(Diagnostic::new(
                    Code::SloLatencyBurn,
                    anchor.clone(),
                    format!(
                        "p99 frame latency {p99:.1} ticks exceeds the {:.1} tick SLO",
                        self.max_p99_latency_ticks
                    ),
                ));
            }
            if w.shed_fraction() > self.max_shed_fraction {
                out.push(Diagnostic::new(
                    Code::SloShedBudget,
                    anchor.clone(),
                    format!(
                        "shed {} of {} offered frames ({:.1}%, budget {:.1}%)",
                        w.shed_frames,
                        w.frames_offered,
                        100.0 * w.shed_fraction(),
                        100.0 * self.max_shed_fraction
                    ),
                ));
            }
            if w.quarantine_fraction() > self.max_quarantine_fraction {
                out.push(Diagnostic::new(
                    Code::SloQuarantineBudget,
                    anchor,
                    format!(
                        "quarantined {} of {} sessions ({:.1}%, budget {:.1}%)",
                        w.quarantined,
                        w.sessions,
                        100.0 * w.quarantine_fraction(),
                        100.0 * self.max_quarantine_fraction
                    ),
                ));
            }
        }
        if study.completion_fraction() < self.min_completion_fraction {
            out.push(Diagnostic::new(
                Code::SloCompletionFloor,
                "service",
                format!(
                    "{} of {} sessions completed ({:.1}%, floor {:.1}%)",
                    study.completed,
                    study.clients,
                    100.0 * study.completion_fraction(),
                    100.0 * self.min_completion_fraction
                ),
            ));
        } else if study.verify_failures > 0 {
            out.push(Diagnostic::new(
                Code::SloCompletionFloor,
                "service",
                format!(
                    "{} completed session(s) failed bit-identity verification",
                    study.verify_failures
                ),
            ));
        }
        out
    }
}

fn median(mut samples: Vec<u64>) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Measures the disabled-span arm against the plain engine: the same
/// soak through [`run_service`] and through the traced engine
/// monomorphized over [`NullSpanRecorder`], `samples` interleaved
/// samples per arm, median of each. With the `const ACTIVE` guard
/// compiled out the ratio is noise around 1.0; the committed
/// `BENCH_dash.json` records it and the artifact test holds it under
/// the 2% acceptance line.
#[must_use]
pub fn null_span_overhead(scale: u32, samples: usize) -> OverheadReport {
    let samples = samples.max(1);
    let source = dash_source(scale, OVERHEAD_CLIENTS);
    let config = dash_config();
    let options = ServiceOptions {
        threads: 1,
        ..ServiceOptions::default()
    };

    // Warm both arms (page in code, fault the source's templates)
    // before timing anything.
    let _ = run_service(&config, &source, &options).expect("overhead warm-up runs");
    let _ = run_service_traced::<NullSpanRecorder>(
        &config,
        &source,
        &options,
        &NullSubscriber,
        None,
        &TraceConfig::default(),
    )
    .expect("overhead warm-up runs");

    let mut plain = Vec::with_capacity(samples);
    let mut instrumented = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        let _ = run_service(&config, &source, &options).expect("overhead sample runs");
        plain.push(u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX));

        let t = Instant::now();
        let _ = run_service_traced::<NullSpanRecorder>(
            &config,
            &source,
            &options,
            &NullSubscriber,
            None,
            &TraceConfig::default(),
        )
        .expect("overhead sample runs");
        instrumented.push(u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
    OverheadReport {
        samples,
        plain_nanos: median(plain),
        instrumented_nanos: median(instrumented),
    }
}

/// Renders `BENCH_dash.json`: the deterministic dashboard section
/// (byte-identical across thread counts) plus the overhead
/// measurement, hand-built (the vendored serde_json is an inert
/// shim). The overhead numbers are passed in raw so the freshness
/// test can re-render around the committed timings.
#[must_use]
pub fn render_dash_json(
    study: &DashStudy,
    samples: usize,
    plain_nanos: u64,
    instrumented_nanos: u64,
) -> String {
    let policy = SloPolicy::default();
    let violations = policy.check(study).len();
    let config = dash_config();
    let overhead = OverheadReport {
        samples,
        plain_nanos,
        instrumented_nanos,
    };
    let mut out = String::with_capacity(4096);
    out.push_str("{\n");
    out.push_str(" \"schema\": \"opd-bench-dash-v1\",\n");
    out.push_str(&format!(" \"scale\": {},\n", study.scale));
    out.push_str(&format!(
        " \"clients\": {}, \"frames_per_client\": {DASH_FRAMES}, \
         \"frame_elements\": {DASH_FRAME_ELEMENTS}, \"fault_rate\": {DASH_FAULT_RATE:?},\n",
        study.clients
    ));
    out.push_str(&format!(
        " \"vshards\": {}, \"windows\": {DASH_WINDOWS},\n",
        study.vshards
    ));
    out.push_str(&format!(
        " \"hazards\": {{\"kill\": {:?}, \"wedge\": {:?}, \"poison\": {:?}}},\n",
        config.hazards.kill_rate, config.hazards.wedge_rate, config.hazards.poison_rate,
    ));
    out.push_str(" \"service\": {\n");
    out.push_str(&format!(
        "  \"completed\": {}, \"quarantined\": {}, \"rejected\": {}, \"verify_failures\": {},\n",
        study.completed, study.quarantined, study.rejected, study.verify_failures,
    ));
    out.push_str(&format!(
        "  \"restarts\": {}, \"timeouts\": {}, \"crashes\": {},\n",
        study.restarts, study.timeouts, study.crashes,
    ));
    out.push_str(&format!(
        "  \"frames_offered\": {}, \"frames_processed\": {}, \"shed_frames\": {}, \
         \"corrupt_frames\": {}, \"phases\": {}\n",
        study.frames_offered,
        study.frames_processed,
        study.shed_frames,
        study.corrupt_frames,
        study.phases,
    ));
    out.push_str(" },\n");
    out.push_str(&format!(
        " \"latency_ticks\": {{\"count\": {}, \"p50\": {:.3}, \"p90\": {:.3}, \"p99\": {:.3}}},\n",
        study.latency.count(),
        study.latency_ticks(0.50),
        study.latency_ticks(0.90),
        study.latency_ticks(0.99),
    ));
    out.push_str(" \"window_views\": [\n");
    let window_lines: Vec<String> = study
        .windows
        .iter()
        .map(|w| {
            format!(
                "  {{\"window\": {}, \"vshards\": \"{}..{}\", \"sessions\": {}, \
                 \"completed\": {}, \"quarantined\": {}, \"frames_offered\": {}, \
                 \"frames_processed\": {}, \"shed_frames\": {}, \"phases\": {}, \
                 \"p50\": {:.3}, \"p90\": {:.3}, \"p99\": {:.3}}}",
                w.index,
                w.vshard_lo,
                w.vshard_hi,
                w.sessions,
                w.completed,
                w.quarantined,
                w.frames_offered,
                w.frames_processed,
                w.shed_frames,
                w.phases,
                w.latency_ticks(0.50),
                w.latency_ticks(0.90),
                w.latency_ticks(0.99),
            )
        })
        .collect();
    out.push_str(&window_lines.join(",\n"));
    out.push_str("\n ],\n");
    out.push_str(" \"spans\": {\n");
    out.push_str(&format!(
        "  \"total\": {}, \"digest\": \"{:#018x}\", \"postmortems\": {},\n",
        study.spans_total(),
        study.span_digest,
        study.postmortems,
    ));
    let count_fields: Vec<String> = study
        .span_counts
        .iter()
        .map(|&(kind, n)| format!("\"{}\": {n}", kind.name()))
        .collect();
    out.push_str(&format!("  \"counts\": {{{}}}\n", count_fields.join(", ")));
    out.push_str(" },\n");
    out.push_str(&format!(
        " \"slo\": {{\"max_p99_latency_ticks\": {:?}, \"max_shed_fraction\": {:?}, \
         \"max_quarantine_fraction\": {:?}, \"min_completion_fraction\": {:?}, \
         \"violations\": {violations}}},\n",
        policy.max_p99_latency_ticks,
        policy.max_shed_fraction,
        policy.max_quarantine_fraction,
        policy.min_completion_fraction,
    ));
    out.push_str(" \"overhead\": {\n");
    out.push_str(&format!("  \"samples\": {},\n", overhead.samples));
    out.push_str(&format!("  \"plain_nanos\": {},\n", overhead.plain_nanos));
    out.push_str(&format!(
        "  \"instrumented_nanos\": {},\n",
        overhead.instrumented_nanos
    ));
    out.push_str(&format!("  \"ratio\": {:.4}\n", overhead.ratio()));
    out.push_str(" }\n}\n");
    out
}

/// Renders the live service view `opd top` refreshes: totals, the
/// per-window table, and the SLO verdict.
#[must_use]
pub fn top_view(study: &DashStudy, policy: &SloPolicy) -> String {
    let mut out = String::with_capacity(2048);
    out.push_str(&format!(
        "opd service dashboard — scale {}, {} clients, {} vshards\n",
        study.scale, study.clients, study.vshards
    ));
    out.push_str(&format!(
        "  sessions: {} completed, {} quarantined, {} rejected ({:.1}% completion)\n",
        study.completed,
        study.quarantined,
        study.rejected,
        100.0 * study.completion_fraction(),
    ));
    out.push_str(&format!(
        "  frames:   {}/{} processed, {} shed, {} corrupt; {} phase boundaries\n",
        study.frames_processed,
        study.frames_offered,
        study.shed_frames,
        study.corrupt_frames,
        study.phases,
    ));
    out.push_str(&format!(
        "  faults:   {} restarts, {} timeouts, {} crashes; {} post-mortem(s)\n",
        study.restarts, study.timeouts, study.crashes, study.postmortems,
    ));
    out.push_str(&format!(
        "  latency:  p50 {:.1} / p90 {:.1} / p99 {:.1} ticks over {} frames\n",
        study.latency_ticks(0.50),
        study.latency_ticks(0.90),
        study.latency_ticks(0.99),
        study.latency.count(),
    ));
    out.push_str(&format!(
        "  spans:    {} recorded (digest {:#018x})\n",
        study.spans_total(),
        study.span_digest,
    ));
    let mut t = Table::new(
        "Windows (vshard ranges)",
        &[
            "win", "vshards", "sess", "done", "quar", "frames", "shed", "phases", "p50", "p90",
            "p99",
        ],
    );
    for w in &study.windows {
        t.row(vec![
            w.index.to_string(),
            format!("{}..{}", w.vshard_lo, w.vshard_hi),
            w.sessions.to_string(),
            w.completed.to_string(),
            w.quarantined.to_string(),
            format!("{}/{}", w.frames_processed, w.frames_offered),
            w.shed_frames.to_string(),
            w.phases.to_string(),
            format!("{:.1}", w.latency_ticks(0.50)),
            format!("{:.1}", w.latency_ticks(0.90)),
            format!("{:.1}", w.latency_ticks(0.99)),
        ]);
    }
    out.push_str(&t.to_string());
    let burns = policy.check(study);
    if burns.is_empty() {
        out.push_str("\nSLO: all objectives met\n");
    } else {
        out.push_str(&format!("\nSLO: {} burn(s)\n", burns.len()));
        for d in &burns {
            out.push_str(&format!("{d}\n"));
        }
    }
    out
}

/// Renders `opd top --once --json`: the study plus the SLO verdict as
/// one JSON document.
#[must_use]
pub fn top_json(study: &DashStudy, policy: &SloPolicy) -> String {
    let burns = policy.check(study);
    let mut out = String::with_capacity(2048);
    out.push_str("{\n");
    out.push_str(" \"schema\": \"opd-top-v1\",\n");
    out.push_str(&format!(
        " \"scale\": {}, \"clients\": {}, \"vshards\": {},\n",
        study.scale, study.clients, study.vshards
    ));
    out.push_str(&format!(
        " \"completed\": {}, \"quarantined\": {}, \"rejected\": {}, \"verify_failures\": {},\n",
        study.completed, study.quarantined, study.rejected, study.verify_failures,
    ));
    out.push_str(&format!(
        " \"frames_processed\": {}, \"frames_offered\": {}, \"shed_frames\": {}, \"phases\": {},\n",
        study.frames_processed, study.frames_offered, study.shed_frames, study.phases,
    ));
    out.push_str(&format!(
        " \"latency_ticks\": {{\"p50\": {:.3}, \"p90\": {:.3}, \"p99\": {:.3}}},\n",
        study.latency_ticks(0.50),
        study.latency_ticks(0.90),
        study.latency_ticks(0.99),
    ));
    out.push_str(&format!(
        " \"spans\": {}, \"span_digest\": \"{:#018x}\", \"postmortems\": {},\n",
        study.spans_total(),
        study.span_digest,
        study.postmortems,
    ));
    out.push_str(&format!(" \"slo_burns\": [{}]\n", {
        let items: Vec<String> = burns
            .iter()
            .map(|d| {
                format!(
                    "{{\"code\": \"{}\", \"location\": \"{}\", \"message\": \"{}\"}}",
                    d.code(),
                    d.location().replace('"', "'"),
                    d.message().replace('"', "'"),
                )
            })
            .collect();
        items.join(", ")
    }));
    out.push_str("}\n");
    out
}

/// Runs a small metered soak and returns the Prometheus-style text
/// exposition behind `opd metrics-dump`.
///
/// # Errors
///
/// Returns [`ServeError`] if the soak fails (it does not for any
/// valid `scale`/`clients`).
pub fn metrics_exposition(scale: u32, clients: u32) -> Result<MetricsSnapshot, ServeError> {
    let source = dash_source(scale, clients);
    let mut registry = MetricsRegistry::for_host();
    let metrics = ServiceMetrics::register(&mut registry);
    opd_serve::run_service_with(
        &dash_config(),
        &source,
        &ServiceOptions::default(),
        &NullSubscriber,
        Some((&registry, &metrics)),
    )?;
    Ok(registry.snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dash_study_is_thread_invariant() {
        let one = dash_study(1, 1).expect("study runs");
        let many = dash_study(1, 3).expect("study runs");
        assert_eq!(one.span_digest, many.span_digest);
        assert_eq!(one.completed, many.completed);
        assert_eq!(one.postmortems, many.postmortems);
        assert_eq!(one.latency, many.latency);
        for (a, b) in one.windows.iter().zip(&many.windows) {
            assert_eq!(a.sessions, b.sessions);
            assert_eq!(a.latency, b.latency);
            assert_eq!(a.shed_frames, b.shed_frames);
        }
        // The rendered deterministic sections agree byte-for-byte.
        assert_eq!(
            render_dash_json(&one, 3, 100, 101),
            render_dash_json(&many, 3, 100, 101)
        );
    }

    #[test]
    fn dash_study_exercises_every_dashboard_surface() {
        let study = dash_study(1, 0).expect("study runs");
        assert_eq!(study.windows.len(), DASH_WINDOWS as usize);
        assert_eq!(
            study.windows.iter().map(|w| w.sessions).sum::<u64>(),
            u64::from(DASH_CLIENTS)
        );
        assert!(study.restarts > 0, "hazards must fire");
        assert!(study.postmortems > 0, "kills must dump post-mortems");
        assert_eq!(study.verify_failures, 0);
        // Latency observations come 1:1 from processed frames, and
        // the span-derived histogram agrees with the registry's.
        assert_eq!(study.latency.count(), study.frames_processed);
        assert_eq!(
            study.snapshot.histogram("serve.frame_latency_ticks"),
            Some(&study.latency)
        );
        assert!(study.latency_ticks(0.99) >= study.latency_ticks(0.50));
        // The committed SLO policy passes on the committed soak.
        let burns = SloPolicy::default().check(&study);
        assert!(burns.is_empty(), "default SLOs must hold: {burns:?}");
    }

    #[test]
    fn slo_burns_fire_under_an_impossible_policy() {
        let study = dash_study(1, 0).expect("study runs");
        let burns = SloPolicy {
            max_p99_latency_ticks: 0.0,
            max_shed_fraction: -1.0,
            max_quarantine_fraction: -1.0,
            min_completion_fraction: 1.1,
        }
        .check(&study);
        let codes: Vec<Code> = burns.iter().map(Diagnostic::code).collect();
        for code in [
            Code::SloLatencyBurn,
            Code::SloShedBudget,
            Code::SloQuarantineBudget,
            Code::SloCompletionFloor,
        ] {
            assert!(codes.contains(&code), "missing {code} in {codes:?}");
        }
        assert!(burns
            .iter()
            .all(|d| d.severity() == opd_analyze::Severity::Error));
    }

    #[test]
    fn dash_json_and_top_views_are_structurally_complete() {
        let study = dash_study(1, 0).expect("study runs");
        let json = render_dash_json(&study, 3, 100, 101);
        for key in [
            "\"schema\": \"opd-bench-dash-v1\"",
            "\"service\"",
            "\"latency_ticks\"",
            "\"window_views\"",
            "\"spans\"",
            "\"frame_ingest\"",
            "\"slo\"",
            "\"violations\": 0",
            "\"overhead\"",
            "\"ratio\": 1.0100",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let policy = SloPolicy::default();
        let top = top_view(&study, &policy);
        assert!(top.contains("opd service dashboard"), "{top}");
        assert!(top.contains("SLO: all objectives met"), "{top}");
        let tj = top_json(&study, &policy);
        assert!(tj.contains("\"schema\": \"opd-top-v1\""), "{tj}");
        assert!(tj.contains("\"slo_burns\": []"), "{tj}");
    }

    #[test]
    fn exposition_covers_the_service_metrics() {
        let snapshot = metrics_exposition(1, 64).expect("soak runs");
        let text = snapshot.to_prometheus();
        for key in [
            "# TYPE opd_serve_frames_processed counter",
            "# TYPE opd_serve_frame_latency_ticks histogram",
            "opd_serve_frame_latency_ticks_count",
        ] {
            assert!(text.contains(key), "missing {key} in {text}");
        }
    }
}
