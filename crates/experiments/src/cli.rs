//! Tiny command-line parsing shared by the experiment binaries, plus
//! the output [`Reporter`] keeping `--json` stdout machine-parseable.

use core::fmt;

use opd_core::{AnalyzerPolicy, AnchorPolicy, DetectorConfig, ModelPolicy, ResizePolicy, TwPolicy};

use crate::runner::default_threads;

/// Routes CLI output so machines and humans never share a stream: in
/// `--json` mode, stdout carries exactly one JSON document
/// ([`payload`](Reporter::payload)) and every human-readable line
/// ([`human`](Reporter::human)) goes to stderr; otherwise human lines
/// go to stdout as usual.
#[derive(Debug, Clone, Copy)]
pub struct Reporter {
    json: bool,
}

impl Reporter {
    /// A reporter for a subcommand invocation; `json` is the
    /// `--json` flag.
    #[must_use]
    pub fn new(json: bool) -> Self {
        Reporter { json }
    }

    /// Whether this invocation is in JSON mode.
    #[must_use]
    pub fn json_mode(&self) -> bool {
        self.json
    }

    /// Prints a human-readable line: stdout normally, stderr in JSON
    /// mode (so parsers of stdout never see it).
    pub fn human(&self, text: impl fmt::Display) {
        if self.json {
            eprintln!("{text}");
        } else {
            println!("{text}");
        }
    }

    /// Prints the machine-readable payload to stdout. In JSON mode
    /// this must be the only stdout write of the invocation.
    pub fn payload(&self, text: impl fmt::Display) {
        println!("{text}");
    }
}

/// Parses a detector config spec of comma-separated `key=value`
/// pairs: `cw`, `tw`, `skip` (sizes), `policy` (`constant` |
/// `adaptive`), `anchor` (`rn` | `lnn`), `resize` (`slide` | `move`),
/// `model` (`unweighted` | `weighted` | `pearson`), and `threshold`
/// or `delta` (analyzer). Unset keys take the builder's defaults
/// (cw 500, tw = cw, skip 1).
///
/// # Errors
///
/// Returns a [`CliError`] for unknown keys, unparsable values, or a
/// combination the config builder rejects.
///
/// # Examples
///
/// ```
/// use opd_experiments::cli::parse_config_spec;
///
/// let config = parse_config_spec("cw=200,model=weighted,threshold=0.7")?;
/// assert_eq!(config.current_window(), 200);
/// # Ok::<(), opd_experiments::cli::CliError>(())
/// ```
pub fn parse_config_spec(spec: &str) -> Result<DetectorConfig, CliError> {
    let mut builder = DetectorConfig::builder().current_window(500);
    for pair in spec.split(',').filter(|p| !p.trim().is_empty()) {
        let (key, value) = pair
            .split_once('=')
            .ok_or_else(|| CliError(format!("config spec `{pair}` is not key=value")))?;
        let (key, value) = (key.trim(), value.trim());
        let size = |v: &str, k: &str| {
            v.parse::<usize>()
                .map_err(|e| CliError(format!("bad {k}: {e}")))
        };
        let real = |v: &str, k: &str| {
            v.parse::<f64>()
                .map_err(|e| CliError(format!("bad {k}: {e}")))
        };
        builder = match key {
            "cw" => builder.current_window(size(value, "cw")?),
            "tw" => builder.trailing_window(size(value, "tw")?),
            "skip" => builder.skip_factor(size(value, "skip")?),
            "policy" => builder.tw_policy(match value {
                "constant" => TwPolicy::Constant,
                "adaptive" => TwPolicy::Adaptive,
                other => return Err(CliError(format!("unknown policy `{other}`"))),
            }),
            "anchor" => builder.anchor(match value {
                "rn" => AnchorPolicy::RightmostNoisy,
                "lnn" => AnchorPolicy::LeftmostNonNoisy,
                other => return Err(CliError(format!("unknown anchor `{other}`"))),
            }),
            "resize" => builder.resize(match value {
                "slide" => ResizePolicy::Slide,
                "move" => ResizePolicy::Move,
                other => return Err(CliError(format!("unknown resize `{other}`"))),
            }),
            "model" => builder.model(match value {
                "unweighted" => ModelPolicy::UnweightedSet,
                "weighted" => ModelPolicy::WeightedSet,
                "pearson" => ModelPolicy::Pearson,
                other => return Err(CliError(format!("unknown model `{other}`"))),
            }),
            "threshold" => builder.analyzer(AnalyzerPolicy::Threshold(real(value, "threshold")?)),
            "delta" => builder.analyzer(AnalyzerPolicy::Average {
                delta: real(value, "delta")?,
            }),
            other => return Err(CliError(format!("unknown config key `{other}`"))),
        };
    }
    builder
        .build()
        .map_err(|e| CliError(format!("invalid config: {e}")))
}

/// Options every experiment binary accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CliOpts {
    /// Workload scale factor (`--scale N`, default 1).
    pub scale: u32,
    /// Worker threads (`--threads N`, default: available parallelism).
    pub threads: usize,
}

impl Default for CliOpts {
    fn default() -> Self {
        CliOpts {
            scale: 1,
            threads: default_threads(),
        }
    }
}

/// Error produced for malformed command lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (usage: --scale N --threads N)", self.0)
    }
}

impl std::error::Error for CliError {}

/// Parses `--scale N` and `--threads N` from an argument list
/// (excluding the program name).
///
/// # Errors
///
/// Returns a [`CliError`] for unknown flags or unparsable values.
///
/// # Examples
///
/// ```
/// use opd_experiments::cli::parse_args;
///
/// let opts = parse_args(["--scale", "2"].iter().map(|s| s.to_string()))?;
/// assert_eq!(opts.scale, 2);
/// # Ok::<(), opd_experiments::cli::CliError>(())
/// ```
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<CliOpts, CliError> {
    let mut opts = CliOpts::default();
    let mut iter = args.into_iter();
    while let Some(flag) = iter.next() {
        let mut value_for = |name: &str| {
            iter.next()
                .ok_or_else(|| CliError(format!("missing value for {name}")))
        };
        match flag.as_str() {
            "--scale" => {
                opts.scale = value_for("--scale")?
                    .parse()
                    .map_err(|e| CliError(format!("bad --scale: {e}")))?;
            }
            "--threads" => {
                opts.threads = value_for("--threads")?
                    .parse()
                    .map_err(|e| CliError(format!("bad --threads: {e}")))?;
            }
            other => return Err(CliError(format!("unknown flag `{other}`"))),
        }
    }
    Ok(opts)
}

/// Parses the process's own arguments, exiting with a usage message on
/// error — the entry point used by the experiment binaries.
#[must_use]
pub fn parse_env() -> CliOpts {
    match parse_args(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CliOpts, CliError> {
        parse_args(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn defaults() {
        let opts = parse(&[]).unwrap();
        assert_eq!(opts.scale, 1);
        assert!(opts.threads >= 1);
    }

    #[test]
    fn both_flags() {
        let opts = parse(&["--scale", "3", "--threads", "2"]).unwrap();
        assert_eq!(
            opts,
            CliOpts {
                scale: 3,
                threads: 2
            }
        );
    }

    #[test]
    fn errors() {
        assert!(parse(&["--scale"]).is_err());
        assert!(parse(&["--scale", "x"]).is_err());
        assert!(parse(&["--wat"]).is_err());
        assert!(!parse(&["--wat"]).unwrap_err().to_string().is_empty());
    }

    #[test]
    fn config_spec_parses_every_key() {
        let c = parse_config_spec(
            "cw=100,tw=50,skip=5,policy=adaptive,anchor=lnn,resize=move,model=pearson,delta=0.2",
        )
        .unwrap();
        assert_eq!(c.current_window(), 100);
        assert_eq!(c.trailing_window(), 50);
        assert_eq!(c.skip_factor(), 5);
        assert_eq!(c.tw_policy(), TwPolicy::Adaptive);
        assert_eq!(c.anchor(), AnchorPolicy::LeftmostNonNoisy);
        assert_eq!(c.resize(), ResizePolicy::Move);
        assert_eq!(c.model(), ModelPolicy::Pearson);
        assert_eq!(c.analyzer(), AnalyzerPolicy::Average { delta: 0.2 });
    }

    #[test]
    fn config_spec_defaults_and_errors() {
        let c = parse_config_spec("").unwrap();
        assert_eq!(c.current_window(), 500);
        let c = parse_config_spec("threshold=0.7").unwrap();
        assert_eq!(c.analyzer(), AnalyzerPolicy::Threshold(0.7));
        for bad in [
            "cw",
            "cw=zero",
            "policy=sometimes",
            "anchor=up",
            "resize=grow",
            "model=psychic",
            "volume=11",
            "cw=0",
        ] {
            assert!(parse_config_spec(bad).is_err(), "accepted {bad}");
        }
    }
}
