//! Tiny command-line parsing shared by the experiment binaries, plus
//! the output [`Reporter`] keeping `--json` stdout machine-parseable.

use core::fmt;

use opd_core::{AnalyzerPolicy, AnchorPolicy, DetectorConfig, ModelPolicy, ResizePolicy, TwPolicy};

use crate::runner::default_threads;

/// Routes CLI output so machines and humans never share a stream: in
/// `--json` mode, stdout carries exactly one JSON document
/// ([`payload`](Reporter::payload)) and every human-readable line
/// ([`human`](Reporter::human)) goes to stderr; otherwise human lines
/// go to stdout as usual.
#[derive(Debug, Clone, Copy)]
pub struct Reporter {
    json: bool,
}

impl Reporter {
    /// A reporter for a subcommand invocation; `json` is the
    /// `--json` flag.
    #[must_use]
    pub fn new(json: bool) -> Self {
        Reporter { json }
    }

    /// Whether this invocation is in JSON mode.
    #[must_use]
    pub fn json_mode(&self) -> bool {
        self.json
    }

    /// Prints a human-readable line: stdout normally, stderr in JSON
    /// mode (so parsers of stdout never see it).
    pub fn human(&self, text: impl fmt::Display) {
        if self.json {
            eprintln!("{text}");
        } else {
            println!("{text}");
        }
    }

    /// Prints the machine-readable payload to stdout. In JSON mode
    /// this must be the only stdout write of the invocation.
    pub fn payload(&self, text: impl fmt::Display) {
        println!("{text}");
    }
}

/// Parses a detector config spec of comma-separated `key=value`
/// pairs: `cw`, `tw`, `skip` (sizes), `policy` (`constant` |
/// `adaptive`), `anchor` (`rn` | `lnn`), `resize` (`slide` | `move`),
/// `model` (`unweighted` | `weighted` | `pearson`), and `threshold`
/// or `delta` (analyzer). Unset keys take the builder's defaults
/// (cw 500, tw = cw, skip 1).
///
/// # Errors
///
/// Returns a [`CliError`] for unknown keys, unparsable values, or a
/// combination the config builder rejects.
///
/// # Examples
///
/// ```
/// use opd_experiments::cli::parse_config_spec;
///
/// let config = parse_config_spec("cw=200,model=weighted,threshold=0.7")?;
/// assert_eq!(config.current_window(), 200);
/// # Ok::<(), opd_experiments::cli::CliError>(())
/// ```
pub fn parse_config_spec(spec: &str) -> Result<DetectorConfig, CliError> {
    let mut builder = DetectorConfig::builder().current_window(500);
    for pair in spec.split(',').filter(|p| !p.trim().is_empty()) {
        let (key, value) = pair
            .split_once('=')
            .ok_or_else(|| CliError::invalid(format!("config spec `{pair}`"), "not key=value"))?;
        let (key, value) = (key.trim(), value.trim());
        let size = |v: &str, k: &str| v.parse::<usize>().map_err(|e| CliError::invalid(k, e));
        let real = |v: &str, k: &str| v.parse::<f64>().map_err(|e| CliError::invalid(k, e));
        builder = match key {
            "cw" => builder.current_window(size(value, "cw")?),
            "tw" => builder.trailing_window(size(value, "tw")?),
            "skip" => builder.skip_factor(size(value, "skip")?),
            "policy" => builder.tw_policy(match value {
                "constant" => TwPolicy::Constant,
                "adaptive" => TwPolicy::Adaptive,
                other => {
                    return Err(CliError::invalid(
                        "policy",
                        format_args!("unknown `{other}`"),
                    ))
                }
            }),
            "anchor" => builder.anchor(match value {
                "rn" => AnchorPolicy::RightmostNoisy,
                "lnn" => AnchorPolicy::LeftmostNonNoisy,
                other => {
                    return Err(CliError::invalid(
                        "anchor",
                        format_args!("unknown `{other}`"),
                    ))
                }
            }),
            "resize" => builder.resize(match value {
                "slide" => ResizePolicy::Slide,
                "move" => ResizePolicy::Move,
                other => {
                    return Err(CliError::invalid(
                        "resize",
                        format_args!("unknown `{other}`"),
                    ))
                }
            }),
            "model" => builder.model(match value {
                "unweighted" => ModelPolicy::UnweightedSet,
                "weighted" => ModelPolicy::WeightedSet,
                "pearson" => ModelPolicy::Pearson,
                other => {
                    return Err(CliError::invalid(
                        "model",
                        format_args!("unknown `{other}`"),
                    ))
                }
            }),
            "threshold" => builder.analyzer(AnalyzerPolicy::Threshold(real(value, "threshold")?)),
            "delta" => builder.analyzer(AnalyzerPolicy::Average {
                delta: real(value, "delta")?,
            }),
            other => {
                return Err(CliError::invalid(
                    "config spec",
                    format_args!("unknown key `{other}`"),
                ))
            }
        };
    }
    builder.build().map_err(|e| CliError::invalid("config", e))
}

/// Options every experiment binary accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CliOpts {
    /// Workload scale factor (`--scale N`, default 1).
    pub scale: u32,
    /// Worker threads (`--threads N`, default: available parallelism).
    pub threads: usize,
}

impl Default for CliOpts {
    fn default() -> Self {
        CliOpts {
            scale: 1,
            threads: default_threads(),
        }
    }
}

/// Error produced for malformed command lines.
///
/// Every variant is a *usage* error: tools report it on stderr and
/// exit with code 2, per the CLI contract (0 clean, 1 findings at the
/// failing severity, 2 usage/input errors) locked by
/// `tests/cli_errors.rs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// A subcommand the tool does not know.
    UnknownSubcommand(String),
    /// A `--flag` the (sub)command does not know.
    UnknownFlag(String),
    /// A flag that takes a value hit the end of the argument list.
    MissingValue(String),
    /// A value that failed to parse or was rejected; `what` names the
    /// offending flag or spec, `reason` says why.
    InvalidValue {
        /// The flag or spec that carried the bad value.
        what: String,
        /// Why the value was rejected.
        reason: String,
    },
    /// Flags that cannot be combined, or one that requires another.
    Conflict(String),
    /// Any other malformed invocation (missing or extra positionals).
    Usage(String),
}

impl CliError {
    /// An [`UnknownSubcommand`](CliError::UnknownSubcommand) error.
    #[must_use]
    pub fn unknown_subcommand(name: impl Into<String>) -> Self {
        CliError::UnknownSubcommand(name.into())
    }

    /// An [`UnknownFlag`](CliError::UnknownFlag) error.
    #[must_use]
    pub fn unknown_flag(flag: impl Into<String>) -> Self {
        CliError::UnknownFlag(flag.into())
    }

    /// A [`MissingValue`](CliError::MissingValue) error.
    #[must_use]
    pub fn missing_value(flag: impl Into<String>) -> Self {
        CliError::MissingValue(flag.into())
    }

    /// An [`InvalidValue`](CliError::InvalidValue) error.
    #[must_use]
    pub fn invalid(what: impl Into<String>, reason: impl fmt::Display) -> Self {
        CliError::InvalidValue {
            what: what.into(),
            reason: reason.to_string(),
        }
    }

    /// A [`Conflict`](CliError::Conflict) error.
    #[must_use]
    pub fn conflict(message: impl Into<String>) -> Self {
        CliError::Conflict(message.into())
    }

    /// A [`Usage`](CliError::Usage) error.
    #[must_use]
    pub fn usage(message: impl Into<String>) -> Self {
        CliError::Usage(message.into())
    }

    /// The process exit code for this error: always 2, the usage slot
    /// of the contract (0 clean, 1 findings, 2 usage).
    #[must_use]
    pub fn exit_code(&self) -> u8 {
        2
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::UnknownSubcommand(name) => write!(f, "unknown subcommand `{name}`"),
            CliError::UnknownFlag(flag) => write!(f, "unknown flag `{flag}`"),
            CliError::MissingValue(flag) => write!(f, "missing value for {flag}"),
            CliError::InvalidValue { what, reason } => write!(f, "bad {what}: {reason}"),
            CliError::Conflict(message) | CliError::Usage(message) => f.write_str(message),
        }
    }
}

impl std::error::Error for CliError {}

/// Parses `--scale N` and `--threads N` from an argument list
/// (excluding the program name).
///
/// # Errors
///
/// Returns a [`CliError`] for unknown flags or unparsable values.
///
/// # Examples
///
/// ```
/// use opd_experiments::cli::parse_args;
///
/// let opts = parse_args(["--scale", "2"].iter().map(|s| s.to_string()))?;
/// assert_eq!(opts.scale, 2);
/// # Ok::<(), opd_experiments::cli::CliError>(())
/// ```
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<CliOpts, CliError> {
    let mut opts = CliOpts::default();
    let mut iter = args.into_iter();
    while let Some(flag) = iter.next() {
        let mut value_for = |name: &str| iter.next().ok_or_else(|| CliError::missing_value(name));
        match flag.as_str() {
            "--scale" => {
                opts.scale = value_for("--scale")?
                    .parse()
                    .map_err(|e| CliError::invalid("--scale", e))?;
            }
            "--threads" => {
                opts.threads = value_for("--threads")?
                    .parse()
                    .map_err(|e| CliError::invalid("--threads", e))?;
            }
            other => return Err(CliError::unknown_flag(other)),
        }
    }
    Ok(opts)
}

/// Parses the process's own arguments, exiting with a usage message on
/// error — the entry point used by the experiment binaries.
#[must_use]
pub fn parse_env() -> CliOpts {
    match parse_args(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("{e} (usage: --scale N --threads N)");
            std::process::exit(e.exit_code().into());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CliOpts, CliError> {
        parse_args(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn defaults() {
        let opts = parse(&[]).unwrap();
        assert_eq!(opts.scale, 1);
        assert!(opts.threads >= 1);
    }

    #[test]
    fn both_flags() {
        let opts = parse(&["--scale", "3", "--threads", "2"]).unwrap();
        assert_eq!(
            opts,
            CliOpts {
                scale: 3,
                threads: 2
            }
        );
    }

    #[test]
    fn errors_are_typed_and_map_to_exit_2() {
        assert_eq!(parse(&["--scale"]), Err(CliError::missing_value("--scale")));
        assert!(matches!(
            parse(&["--scale", "x"]),
            Err(CliError::InvalidValue { .. })
        ));
        assert_eq!(parse(&["--wat"]), Err(CliError::unknown_flag("--wat")));
        let e = parse(&["--wat"]).unwrap_err();
        assert_eq!(e.exit_code(), 2);
        assert_eq!(e.to_string(), "unknown flag `--wat`");
        assert_eq!(
            CliError::invalid("--fuel", "not a number").to_string(),
            "bad --fuel: not a number"
        );
        assert_eq!(
            CliError::conflict("--resume requires --checkpoint PATH").exit_code(),
            2
        );
    }

    #[test]
    fn config_spec_parses_every_key() {
        let c = parse_config_spec(
            "cw=100,tw=50,skip=5,policy=adaptive,anchor=lnn,resize=move,model=pearson,delta=0.2",
        )
        .unwrap();
        assert_eq!(c.current_window(), 100);
        assert_eq!(c.trailing_window(), 50);
        assert_eq!(c.skip_factor(), 5);
        assert_eq!(c.tw_policy(), TwPolicy::Adaptive);
        assert_eq!(c.anchor(), AnchorPolicy::LeftmostNonNoisy);
        assert_eq!(c.resize(), ResizePolicy::Move);
        assert_eq!(c.model(), ModelPolicy::Pearson);
        assert_eq!(c.analyzer(), AnalyzerPolicy::Average { delta: 0.2 });
    }

    #[test]
    fn config_spec_defaults_and_errors() {
        let c = parse_config_spec("").unwrap();
        assert_eq!(c.current_window(), 500);
        let c = parse_config_spec("threshold=0.7").unwrap();
        assert_eq!(c.analyzer(), AnalyzerPolicy::Threshold(0.7));
        for bad in [
            "cw",
            "cw=zero",
            "policy=sometimes",
            "anchor=up",
            "resize=grow",
            "model=psychic",
            "volume=11",
            "cw=0",
        ] {
            assert!(parse_config_spec(bad).is_err(), "accepted {bad}");
        }
    }
}
