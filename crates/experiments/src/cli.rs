//! Tiny command-line parsing shared by the experiment binaries.

use core::fmt;

use crate::runner::default_threads;

/// Options every experiment binary accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CliOpts {
    /// Workload scale factor (`--scale N`, default 1).
    pub scale: u32,
    /// Worker threads (`--threads N`, default: available parallelism).
    pub threads: usize,
}

impl Default for CliOpts {
    fn default() -> Self {
        CliOpts {
            scale: 1,
            threads: default_threads(),
        }
    }
}

/// Error produced for malformed command lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (usage: --scale N --threads N)", self.0)
    }
}

impl std::error::Error for CliError {}

/// Parses `--scale N` and `--threads N` from an argument list
/// (excluding the program name).
///
/// # Errors
///
/// Returns a [`CliError`] for unknown flags or unparsable values.
///
/// # Examples
///
/// ```
/// use opd_experiments::cli::parse_args;
///
/// let opts = parse_args(["--scale", "2"].iter().map(|s| s.to_string()))?;
/// assert_eq!(opts.scale, 2);
/// # Ok::<(), opd_experiments::cli::CliError>(())
/// ```
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<CliOpts, CliError> {
    let mut opts = CliOpts::default();
    let mut iter = args.into_iter();
    while let Some(flag) = iter.next() {
        let mut value_for = |name: &str| {
            iter.next()
                .ok_or_else(|| CliError(format!("missing value for {name}")))
        };
        match flag.as_str() {
            "--scale" => {
                opts.scale = value_for("--scale")?
                    .parse()
                    .map_err(|e| CliError(format!("bad --scale: {e}")))?;
            }
            "--threads" => {
                opts.threads = value_for("--threads")?
                    .parse()
                    .map_err(|e| CliError(format!("bad --threads: {e}")))?;
            }
            other => return Err(CliError(format!("unknown flag `{other}`"))),
        }
    }
    Ok(opts)
}

/// Parses the process's own arguments, exiting with a usage message on
/// error — the entry point used by the experiment binaries.
#[must_use]
pub fn parse_env() -> CliOpts {
    match parse_args(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CliOpts, CliError> {
        parse_args(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn defaults() {
        let opts = parse(&[]).unwrap();
        assert_eq!(opts.scale, 1);
        assert!(opts.threads >= 1);
    }

    #[test]
    fn both_flags() {
        let opts = parse(&["--scale", "3", "--threads", "2"]).unwrap();
        assert_eq!(
            opts,
            CliOpts {
                scale: 3,
                threads: 2
            }
        );
    }

    #[test]
    fn errors() {
        assert!(parse(&["--scale"]).is_err());
        assert!(parse(&["--scale", "x"]).is_err());
        assert!(parse(&["--wat"]).is_err());
        assert!(!parse(&["--wat"]).unwrap_err().to_string().is_empty());
    }
}
