//! Figure 8: detecting the *beginning* of a phase with the anchoring
//! policy (Section 5).
//!
//! Detected phase-start boundaries are replaced by the anchor
//! positions before scoring, and the Constant and Adaptive policies
//! are compared per MPL.

use core::fmt;

use crate::exp::{avg, ExpOptions};
use crate::grid::{half_mpl_cw, policy_grid, TwKind, MPLS_FIG4};
use crate::report::{fmt_mpl, fmt_score, Table};
use crate::runner::{best_combined_anchored, prepare_all, sweep};

/// Anchored-boundary scores for one MPL value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig8Row {
    /// The minimum phase length.
    pub mpl: u64,
    /// Average best anchored score, Constant TW.
    pub constant: f64,
    /// Average best anchored score, Adaptive TW.
    pub adaptive: f64,
}

/// The regenerated Figure 8.
#[derive(Debug, Clone)]
pub struct Fig8Result {
    /// One row per MPL value.
    pub rows: Vec<Fig8Row>,
}

impl Fig8Result {
    /// `true` if the Adaptive TW wins at every MPL — the paper's
    /// Figure 8 finding.
    #[must_use]
    pub fn adaptive_wins_everywhere(&self) -> bool {
        self.rows.iter().all(|r| r.adaptive >= r.constant)
    }
}

/// Runs the Figure 8 experiment.
#[must_use]
pub fn run(opts: &ExpOptions) -> Fig8Result {
    let prepared = prepare_all(&opts.workloads, opts.scale, &MPLS_FIG4, opts.fuel);
    let rows = MPLS_FIG4
        .iter()
        .map(|&mpl| {
            let cw = half_mpl_cw(mpl);
            let mut scores = [0.0f64; 2];
            for (ki, kind) in [TwKind::Constant, TwKind::Adaptive].into_iter().enumerate() {
                scores[ki] = avg(prepared.iter().map(|p| {
                    let runs = sweep(p, &policy_grid(kind, cw), opts.threads);
                    best_combined_anchored(&runs, p.oracle(mpl))
                }));
            }
            Fig8Row {
                mpl,
                constant: scores[0],
                adaptive: scores[1],
            }
        })
        .collect();
    Fig8Result { rows }
}

impl fmt::Display for Fig8Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(
            "Figure 8: anchored phase-start boundaries (average best score)",
            &["MPL", "Constant TW", "Adaptive TW"],
        );
        for r in &self.rows {
            t.row(vec![
                fmt_mpl(r.mpl),
                fmt_score(r.constant),
                fmt_score(r.adaptive),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opd_microvm::workloads::Workload;

    #[test]
    fn small_run_shapes() {
        let opts = ExpOptions {
            workloads: vec![Workload::Parsegen],
            fuel: 25_000,
            threads: 4,
            ..ExpOptions::default()
        };
        let result = run(&opts);
        assert_eq!(result.rows.len(), 7);
        for r in &result.rows {
            assert!((0.0..=1.0).contains(&r.constant), "{r:?}");
            assert!((0.0..=1.0).contains(&r.adaptive), "{r:?}");
        }
        assert!(result.to_string().contains("Adaptive TW"));
    }
}

#[cfg(test)]
mod result_tests {
    use super::*;

    #[test]
    fn adaptive_wins_everywhere_is_per_row() {
        let winning = Fig8Result {
            rows: vec![
                Fig8Row {
                    mpl: 1_000,
                    constant: 0.5,
                    adaptive: 0.6,
                },
                Fig8Row {
                    mpl: 10_000,
                    constant: 0.7,
                    adaptive: 0.7,
                },
            ],
        };
        assert!(winning.adaptive_wins_everywhere());
        let losing = Fig8Result {
            rows: vec![Fig8Row {
                mpl: 1_000,
                constant: 0.8,
                adaptive: 0.6,
            }],
        };
        assert!(!losing.adaptive_wins_everywhere());
    }
}
