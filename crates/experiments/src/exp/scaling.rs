//! Scale-sensitivity study: how the large-MPL regime depends on trace
//! length.
//!
//! EXPERIMENTS.md records one deviation from the paper's Figure 4: on
//! our default ~0.3M-branch traces the fixed-interval policy overtakes
//! skip-factor-1 detectors at MPL ≥ 100K, where oracles hold only 1–2
//! giant phases and warm-up covers a large trace fraction. The paper's
//! traces are 10–100× longer. This experiment re-runs the comparison
//! at growing workload scales to show the gap closing — i.e. that the
//! deviation is a trace-length artifact, not a framework property.

use core::fmt;

use crate::exp::{avg, ExpOptions};
use crate::grid::{half_mpl_cw, policy_grid, TwKind};
use crate::report::{fmt_mpl, fmt_score, Table};
use crate::runner::{best_combined, prepare_all, sweep};

/// The MPL values of the large-MPL regime under study.
pub const SCALING_MPLS: [u64; 2] = [100_000, 200_000];

/// One (scale, MPL) cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingRow {
    /// Workload scale factor.
    pub scale: u32,
    /// Average trace length at this scale.
    pub avg_trace_len: u64,
    /// The minimum phase length.
    pub mpl: u64,
    /// Average best score, Fixed Interval.
    pub fixed_interval: f64,
    /// Average best score, Constant TW (skip 1).
    pub constant: f64,
    /// Advantage of skip-1 over fixed interval (positive = skip-1
    /// ahead, the paper's regime).
    pub skip_one_advantage: f64,
}

/// The scaling-study result.
#[derive(Debug, Clone)]
pub struct ScalingResult {
    /// Rows, scale-major then MPL.
    pub rows: Vec<ScalingRow>,
}

impl ScalingResult {
    /// `true` if skip-1's advantage at the given MPL improves from the
    /// smallest to the largest scale measured.
    #[must_use]
    pub fn gap_closes_with_scale(&self, mpl: u64) -> bool {
        let series: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.mpl == mpl)
            .map(|r| r.skip_one_advantage)
            .collect();
        match (series.first(), series.last()) {
            (Some(first), Some(last)) => last > first,
            _ => false,
        }
    }
}

/// Runs the scaling study over scales 1, 2, and 3 of `opts.scale`.
#[must_use]
pub fn run(opts: &ExpOptions) -> ScalingResult {
    let mut rows = Vec::new();
    for step in 1..=3u32 {
        let scale = opts.scale.saturating_mul(step).max(1);
        let prepared = prepare_all(&opts.workloads, scale, &SCALING_MPLS, opts.fuel);
        let avg_trace_len = if prepared.is_empty() {
            0
        } else {
            prepared.iter().map(|p| p.total_elements()).sum::<u64>() / prepared.len() as u64
        };
        for &mpl in &SCALING_MPLS {
            let cw = half_mpl_cw(mpl);
            let fixed = avg(prepared.iter().map(|p| {
                best_combined(
                    &sweep(p, &policy_grid(TwKind::FixedInterval, cw), opts.threads),
                    p.oracle(mpl),
                )
            }));
            let constant = avg(prepared.iter().map(|p| {
                best_combined(
                    &sweep(p, &policy_grid(TwKind::Constant, cw), opts.threads),
                    p.oracle(mpl),
                )
            }));
            rows.push(ScalingRow {
                scale,
                avg_trace_len,
                mpl,
                fixed_interval: fixed,
                constant,
                skip_one_advantage: constant - fixed,
            });
        }
    }
    ScalingResult { rows }
}

impl fmt::Display for ScalingResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(
            "Scale sensitivity of the large-MPL regime (skip-1 vs fixed interval)",
            &[
                "Scale",
                "Avg trace",
                "MPL",
                "Fixed Interval",
                "Constant (skip 1)",
                "Skip-1 advantage",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.scale.to_string(),
                r.avg_trace_len.to_string(),
                fmt_mpl(r.mpl),
                fmt_score(r.fixed_interval),
                fmt_score(r.constant),
                format!("{:+.3}", r.skip_one_advantage),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opd_microvm::workloads::Workload;

    #[test]
    fn small_run_shapes() {
        let opts = ExpOptions {
            workloads: vec![Workload::Lexgen],
            fuel: 30_000,
            threads: 2,
            ..ExpOptions::default()
        };
        let result = run(&opts);
        // 3 scales x 2 MPLs.
        assert_eq!(result.rows.len(), 6);
        for r in &result.rows {
            assert!((0.0..=1.0).contains(&r.fixed_interval), "{r:?}");
            assert!((0.0..=1.0).contains(&r.constant), "{r:?}");
        }
        // The fuel cap makes scales equal here; just exercise the API.
        let _ = result.gap_closes_with_scale(100_000);
        assert!(result.to_string().contains("Skip-1 advantage"));
    }
}

#[cfg(test)]
mod result_tests {
    use super::*;

    #[test]
    fn gap_closure_compares_first_and_last_scale() {
        let mk = |scale: u32, adv: f64| ScalingRow {
            scale,
            avg_trace_len: 1_000,
            mpl: 100_000,
            fixed_interval: 0.5,
            constant: 0.5 + adv,
            skip_one_advantage: adv,
        };
        let closing = ScalingResult {
            rows: vec![mk(1, -0.1), mk(2, 0.0), mk(3, 0.05)],
        };
        assert!(closing.gap_closes_with_scale(100_000));
        assert!(!closing.gap_closes_with_scale(200_000)); // no rows
        let opening = ScalingResult {
            rows: vec![mk(1, 0.1), mk(3, -0.2)],
        };
        assert!(!opening.gap_closes_with_scale(100_000));
    }
}
