//! Sampling study: profile-collection overhead versus detection
//! accuracy.
//!
//! Profile collection is the first overhead source the paper's
//! Section 7 lists. Sampling every k-th branch cuts that overhead by
//! k×; this experiment measures what it costs in accuracy. The
//! detector runs on the subsampled stream with its window scaled down
//! by the same stride (so the windows still span ½·MPL *original*
//! elements), its detected intervals are mapped back to full-trace
//! offsets, and the usual score is computed against the unsampled
//! oracle.

use core::fmt;

use opd_core::{DetectorConfig, InternedTrace, PhaseDetector};
use opd_scoring::score_intervals;
use opd_trace::{intervals_of, subsample, upsample_intervals};

use crate::exp::{avg, ExpOptions};
use crate::grid::{analyzer_grid, half_mpl_cw, TwKind};
use crate::report::{fmt_score, Table};
use crate::runner::prepare_all;

/// The sampling strides studied.
pub const STRIDES: [usize; 5] = [1, 2, 4, 8, 16];

/// The MPL the study is run at.
pub const SAMPLING_MPL: u64 = 10_000;

/// Accuracy at one sampling stride.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplingRow {
    /// Keep every `stride`-th profile element.
    pub stride: usize,
    /// Average best score across workloads (Constant TW grid).
    pub score: f64,
    /// Score retained relative to the unsampled run.
    pub retention: f64,
}

/// The sampling-study result.
#[derive(Debug, Clone)]
pub struct SamplingResult {
    /// One row per stride, ascending.
    pub rows: Vec<SamplingRow>,
}

impl SamplingResult {
    /// The largest stride retaining at least `fraction` of the
    /// unsampled score.
    #[must_use]
    pub fn max_stride_retaining(&self, fraction: f64) -> usize {
        self.rows
            .iter()
            .filter(|r| r.retention >= fraction)
            .map(|r| r.stride)
            .max()
            .unwrap_or(1)
    }
}

/// Runs the sampling study.
#[must_use]
pub fn run(opts: &ExpOptions) -> SamplingResult {
    let prepared = prepare_all(&opts.workloads, opts.scale, &[SAMPLING_MPL], opts.fuel);
    let cw_full = half_mpl_cw(SAMPLING_MPL);

    let mut rows: Vec<SamplingRow> = STRIDES
        .iter()
        .map(|&stride| {
            let score = avg(prepared.iter().map(|p| {
                let oracle = p.oracle(SAMPLING_MPL);
                let total = p.total_elements();
                let sampled = subsample(p.branches(), stride);
                let interned = InternedTrace::from(&sampled);
                // Window sized in *sampled* elements so it still spans
                // ~½·MPL original elements.
                let cw = (cw_full / stride).max(1);
                let configs: Vec<DetectorConfig> =
                    analyzer_grid(TwKind::Constant, cw, opd_core::ModelPolicy::UnweightedSet);
                configs
                    .into_iter()
                    .map(|config| {
                        let mut d = PhaseDetector::new(config);
                        let states = d.run_interned(&interned);
                        let detected = upsample_intervals(&intervals_of(&states), stride, total);
                        score_intervals(&detected, oracle).combined()
                    })
                    .fold(0.0f64, f64::max)
            }));
            SamplingRow {
                stride,
                score,
                retention: 0.0,
            }
        })
        .collect();

    let full = rows.first().map_or(0.0, |r| r.score);
    for r in &mut rows {
        r.retention = if full > 0.0 { r.score / full } else { 0.0 };
    }
    SamplingResult { rows }
}

impl fmt::Display for SamplingResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(
            "Sampling study: accuracy vs profile-collection stride (MPL 10K)",
            &["Stride", "Collection cost", "Avg best score", "Retention"],
        );
        for r in &self.rows {
            t.row(vec![
                format!("1/{}", r.stride),
                format!("{:.1}%", 100.0 / r.stride as f64),
                fmt_score(r.score),
                format!("{:.0}%", 100.0 * r.retention),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opd_microvm::workloads::Workload;

    #[test]
    fn small_run_shapes() {
        let opts = ExpOptions {
            workloads: vec![Workload::Querydb],
            fuel: 60_000,
            threads: 1,
            ..ExpOptions::default()
        };
        let result = run(&opts);
        assert_eq!(result.rows.len(), 5);
        assert_eq!(result.rows[0].stride, 1);
        assert!((result.rows[0].retention - 1.0).abs() < 1e-12);
        for r in &result.rows {
            assert!((0.0..=1.0).contains(&r.score), "{r:?}");
        }
        assert!(result.max_stride_retaining(0.0) >= 1);
        assert!(result.to_string().contains("Retention"));
    }
}
