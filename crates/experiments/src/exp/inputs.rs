//! Input-generality study: the same framework over different profile
//! kinds.
//!
//! Section 2 of the paper: "Our abstract representation of an input
//! allows a wide variety of inputs, such as the methods invoked,
//! basic blocks, branches, addresses loaded, or instructions executed
//! to be considered. This work considers dynamic branch traces." This
//! experiment runs the identical detector over three input streams —
//! the paper's taken-bit branch elements, taken-bit-stripped *sites*
//! (a basic-block-like profile), and *method invocations* (the
//! method-level profiles of Georges et al.) — and scores all three
//! against the same branch-offset oracle.

use core::fmt;

use opd_core::{InternedTrace, ModelPolicy, PhaseDetector};
use opd_scoring::score_intervals;
use opd_trace::{
    intervals_of, method_profile, method_profile_offsets, site_profile, PhaseInterval,
};

use crate::exp::{avg, ExpOptions};
use crate::grid::{analyzer_grid, half_mpl_cw, TwKind};
use crate::report::{fmt_score, Table};
use crate::runner::prepare_all;

/// The MPL the study is run at.
pub const INPUTS_MPL: u64 = 10_000;

/// Scores for one workload across input kinds.
#[derive(Debug, Clone, PartialEq)]
pub struct InputsRow {
    /// Workload name.
    pub workload: &'static str,
    /// Best score on the paper's branch elements (site + taken bit).
    pub branches: f64,
    /// Best score on taken-bit-stripped sites.
    pub sites: f64,
    /// Best score on method-invocation elements, or `None` when the
    /// workload makes too few invocations for windows to fill.
    pub methods: Option<f64>,
}

/// The input-generality result.
#[derive(Debug, Clone)]
pub struct InputsResult {
    /// One row per workload.
    pub rows: Vec<InputsRow>,
}

impl InputsResult {
    /// Average score per input kind (methods averaged over the
    /// workloads where they apply).
    #[must_use]
    pub fn averages(&self) -> (f64, f64, f64) {
        (
            avg(self.rows.iter().map(|r| r.branches)),
            avg(self.rows.iter().map(|r| r.sites)),
            avg(self.rows.iter().filter_map(|r| r.methods)),
        )
    }
}

/// Best combined score of the unweighted Constant-TW analyzer grid
/// over an arbitrary element stream, with detected intervals mapped
/// to branch offsets through `to_branch_offset`.
fn best_on_stream(
    interned: &InternedTrace,
    cw: usize,
    oracle: &opd_baseline::BaselineSolution,
    to_branch_offset: impl Fn(u64) -> u64,
) -> f64 {
    analyzer_grid(TwKind::Constant, cw, ModelPolicy::UnweightedSet)
        .into_iter()
        .map(|config| {
            let mut d = PhaseDetector::new(config);
            let states = d.run_interned(interned);
            let mapped: Vec<PhaseInterval> = intervals_of(&states)
                .into_iter()
                .filter_map(|p| {
                    let start = to_branch_offset(p.start());
                    let end = to_branch_offset(p.end());
                    (start < end).then(|| PhaseInterval::new(start, end))
                })
                .collect();
            score_intervals(&mapped, oracle).combined()
        })
        .fold(0.0f64, f64::max)
}

/// Runs the input-generality study.
#[must_use]
pub fn run(opts: &ExpOptions) -> InputsResult {
    let prepared = prepare_all(&opts.workloads, opts.scale, &[INPUTS_MPL], opts.fuel);
    let cw = half_mpl_cw(INPUTS_MPL);

    let rows = prepared
        .iter()
        .map(|p| {
            let oracle = p.oracle(INPUTS_MPL);
            let total = p.total_elements();

            let branches = best_on_stream(p.interned(), cw, oracle, |o| o);

            // Site stream: same positions, coarser element identity.
            let site_trace = {
                let mut t = opd_trace::ExecutionTrace::new();
                for e in p.branches() {
                    opd_trace::TraceSink::record_branch(&mut t, *e);
                }
                site_profile(&t)
            };
            let sites = best_on_stream(&InternedTrace::from(&site_trace), cw, oracle, |o| o);

            // Method stream: element k sits at the k-th invocation's
            // branch offset; windows sized proportionally.
            let trace = p.workload().trace(opts.scale); // deterministic re-run for events
            let methods_stream = method_profile(&trace);
            let offsets = method_profile_offsets(&trace);
            let methods = if methods_stream.len() >= 64 {
                let ratio = methods_stream.len() as f64 / total.max(1) as f64;
                let cw_m = ((cw as f64 * ratio).ceil() as usize).max(4);
                // Clamp to the prepared trace length: under a fuel cap
                // the deterministic re-run is longer than the prepared
                // trace, so trailing invocations map to its end.
                let map = |o: u64| -> u64 {
                    offsets.get(o as usize).copied().unwrap_or(total).min(total)
                };
                Some(best_on_stream(
                    &InternedTrace::from(&methods_stream),
                    cw_m,
                    oracle,
                    map,
                ))
            } else {
                None
            };

            InputsRow {
                workload: p.workload().name(),
                branches,
                sites,
                methods,
            }
        })
        .collect();
    InputsResult { rows }
}

impl fmt::Display for InputsResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(
            "Input generality: best score per profile kind (MPL 10K, Constant TW, unweighted)",
            &["Benchmark", "Branches", "Sites", "Methods"],
        );
        for r in &self.rows {
            t.row(vec![
                r.workload.to_owned(),
                fmt_score(r.branches),
                fmt_score(r.sites),
                r.methods.map_or("n/a".to_owned(), fmt_score),
            ]);
        }
        let (b, s, m) = self.averages();
        t.row(vec![
            "Average".to_owned(),
            fmt_score(b),
            fmt_score(s),
            fmt_score(m),
        ]);
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opd_microvm::workloads::Workload;

    #[test]
    fn small_run_shapes() {
        let opts = ExpOptions {
            workloads: vec![Workload::Tracer],
            fuel: 60_000,
            threads: 1,
            ..ExpOptions::default()
        };
        let result = run(&opts);
        assert_eq!(result.rows.len(), 1);
        let r = &result.rows[0];
        assert!((0.0..=1.0).contains(&r.branches), "{r:?}");
        assert!((0.0..=1.0).contains(&r.sites), "{r:?}");
        // Tracer makes tens of thousands of invocations even truncated
        // ... but the truncated run must simply not panic either way.
        if let Some(m) = r.methods {
            assert!((0.0..=1.0).contains(&m), "{r:?}");
        }
        let text = result.to_string();
        assert!(text.contains("Methods"), "{text}");
    }
}
