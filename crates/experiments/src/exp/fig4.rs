//! Figure 4: skip factor and Fixed Interval versus Constant/Adaptive
//! trailing windows (Section 4.2).
//!
//! For every MPL, the three strategies are compared with CW = ½·MPL,
//! taking the average over benchmarks of the best score across all
//! model/analyzer combinations. Fixed Interval uses skip factor = CW
//! size; the other two use skip factor 1.

use core::fmt;

use crate::exp::{avg, ExpOptions};
use crate::grid::{half_mpl_cw, policy_grid, TwKind, MPLS_FIG4};
use crate::report::{fmt_mpl, fmt_score, Table};
use crate::runner::{best_combined, prepare_all, sweep_many};

/// Scores for one MPL value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig4Row {
    /// The minimum phase length.
    pub mpl: u64,
    /// Average best score, Fixed Interval (skip = CW size).
    pub fixed_interval: f64,
    /// Average best score, Constant TW (skip 1).
    pub constant: f64,
    /// Average best score, Adaptive TW (skip 1).
    pub adaptive: f64,
}

/// The regenerated Figure 4 series.
#[derive(Debug, Clone)]
pub struct Fig4Result {
    /// One row per MPL value.
    pub rows: Vec<Fig4Row>,
}

impl Fig4Result {
    /// `true` if, averaged over MPL values, skip factor 1 beats the
    /// fixed-interval policy — the paper's headline Figure 4 finding.
    #[must_use]
    pub fn skip_one_wins(&self) -> bool {
        let fixed = avg(self.rows.iter().map(|r| r.fixed_interval));
        let constant = avg(self.rows.iter().map(|r| r.constant));
        let adaptive = avg(self.rows.iter().map(|r| r.adaptive));
        constant > fixed && adaptive > fixed
    }
}

/// Runs the Figure 4 experiment.
#[must_use]
pub fn run(opts: &ExpOptions) -> Fig4Result {
    let prepared = prepare_all(&opts.workloads, opts.scale, &MPLS_FIG4, opts.fuel);
    let rows = MPLS_FIG4
        .iter()
        .map(|&mpl| {
            let cw = half_mpl_cw(mpl);
            let mut scores = [Vec::new(), Vec::new(), Vec::new()];
            for (ki, &kind) in TwKind::ALL.iter().enumerate() {
                // All workloads at once: (workload × shape-group)
                // units share the thread pool.
                let per_workload = sweep_many(&prepared, &policy_grid(kind, cw), opts.threads);
                for (p, runs) in prepared.iter().zip(&per_workload) {
                    scores[ki].push(best_combined(runs, p.oracle(mpl)));
                }
            }
            Fig4Row {
                mpl,
                adaptive: avg(scores[0].iter().copied()),
                constant: avg(scores[1].iter().copied()),
                fixed_interval: avg(scores[2].iter().copied()),
            }
        })
        .collect();
    Fig4Result { rows }
}

impl fmt::Display for Fig4Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(
            "Figure 4: average best score vs MPL (CW = 1/2 MPL)",
            &[
                "MPL",
                "Fixed Interval",
                "Constant TW (skip 1)",
                "Adaptive TW (skip 1)",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                fmt_mpl(r.mpl),
                fmt_score(r.fixed_interval),
                fmt_score(r.constant),
                fmt_score(r.adaptive),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opd_microvm::workloads::Workload;

    #[test]
    fn small_run_shapes() {
        let opts = ExpOptions {
            workloads: vec![Workload::Audiodec],
            fuel: 30_000,
            threads: 4,
            ..ExpOptions::default()
        };
        let result = run(&opts);
        assert_eq!(result.rows.len(), 7);
        for r in &result.rows {
            for v in [r.fixed_interval, r.constant, r.adaptive] {
                assert!((0.0..=1.0).contains(&v), "{r:?}");
            }
        }
        assert!(result.to_string().contains("200K"));
    }
}

#[cfg(test)]
mod result_tests {
    use super::*;

    fn row(mpl: u64, fixed: f64, constant: f64, adaptive: f64) -> Fig4Row {
        Fig4Row {
            mpl,
            fixed_interval: fixed,
            constant,
            adaptive,
        }
    }

    #[test]
    fn skip_one_wins_judges_averages() {
        let good = Fig4Result {
            rows: vec![row(1_000, 0.4, 0.7, 0.75), row(10_000, 0.5, 0.6, 0.65)],
        };
        assert!(good.skip_one_wins());
        let bad = Fig4Result {
            rows: vec![row(1_000, 0.9, 0.5, 0.5)],
        };
        assert!(!bad.skip_one_wins());
    }
}
