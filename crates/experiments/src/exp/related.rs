//! Extension study: related-work detectors against the framework.
//!
//! Section 6 of the paper argues that the detectors of Dhodapkar &
//! Smith (fixed interval, unweighted, threshold 0.5), Lu et al. (PC
//! sample-range test), and Das et al. (Pearson coefficient) are all
//! (near-)instantiations of the framework. This experiment runs each
//! against the same oracles as the paper's own detectors:
//!
//! * `framework best` — best score across the paper's Constant/
//!   Adaptive grids at CW = ½·MPL;
//! * `dhodapkar-smith` — fixed interval, CW = TW = skip = 100K-scaled
//!   window, unweighted model, threshold 0.5 (their published
//!   parameters, window scaled to MPL);
//! * `pearson` — the framework with the Pearson model (Das et al.),
//!   best across analyzers;
//! * `pc-range` — Lu et al.'s detector with a window of ½·MPL.

use core::fmt;

use opd_core::{run_online, AnalyzerPolicy, DetectorConfig, ModelPolicy, PcRangeDetector};
use opd_scoring::score_intervals;
use opd_trace::intervals_of;

use crate::exp::{avg, ExpOptions};
use crate::grid::{config_for, half_mpl_cw, paper_analyzers, policy_grid, TwKind, MPLS_MAIN};
use crate::report::{fmt_mpl, fmt_score, Table};
use crate::runner::{best_combined, prepare_all, sweep, PreparedWorkload};

/// Scores for one MPL value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelatedRow {
    /// The minimum phase length.
    pub mpl: u64,
    /// Best framework score (Constant + Adaptive grids).
    pub framework: f64,
    /// Dhodapkar & Smith's published configuration.
    pub dhodapkar_smith: f64,
    /// Framework with the Pearson model (Das et al.), best analyzer.
    pub pearson: f64,
    /// Lu et al.'s PC-range detector.
    pub pc_range: f64,
}

/// The extension-study result.
#[derive(Debug, Clone)]
pub struct RelatedResult {
    /// One row per MPL value.
    pub rows: Vec<RelatedRow>,
}

impl RelatedResult {
    /// `true` if the framework's best detector beats every
    /// related-work detector at every MPL.
    #[must_use]
    pub fn framework_wins(&self) -> bool {
        self.rows.iter().all(|r| {
            r.framework >= r.dhodapkar_smith
                && r.framework >= r.pearson
                && r.framework >= r.pc_range
        })
    }
}

fn pc_range_score(p: &PreparedWorkload, mpl: u64, window: usize) -> f64 {
    // The PC-range detector consumes raw element values (its "sampled
    // PCs"), not interned ids.
    let mut det = PcRangeDetector::new(window.max(1), 2.0).expect("valid parameters");
    let states = run_online(&mut det, p.branches());
    score_intervals(&intervals_of(&states), p.oracle(mpl)).combined()
}

/// Runs the extension study.
#[must_use]
pub fn run(opts: &ExpOptions) -> RelatedResult {
    let prepared = prepare_all(&opts.workloads, opts.scale, &MPLS_MAIN, opts.fuel);
    let rows = MPLS_MAIN
        .iter()
        .map(|&mpl| {
            let cw = half_mpl_cw(mpl);
            let framework = avg(prepared.iter().map(|p| {
                let mut runs = sweep(p, &policy_grid(TwKind::Constant, cw), opts.threads);
                runs.extend(sweep(p, &policy_grid(TwKind::Adaptive, cw), opts.threads));
                best_combined(&runs, p.oracle(mpl))
            }));
            let ds_config = DetectorConfig::fixed_interval(
                cw,
                ModelPolicy::UnweightedSet,
                AnalyzerPolicy::Threshold(0.5),
            )
            .expect("valid config");
            let dhodapkar_smith = avg(prepared.iter().map(|p| {
                let runs = sweep(p, &[ds_config], 1);
                best_combined(&runs, p.oracle(mpl))
            }));
            let pearson = avg(prepared.iter().map(|p| {
                let configs: Vec<DetectorConfig> = paper_analyzers()
                    .into_iter()
                    .map(|a| {
                        config_for(TwKind::Constant, cw, ModelPolicy::Pearson, a)
                            .expect("valid config")
                    })
                    .collect();
                let runs = sweep(p, &configs, opts.threads);
                best_combined(&runs, p.oracle(mpl))
            }));
            let pc_range = avg(prepared.iter().map(|p| pc_range_score(p, mpl, cw)));
            RelatedRow {
                mpl,
                framework,
                dhodapkar_smith,
                pearson,
                pc_range,
            }
        })
        .collect();
    RelatedResult { rows }
}

impl fmt::Display for RelatedResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(
            "Extension study: the framework vs related-work detectors (average score)",
            &[
                "MPL",
                "Framework best",
                "Dhodapkar-Smith",
                "Pearson (Das)",
                "PC-range (Lu)",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                fmt_mpl(r.mpl),
                fmt_score(r.framework),
                fmt_score(r.dhodapkar_smith),
                fmt_score(r.pearson),
                fmt_score(r.pc_range),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opd_microvm::workloads::Workload;

    #[test]
    fn small_run_shapes() {
        let opts = ExpOptions {
            workloads: vec![Workload::Lexgen],
            fuel: 30_000,
            threads: 2,
            ..ExpOptions::default()
        };
        let result = run(&opts);
        assert_eq!(result.rows.len(), 4);
        for r in &result.rows {
            for v in [r.framework, r.dhodapkar_smith, r.pearson, r.pc_range] {
                assert!((0.0..=1.0).contains(&v), "{r:?}");
            }
            // The full grid subsumes the Dhodapkar-Smith point, so the
            // framework's best can never be worse than... their skip
            // factor differs (fixed interval), so only sanity-check
            // both are valid scores here; the ordering claim is
            // checked on full traces in the integration tests.
        }
        assert!(result.to_string().contains("PC-range"));
    }
}

#[cfg(test)]
mod result_tests {
    use super::*;

    #[test]
    fn framework_wins_requires_every_row() {
        let mk = |fw: f64| RelatedRow {
            mpl: 1_000,
            framework: fw,
            dhodapkar_smith: 0.5,
            pearson: 0.5,
            pc_range: 0.4,
        };
        assert!(RelatedResult {
            rows: vec![mk(0.6), mk(0.9)]
        }
        .framework_wins());
        assert!(!RelatedResult {
            rows: vec![mk(0.6), mk(0.45)]
        }
        .framework_wins());
    }
}
