//! Table 2: the impact of the current-window size relative to the MPL
//! (Section 4.2).
//!
//! For every benchmark, trailing-window strategy, and CW size, the
//! best score across all model/analyzer combinations is extracted;
//! part (a) reports the average percent improvement of choosing a CW
//! smaller than (or equal to) the MPL over choosing one larger than
//! the MPL, and part (b) the average best scores for the
//! smaller/equal/half-MPL categories.

use core::fmt;

use crate::exp::{avg, pct_improvement, ExpOptions};
use crate::grid::{policy_grid, TwKind, CW_SIZES, MPLS_TABLE1};
use crate::report::{fmt_pct, fmt_score, Table};
use crate::runner::{best_combined, prepare_all, sweep_many};

/// Improvements for one benchmark under one TW strategy (part (a)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImprovementCell {
    /// Avg % improvement of best(CW < MPL) over best(CW > MPL).
    pub smaller: f64,
    /// Avg % improvement of best(CW = MPL) over best(CW > MPL).
    pub equal: f64,
}

/// One benchmark row of Table 2(a): improvements per strategy.
#[derive(Debug, Clone)]
pub struct BenchImprovements {
    /// Workload name.
    pub name: &'static str,
    /// One cell per [`TwKind`], in `TwKind::ALL` order.
    pub per_kind: Vec<ImprovementCell>,
}

/// One strategy row of Table 2(b): average best scores by CW category.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CategoryScores {
    /// The trailing-window strategy.
    pub kind: TwKind,
    /// Average best score with CW smaller than the MPL.
    pub smaller: f64,
    /// Average best score with CW equal to the MPL.
    pub equal: f64,
    /// Average best score with CW at most half the MPL.
    pub half_mpl: f64,
}

/// The regenerated Table 2.
#[derive(Debug, Clone)]
pub struct Table2Result {
    /// Part (a): per-benchmark improvements.
    pub improvements: Vec<BenchImprovements>,
    /// Part (a) bottom row: averages across benchmarks.
    pub average: Vec<ImprovementCell>,
    /// Part (b): category scores per strategy.
    pub categories: Vec<CategoryScores>,
}

/// Runs the Table 2 experiment.
///
/// # Panics
///
/// Panics if `opts.workloads` is empty.
#[must_use]
pub fn run(opts: &ExpOptions) -> Table2Result {
    assert!(!opts.workloads.is_empty(), "need at least one workload");
    let prepared = prepare_all(&opts.workloads, opts.scale, &MPLS_TABLE1, opts.fuel);

    // best[workload][kind][cw_idx][mpl_idx] = best combined score.
    // Each grid is swept over every workload at once, so the engine
    // distributes (workload × shape-group) units across the threads.
    let mut best = vec![[[[0.0f64; MPLS_TABLE1.len()]; CW_SIZES.len()]; 3]; prepared.len()];
    for (ki, &kind) in TwKind::ALL.iter().enumerate() {
        for (ci, &cw) in CW_SIZES.iter().enumerate() {
            let per_workload = sweep_many(&prepared, &policy_grid(kind, cw), opts.threads);
            for (wi, (p, runs)) in prepared.iter().zip(&per_workload).enumerate() {
                for (mi, &mpl) in MPLS_TABLE1.iter().enumerate() {
                    best[wi][ki][ci][mi] = best_combined(runs, p.oracle(mpl));
                }
            }
        }
    }

    // Part (a): improvements of smaller/equal over larger, averaged
    // over the MPL values that have CW sizes on both sides.
    let improvements: Vec<BenchImprovements> = prepared
        .iter()
        .enumerate()
        .map(|(wi, p)| BenchImprovements {
            name: p.workload().name(),
            per_kind: (0..TwKind::ALL.len())
                .map(|ki| improvement_cell(&best[wi][ki]))
                .collect(),
        })
        .collect();
    let average: Vec<ImprovementCell> = (0..TwKind::ALL.len())
        .map(|ki| ImprovementCell {
            smaller: avg(improvements.iter().map(|b| b.per_kind[ki].smaller)),
            equal: avg(improvements.iter().map(|b| b.per_kind[ki].equal)),
        })
        .collect();

    // Part (b): average of best scores per CW category, across
    // benchmarks and MPL values.
    let categories = TwKind::ALL
        .iter()
        .enumerate()
        .map(|(ki, &kind)| {
            let mut smaller = Vec::new();
            let mut equal = Vec::new();
            let mut half = Vec::new();
            for wbest in &best {
                for (mi, &mpl) in MPLS_TABLE1.iter().enumerate() {
                    if let Some(v) = category_best(&wbest[ki], mi, |cw| (cw as u64) < mpl) {
                        smaller.push(v);
                    }
                    if let Some(v) = category_best(&wbest[ki], mi, |cw| cw as u64 == mpl) {
                        equal.push(v);
                    }
                    if let Some(v) = category_best(&wbest[ki], mi, |cw| (cw as u64) <= mpl / 2) {
                        half.push(v);
                    }
                }
            }
            CategoryScores {
                kind,
                smaller: avg(smaller),
                equal: avg(equal),
                half_mpl: avg(half),
            }
        })
        .collect();

    Table2Result {
        improvements,
        average,
        categories,
    }
}

/// Best score among CW sizes selected by `pred`, for one MPL column.
fn category_best(
    per_cw: &[[f64; MPLS_TABLE1.len()]; CW_SIZES.len()],
    mpl_idx: usize,
    pred: impl Fn(usize) -> bool,
) -> Option<f64> {
    CW_SIZES
        .iter()
        .enumerate()
        .filter(|&(_, &cw)| pred(cw))
        .map(|(ci, _)| per_cw[ci][mpl_idx])
        .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
}

/// Improvements averaged over the MPL values that have CW sizes both
/// above and below them.
fn improvement_cell(per_cw: &[[f64; MPLS_TABLE1.len()]; CW_SIZES.len()]) -> ImprovementCell {
    let mut smaller = Vec::new();
    let mut equal = Vec::new();
    for (mi, &mpl) in MPLS_TABLE1.iter().enumerate() {
        let larger = category_best(per_cw, mi, |cw| (cw as u64) > mpl);
        let Some(larger) = larger else { continue };
        if let Some(s) = category_best(per_cw, mi, |cw| (cw as u64) < mpl) {
            smaller.push(pct_improvement(s, larger));
        }
        if let Some(e) = category_best(per_cw, mi, |cw| cw as u64 == mpl) {
            equal.push(pct_improvement(e, larger));
        }
    }
    ImprovementCell {
        smaller: avg(smaller),
        equal: avg(equal),
    }
}

impl fmt::Display for Table2Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut a = Table::new(
            "Table 2(a): % improvement in best score, CW smaller/equal vs larger than MPL",
            &[
                "Benchmark",
                "Adaptive smaller",
                "Adaptive equal",
                "Constant smaller",
                "Constant equal",
                "FixedInt smaller",
                "FixedInt equal",
            ],
        );
        for r in &self.improvements {
            let mut cells = vec![r.name.to_owned()];
            for c in &r.per_kind {
                cells.push(fmt_pct(c.smaller));
                cells.push(fmt_pct(c.equal));
            }
            a.row(cells);
        }
        let mut cells = vec!["Average".to_owned()];
        for c in &self.average {
            cells.push(fmt_pct(c.smaller));
            cells.push(fmt_pct(c.equal));
        }
        a.row(cells);
        writeln!(f, "{a}")?;

        let mut b = Table::new(
            "Table 2(b): average of best scores by CW category",
            &["Policy", "Smaller", "Equal", "1/2 MPL"],
        );
        for c in &self.categories {
            b.row(vec![
                c.kind.label().to_owned(),
                fmt_score(c.smaller),
                fmt_score(c.equal),
                fmt_score(c.half_mpl),
            ]);
        }
        write!(f, "{b}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opd_microvm::workloads::Workload;

    #[test]
    fn small_run_has_expected_shape() {
        let opts = ExpOptions {
            workloads: vec![Workload::Lexgen],
            fuel: 40_000,
            threads: 4,
            ..ExpOptions::default()
        };
        let result = run(&opts);
        assert_eq!(result.improvements.len(), 1);
        assert_eq!(result.improvements[0].per_kind.len(), 3);
        assert_eq!(result.categories.len(), 3);
        for c in &result.categories {
            for v in [c.smaller, c.equal, c.half_mpl] {
                assert!((0.0..=1.0).contains(&v), "{v}");
            }
        }
        let text = result.to_string();
        assert!(text.contains("Table 2(a)"), "{text}");
        assert!(text.contains("Average"), "{text}");
    }

    #[test]
    fn category_best_respects_predicate() {
        let mut per_cw = [[0.0; MPLS_TABLE1.len()]; CW_SIZES.len()];
        per_cw[0][0] = 0.3; // cw=500
        per_cw[2][0] = 0.9; // cw=5000
        let best_small = category_best(&per_cw, 0, |cw| cw < 1_000).unwrap();
        assert_eq!(best_small, 0.3);
        let best_all = category_best(&per_cw, 0, |_| true).unwrap();
        assert_eq!(best_all, 0.9);
        assert!(category_best(&per_cw, 0, |_| false).is_none());
    }
}
