//! Phase-aware optimization study: how detector accuracy translates
//! into client benefit (the paper's Section 7 future work #3).
//!
//! Three clients with different economics each derive their MPL from
//! their cost model ([`opd_client::recommended_mpl`]); for every
//! workload we compare the net benefit of optimizing
//!
//! * the **oracle**'s phases (the offline upper bound),
//! * the phases of the best framework detector (best accuracy score
//!   among the Constant + Adaptive grids at CW = ½·MPL),
//! * the phases of the prior-art fixed-interval detector.

use core::fmt;

use opd_client::{recommended_mpl, simulate_intervals, CostModel};
use opd_scoring::score_intervals;

use crate::exp::{avg, ExpOptions};
use crate::grid::{half_mpl_cw, policy_grid, TwKind};
use crate::report::{fmt_pct, Table};
use crate::runner::{prepare_all, sweep, ConfigRun};

/// One client's aggregate outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientRow {
    /// Human label of the client.
    pub client: &'static str,
    /// The MPL the client derived from its cost model.
    pub mpl: u64,
    /// Average net benefit (% of baseline cost) optimizing the
    /// oracle's phases.
    pub oracle_benefit: f64,
    /// Average net benefit using the best framework detector.
    pub detector_benefit: f64,
    /// Average net benefit using the fixed-interval detector.
    pub fixed_benefit: f64,
}

impl ClientRow {
    /// Fraction of the oracle's benefit the framework detector
    /// captures (0 when the oracle itself gains nothing).
    #[must_use]
    pub fn capture_ratio(&self) -> f64 {
        if self.oracle_benefit <= 0.0 {
            0.0
        } else {
            self.detector_benefit / self.oracle_benefit
        }
    }
}

/// The client study result.
#[derive(Debug, Clone)]
pub struct ClientResult {
    /// One row per client economics.
    pub rows: Vec<ClientRow>,
}

/// The three clients studied: (label, apply cost, speedup, revert
/// cost).
#[must_use]
pub fn client_models() -> Vec<(&'static str, CostModel)> {
    vec![
        (
            "lightweight (0.5K apply, 1.2x)",
            CostModel::new(500, 1.2, 50).expect("valid model"),
        ),
        (
            "moderate (5K apply, 1.3x)",
            CostModel::new(5_000, 1.3, 500).expect("valid model"),
        ),
        (
            "heavyweight (20K apply, 1.5x)",
            CostModel::new(20_000, 1.5, 2_000).expect("valid model"),
        ),
    ]
}

fn best_by_score<'a>(
    runs: &'a [ConfigRun],
    oracle: &opd_baseline::BaselineSolution,
) -> Option<&'a ConfigRun> {
    runs.iter().max_by(|a, b| {
        score_intervals(&a.detected, oracle)
            .combined()
            .total_cmp(&score_intervals(&b.detected, oracle).combined())
    })
}

/// Runs the client study.
#[must_use]
pub fn run(opts: &ExpOptions) -> ClientResult {
    let models = client_models();
    let mpls: Vec<u64> = models.iter().map(|(_, m)| recommended_mpl(m)).collect();
    let prepared = prepare_all(&opts.workloads, opts.scale, &mpls, opts.fuel);

    let rows = models
        .into_iter()
        .zip(mpls)
        .map(|((client, model), mpl)| {
            let cw = half_mpl_cw(mpl);
            let mut oracle_b = Vec::new();
            let mut detector_b = Vec::new();
            let mut fixed_b = Vec::new();
            for p in &prepared {
                let oracle = p.oracle(mpl);
                let truth = oracle.phases();
                let total = p.total_elements();
                oracle_b.push(simulate_intervals(truth, truth, total, &model).net_benefit_pct());
                let mut runs = sweep(p, &policy_grid(TwKind::Constant, cw), opts.threads);
                runs.extend(sweep(p, &policy_grid(TwKind::Adaptive, cw), opts.threads));
                if let Some(best) = best_by_score(&runs, oracle) {
                    detector_b.push(
                        simulate_intervals(&best.detected, truth, total, &model).net_benefit_pct(),
                    );
                }
                let fixed = sweep(p, &policy_grid(TwKind::FixedInterval, cw), opts.threads);
                if let Some(best) = best_by_score(&fixed, oracle) {
                    fixed_b.push(
                        simulate_intervals(&best.detected, truth, total, &model).net_benefit_pct(),
                    );
                }
            }
            ClientRow {
                client,
                mpl,
                oracle_benefit: avg(oracle_b),
                detector_benefit: avg(detector_b),
                fixed_benefit: avg(fixed_b),
            }
        })
        .collect();
    ClientResult { rows }
}

impl fmt::Display for ClientResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(
            "Phase-aware optimization: net benefit (% of baseline cost)",
            &[
                "Client",
                "MPL",
                "Oracle",
                "Best detector",
                "Fixed interval",
                "Capture",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.client.to_owned(),
                crate::report::fmt_mpl(r.mpl),
                fmt_pct(r.oracle_benefit),
                fmt_pct(r.detector_benefit),
                fmt_pct(r.fixed_benefit),
                format!("{:.0}%", 100.0 * r.capture_ratio()),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opd_microvm::workloads::Workload;

    #[test]
    fn small_run_shapes() {
        let opts = ExpOptions {
            workloads: vec![Workload::Parsegen],
            fuel: 60_000,
            threads: 2,
            ..ExpOptions::default()
        };
        let result = run(&opts);
        assert_eq!(result.rows.len(), 3);
        for r in &result.rows {
            // The oracle never loses: it only optimizes phases that
            // satisfy an MPL beyond the client's break-even length.
            assert!(r.oracle_benefit >= 0.0, "{r:?}");
            assert!(r.capture_ratio().is_finite());
        }
        assert!(result.to_string().contains("Oracle"));
    }

    #[test]
    fn clients_have_distinct_mpls() {
        let mpls: Vec<u64> = client_models()
            .iter()
            .map(|(_, m)| recommended_mpl(m))
            .collect();
        assert!(mpls[0] < mpls[1] && mpls[1] < mpls[2], "{mpls:?}");
    }
}
