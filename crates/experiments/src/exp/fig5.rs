//! Figure 5: weighted versus unweighted similarity models
//! (Section 4.3), with and without the compress analogue.

use core::fmt;

use opd_core::ModelPolicy;
use opd_microvm::workloads::Workload;

use crate::exp::{avg, ExpOptions};
use crate::grid::{analyzer_grid, half_mpl_cw, TwKind, MPLS_MAIN};
use crate::report::{fmt_mpl, fmt_score, Table};
use crate::runner::{best_combined, prepare_all, sweep};

/// Scores for one (MPL, TW policy) group of Figure 5's bars.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig5Cell {
    /// The minimum phase length.
    pub mpl: u64,
    /// The trailing-window policy (Constant or Adaptive).
    pub kind: TwKind,
    /// Average best score, weighted model, all benchmarks.
    pub weighted: f64,
    /// Average best score, unweighted model, all benchmarks.
    pub unweighted: f64,
    /// Weighted, excluding the compress analogue.
    pub weighted_no_compress: f64,
    /// Unweighted, excluding the compress analogue.
    pub unweighted_no_compress: f64,
}

/// The regenerated Figure 5.
#[derive(Debug, Clone)]
pub struct Fig5Result {
    /// One cell per (MPL, policy), MPL-major.
    pub cells: Vec<Fig5Cell>,
}

impl Fig5Result {
    /// `true` if the unweighted model wins on average once the
    /// compress analogue is excluded — the paper's Section 4.3
    /// conclusion.
    #[must_use]
    pub fn unweighted_wins_without_compress(&self) -> bool {
        avg(self.cells.iter().map(|c| c.unweighted_no_compress))
            >= avg(self.cells.iter().map(|c| c.weighted_no_compress))
    }
}

/// Runs the Figure 5 experiment.
#[must_use]
pub fn run(opts: &ExpOptions) -> Fig5Result {
    let prepared = prepare_all(&opts.workloads, opts.scale, &MPLS_MAIN, opts.fuel);
    let kinds = [TwKind::Constant, TwKind::Adaptive];
    let mut cells = Vec::new();
    for &mpl in &MPLS_MAIN {
        let cw = half_mpl_cw(mpl);
        for &kind in &kinds {
            let mut by_model = [Vec::new(), Vec::new()]; // [weighted, unweighted] x bench
            let mut is_compress = Vec::new();
            for p in &prepared {
                is_compress.push(p.workload() == Workload::Blockcomp);
                for (slot, model) in [ModelPolicy::WeightedSet, ModelPolicy::UnweightedSet]
                    .into_iter()
                    .enumerate()
                {
                    let runs = sweep(p, &analyzer_grid(kind, cw, model), opts.threads);
                    by_model[slot].push(best_combined(&runs, p.oracle(mpl)));
                }
            }
            let without = |scores: &[f64]| {
                avg(scores
                    .iter()
                    .zip(&is_compress)
                    .filter(|&(_, &c)| !c)
                    .map(|(&s, _)| s))
            };
            cells.push(Fig5Cell {
                mpl,
                kind,
                weighted: avg(by_model[0].iter().copied()),
                unweighted: avg(by_model[1].iter().copied()),
                weighted_no_compress: without(&by_model[0]),
                unweighted_no_compress: without(&by_model[1]),
            });
        }
    }
    Fig5Result { cells }
}

impl fmt::Display for Fig5Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(
            "Figure 5: weighted vs unweighted model (average best score)",
            &[
                "MPL / Policy",
                "Weighted",
                "Unweighted",
                "Weighted w/o compress",
                "Unweighted w/o compress",
            ],
        );
        for c in &self.cells {
            t.row(vec![
                format!("{} {}", fmt_mpl(c.mpl), c.kind),
                fmt_score(c.weighted),
                fmt_score(c.unweighted),
                fmt_score(c.weighted_no_compress),
                fmt_score(c.unweighted_no_compress),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_shapes() {
        let opts = ExpOptions {
            workloads: vec![Workload::Blockcomp, Workload::Lexgen],
            fuel: 30_000,
            threads: 4,
            ..ExpOptions::default()
        };
        let result = run(&opts);
        // 4 MPL values x 2 policies.
        assert_eq!(result.cells.len(), 8);
        for c in &result.cells {
            for v in [
                c.weighted,
                c.unweighted,
                c.weighted_no_compress,
                c.unweighted_no_compress,
            ] {
                assert!((0.0..=1.0).contains(&v), "{c:?}");
            }
        }
        assert!(result.to_string().contains("w/o compress"));
    }
}
