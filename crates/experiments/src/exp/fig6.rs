//! Figure 6: Threshold versus Average analyzers (Section 4.4), for
//! the Constant TW (a) and Adaptive TW (b) policies.
//!
//! The unweighted model is used throughout (the paper restricts the
//! analyzer study to it after Section 4.3).

use core::fmt;

use opd_core::{AnalyzerPolicy, ModelPolicy};

use crate::exp::{avg, ExpOptions};
use crate::grid::{config_for, half_mpl_cw, paper_analyzers, TwKind, MPLS_MAIN};
use crate::report::{fmt_mpl, fmt_score, Table};
use crate::runner::{prepare_all, run_detector, PreparedWorkload};

/// One bar of Figure 6: an analyzer's average score for one MPL and
/// policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig6Bar {
    /// The minimum phase length.
    pub mpl: u64,
    /// The trailing-window policy (Constant = subgraph (a), Adaptive =
    /// subgraph (b)).
    pub kind: TwKind,
    /// The analyzer this bar describes.
    pub analyzer: AnalyzerPolicy,
    /// Average score across benchmarks.
    pub score: f64,
}

/// The regenerated Figure 6.
#[derive(Debug, Clone)]
pub struct Fig6Result {
    /// All bars: MPL-major, policy-second, analyzers in the paper's
    /// order (four thresholds then six deltas).
    pub bars: Vec<Fig6Bar>,
}

impl Fig6Result {
    /// The bars of one subgraph.
    #[must_use]
    pub fn bars_for(&self, kind: TwKind) -> Vec<&Fig6Bar> {
        self.bars.iter().filter(|b| b.kind == kind).collect()
    }
}

/// Runs the Figure 6 experiment.
#[must_use]
pub fn run(opts: &ExpOptions) -> Fig6Result {
    let prepared = prepare_all(&opts.workloads, opts.scale, &MPLS_MAIN, opts.fuel);
    let mut bars = Vec::new();
    for &mpl in &MPLS_MAIN {
        let cw = half_mpl_cw(mpl);
        for kind in [TwKind::Constant, TwKind::Adaptive] {
            for analyzer in paper_analyzers() {
                let config = config_for(kind, cw, ModelPolicy::UnweightedSet, analyzer)
                    .expect("grid parameters are valid");
                let score = avg(prepared.iter().map(|p: &PreparedWorkload| {
                    run_detector(config, p.interned())
                        .score(p.oracle(mpl))
                        .combined()
                }));
                bars.push(Fig6Bar {
                    mpl,
                    kind,
                    analyzer,
                    score,
                });
            }
        }
    }
    Fig6Result { bars }
}

impl fmt::Display for Fig6Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for kind in [TwKind::Constant, TwKind::Adaptive] {
            let title = format!(
                "Figure 6({}): analyzers under the {} policy (average score, unweighted model)",
                if kind == TwKind::Constant { "a" } else { "b" },
                kind
            );
            let mut headers: Vec<String> = vec!["MPL".into()];
            for a in paper_analyzers() {
                headers.push(a.to_string());
            }
            let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
            let mut t = Table::new(&title, &header_refs);
            for &mpl in &MPLS_MAIN {
                let mut cells = vec![fmt_mpl(mpl)];
                for bar in self.bars.iter().filter(|b| b.kind == kind && b.mpl == mpl) {
                    cells.push(fmt_score(bar.score));
                }
                t.row(cells);
            }
            writeln!(f, "{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opd_microvm::workloads::Workload;

    #[test]
    fn small_run_shapes() {
        let opts = ExpOptions {
            workloads: vec![Workload::Querydb],
            fuel: 30_000,
            threads: 2,
            ..ExpOptions::default()
        };
        let result = run(&opts);
        // 4 MPLs x 2 policies x 10 analyzers.
        assert_eq!(result.bars.len(), 80);
        assert_eq!(result.bars_for(TwKind::Constant).len(), 40);
        for b in &result.bars {
            assert!((0.0..=1.0).contains(&b.score), "{b:?}");
        }
        let text = result.to_string();
        assert!(text.contains("Figure 6(a)"), "{text}");
        assert!(text.contains("threshold(0.5)"), "{text}");
        assert!(text.contains("average(0.4)"), "{text}");
    }
}
