//! Table 1: benchmark characteristics (a) and baseline phases per MPL
//! value (b).

use core::fmt;

use opd_trace::TraceStats;

use crate::exp::ExpOptions;
use crate::grid::MPLS_TABLE1;
use crate::report::{fmt_mpl, fmt_pct, Table};
use crate::runner::prepare_all;

/// Per-benchmark phase statistics for one MPL value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MplCell {
    /// The minimum phase length.
    pub mpl: u64,
    /// Number of baseline phases (Table 1(b), "# Phases").
    pub phases: usize,
    /// Percentage of profile elements in phase ("% in Phase").
    pub percent_in_phase: f64,
}

/// One benchmark's row across both halves of Table 1.
#[derive(Debug, Clone)]
pub struct BenchRow {
    /// Workload name.
    pub name: &'static str,
    /// The paper benchmark this stands in for.
    pub paper_benchmark: &'static str,
    /// Dynamic execution characteristics (Table 1(a)).
    pub stats: TraceStats,
    /// Baseline phases per MPL (Table 1(b)).
    pub per_mpl: Vec<MplCell>,
}

/// The regenerated Table 1.
#[derive(Debug, Clone)]
pub struct Table1Result {
    /// One row per workload, in the paper's order.
    pub rows: Vec<BenchRow>,
    /// The MPL values of part (b).
    pub mpls: Vec<u64>,
}

/// Runs the Table 1 experiment.
#[must_use]
pub fn run(opts: &ExpOptions) -> Table1Result {
    let prepared = prepare_all(&opts.workloads, opts.scale, &MPLS_TABLE1, opts.fuel);
    let rows = prepared
        .iter()
        .map(|p| BenchRow {
            name: p.workload().name(),
            paper_benchmark: p.workload().paper_benchmark(),
            stats: *p.stats(),
            per_mpl: MPLS_TABLE1
                .iter()
                .map(|&mpl| {
                    let oracle = p.oracle(mpl);
                    MplCell {
                        mpl,
                        phases: oracle.phase_count(),
                        percent_in_phase: oracle.percent_in_phase(),
                    }
                })
                .collect(),
        })
        .collect();
    Table1Result {
        rows,
        mpls: MPLS_TABLE1.to_vec(),
    }
}

impl fmt::Display for Table1Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut a = Table::new(
            "Table 1(a): Benchmark Characteristics",
            &[
                "Benchmark",
                "Analogue of",
                "Dynamic Branches",
                "Loop Executions",
                "Method Invocations",
                "Recursion Roots",
            ],
        );
        for r in &self.rows {
            a.row(vec![
                r.name.to_owned(),
                r.paper_benchmark.to_owned(),
                r.stats.dynamic_branches.to_string(),
                r.stats.loop_executions.to_string(),
                r.stats.method_invocations.to_string(),
                r.stats.recursion_roots.to_string(),
            ]);
        }
        writeln!(f, "{a}")?;

        let mut headers: Vec<String> = vec!["Benchmark".into()];
        for &mpl in &self.mpls {
            headers.push(format!("{} #Ph", fmt_mpl(mpl)));
            headers.push(format!("{} %in", fmt_mpl(mpl)));
        }
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut b = Table::new("Table 1(b): Baseline Phases per MPL", &header_refs);
        for r in &self.rows {
            let mut cells = vec![r.name.to_owned()];
            for cell in &r.per_mpl {
                cells.push(cell.phases.to_string());
                cells.push(fmt_pct(cell.percent_in_phase));
            }
            b.row(cells);
        }
        write!(f, "{b}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opd_microvm::workloads::Workload;

    #[test]
    fn small_run_produces_rows() {
        let opts = ExpOptions {
            workloads: vec![Workload::Lexgen, Workload::Audiodec],
            fuel: 120_000,
            threads: 2,
            ..ExpOptions::default()
        };
        let result = run(&opts);
        assert_eq!(result.rows.len(), 2);
        for row in &result.rows {
            assert_eq!(row.per_mpl.len(), 6);
            assert!(row.stats.dynamic_branches > 0);
            // Phase counts are non-increasing in MPL.
            for w in row.per_mpl.windows(2) {
                assert!(w[0].phases >= w[1].phases, "{row:?}");
            }
        }
        let text = result.to_string();
        assert!(text.contains("Table 1(a)"), "{text}");
        assert!(text.contains("lexgen"), "{text}");
        assert!(text.contains("100K #Ph"), "{text}");
    }
}
