//! Figure 7: window resizing and anchoring at phase starts
//! (Section 5): Slide versus Move (a) and RN versus LNN (b).

use core::fmt;

use opd_core::{AnchorPolicy, ResizePolicy};

use crate::exp::{avg, pct_improvement, ExpOptions};
use crate::grid::{adaptive_grid, half_mpl_cw, MPLS_TABLE1};
use crate::report::{fmt_mpl, fmt_pct, Table};
use crate::runner::{best_combined, prepare_all, sweep};

/// Improvements for one MPL value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig7Row {
    /// The minimum phase length.
    pub mpl: u64,
    /// Percent improvement of Slide over Move resizing (RN anchor).
    pub slide_over_move: f64,
    /// Percent improvement of RN over LNN anchoring (Slide resizing).
    pub rn_over_lnn: f64,
}

/// The regenerated Figure 7.
#[derive(Debug, Clone)]
pub struct Fig7Result {
    /// One row per MPL value.
    pub rows: Vec<Fig7Row>,
}

impl Fig7Result {
    /// Average improvement of Slide over Move across MPL values.
    #[must_use]
    pub fn average_slide_improvement(&self) -> f64 {
        avg(self.rows.iter().map(|r| r.slide_over_move))
    }

    /// Average improvement of RN over LNN across MPL values.
    #[must_use]
    pub fn average_rn_improvement(&self) -> f64 {
        avg(self.rows.iter().map(|r| r.rn_over_lnn))
    }
}

/// Runs the Figure 7 experiment.
#[must_use]
pub fn run(opts: &ExpOptions) -> Fig7Result {
    let prepared = prepare_all(&opts.workloads, opts.scale, &MPLS_TABLE1, opts.fuel);
    let rows = MPLS_TABLE1
        .iter()
        .map(|&mpl| {
            let cw = half_mpl_cw(mpl);
            let variants = [
                (AnchorPolicy::RightmostNoisy, ResizePolicy::Slide),
                (AnchorPolicy::RightmostNoisy, ResizePolicy::Move),
                (AnchorPolicy::LeftmostNonNoisy, ResizePolicy::Slide),
            ];
            // Average of best scores per variant across benchmarks.
            let mut scores = [0.0f64; 3];
            for (vi, &(anchor, resize)) in variants.iter().enumerate() {
                scores[vi] = avg(prepared.iter().map(|p| {
                    let runs = sweep(p, &adaptive_grid(cw, anchor, resize), opts.threads);
                    best_combined(&runs, p.oracle(mpl))
                }));
            }
            Fig7Row {
                mpl,
                slide_over_move: pct_improvement(scores[0], scores[1]),
                rn_over_lnn: pct_improvement(scores[0], scores[2]),
            }
        })
        .collect();
    Fig7Result { rows }
}

impl fmt::Display for Fig7Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(
            "Figure 7: % improvement from resize and anchor policies (Adaptive TW)",
            &["MPL", "(a) Slide vs Move (RN)", "(b) RN vs LNN (Slide)"],
        );
        for r in &self.rows {
            t.row(vec![
                fmt_mpl(r.mpl),
                fmt_pct(r.slide_over_move),
                fmt_pct(r.rn_over_lnn),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opd_microvm::workloads::Workload;

    #[test]
    fn small_run_shapes() {
        let opts = ExpOptions {
            workloads: vec![Workload::Ruleng],
            fuel: 25_000,
            threads: 4,
            ..ExpOptions::default()
        };
        let result = run(&opts);
        assert_eq!(result.rows.len(), 6);
        for r in &result.rows {
            assert!(r.slide_over_move.is_finite());
            assert!(r.rn_over_lnn.is_finite());
        }
        let _ = result.average_slide_improvement();
        let _ = result.average_rn_improvement();
        assert!(result.to_string().contains("Slide vs Move"));
    }
}
