//! One module per paper artifact: Table 1, Table 2, Figures 4–8.
//!
//! Every module exposes `run(&ExpOptions) -> …Result`; results carry
//! the structured data and render the paper-style table via
//! `Display`.

use opd_microvm::workloads::Workload;

use crate::runner::default_threads;

pub mod client;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod inputs;
pub mod overhead;
pub mod related;
pub mod sampling;
pub mod scaling;
pub mod table1;
pub mod table2;

/// Options shared by all experiments.
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Workload scale factor.
    pub scale: u32,
    /// Worker threads for the configuration sweeps.
    pub threads: usize,
    /// Which workloads to evaluate (default: all eight).
    pub workloads: Vec<Workload>,
    /// Optional cap on trace length (branches); `u64::MAX` runs the
    /// workloads to completion. Used by tests and benches.
    pub fuel: u64,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            scale: 1,
            threads: default_threads(),
            workloads: Workload::ALL.to_vec(),
            fuel: u64::MAX,
        }
    }
}

impl ExpOptions {
    /// Options from command-line flags.
    #[must_use]
    pub fn from_cli(cli: crate::cli::CliOpts) -> Self {
        ExpOptions {
            scale: cli.scale,
            threads: cli.threads,
            ..ExpOptions::default()
        }
    }
}

/// Arithmetic mean; 0 for an empty iterator.
pub(crate) fn avg(values: impl IntoIterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0u32);
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / f64::from(n)
    }
}

/// Percent improvement of `new` over `base`; 0 when `base` is 0.
pub(crate) fn pct_improvement(new: f64, base: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        (new - base) / base * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_and_improvement() {
        assert_eq!(avg([1.0, 2.0, 3.0]), 2.0);
        assert_eq!(avg(std::iter::empty()), 0.0);
        assert!((pct_improvement(1.2, 1.0) - 20.0).abs() < 1e-12);
        assert_eq!(pct_improvement(1.0, 0.0), 0.0);
    }

    #[test]
    fn default_options_cover_all_workloads() {
        let o = ExpOptions::default();
        assert_eq!(o.workloads.len(), 8);
        assert_eq!(o.scale, 1);
        assert_eq!(o.fuel, u64::MAX);
    }
}
