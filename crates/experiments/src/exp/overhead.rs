//! Overhead study: the cost of online phase detection.
//!
//! Section 7 of the paper names three overhead sources in a
//! phase-aware optimization system — profile collection, phase
//! detection, and phase consumption — and plans "to investigate and
//! optimize the overhead of accurate phase detection". This experiment
//! measures the second source for every framework configuration
//! family: sustained detector throughput in profile elements per
//! second, and the relative slowdown versus the cheapest family.

use core::fmt;
use std::time::Instant;

use opd_core::{AnalyzerPolicy, ModelPolicy, PhaseDetector};
use opd_microvm::workloads::Workload;

use crate::exp::ExpOptions;
use crate::grid::{config_for, TwKind};
use crate::report::Table;
use crate::runner::PreparedWorkload;

/// Throughput of one configuration family.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadRow {
    /// Family label.
    pub family: String,
    /// Elements processed per second (median of the workloads).
    pub elements_per_sec: f64,
    /// Nanoseconds per profile element.
    pub ns_per_element: f64,
}

/// The overhead-study result.
#[derive(Debug, Clone)]
pub struct OverheadResult {
    /// One row per (policy, model) family, fastest first.
    pub rows: Vec<OverheadRow>,
    /// Total elements measured per family.
    pub elements: u64,
}

impl OverheadResult {
    /// Throughput ratio between the fastest and slowest family.
    #[must_use]
    pub fn spread(&self) -> f64 {
        match (self.rows.first(), self.rows.last()) {
            (Some(fast), Some(slow)) if slow.elements_per_sec > 0.0 => {
                fast.elements_per_sec / slow.elements_per_sec
            }
            _ => 1.0,
        }
    }
}

/// Runs the overhead study. The detector families are timed over the
/// prepared workloads' interned traces (profile collection and
/// scoring excluded, exactly the "phase detection" slice of the
/// paper's overhead taxonomy).
#[must_use]
pub fn run(opts: &ExpOptions) -> OverheadResult {
    // A small, representative workload set keeps wall time sensible.
    let workloads: Vec<Workload> = opts.workloads.iter().copied().take(3).collect();
    let prepared: Vec<PreparedWorkload> = workloads
        .iter()
        .map(|&w| PreparedWorkload::prepare_with_fuel(w, opts.scale, &[10_000], opts.fuel))
        .collect();
    let total_elements: u64 = prepared.iter().map(PreparedWorkload::total_elements).sum();

    let families: Vec<(String, TwKind, ModelPolicy)> = TwKind::ALL
        .iter()
        .flat_map(|&kind| {
            ModelPolicy::ALL_EXTENDED
                .iter()
                .map(move |&model| (format!("{kind} / {model}"), kind, model))
        })
        .collect();

    let mut rows: Vec<OverheadRow> = families
        .into_iter()
        .map(|(family, kind, model)| {
            let config = config_for(kind, 5_000, model, AnalyzerPolicy::Threshold(0.6))
                .expect("grid parameters are valid");
            let started = Instant::now();
            for p in &prepared {
                let mut detector = PhaseDetector::new(config);
                let states = detector.run_interned(p.interned());
                std::hint::black_box(states.len());
            }
            let elapsed = started.elapsed().as_secs_f64();
            let eps = if elapsed > 0.0 {
                total_elements as f64 / elapsed
            } else {
                f64::INFINITY
            };
            OverheadRow {
                family,
                elements_per_sec: eps,
                ns_per_element: 1e9 / eps,
            }
        })
        .collect();
    rows.sort_by(|a, b| b.elements_per_sec.total_cmp(&a.elements_per_sec));

    OverheadResult {
        rows,
        elements: total_elements,
    }
}

impl fmt::Display for OverheadResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(
            &format!(
                "Detection overhead per configuration family ({} elements each)",
                self.elements
            ),
            &["Family", "Melem/s", "ns/element"],
        );
        for r in &self.rows {
            t.row(vec![
                r.family.clone(),
                format!("{:.1}", r.elements_per_sec / 1e6),
                format!("{:.1}", r.ns_per_element),
            ]);
        }
        writeln!(f, "{t}")?;
        write!(f, "fastest/slowest throughput ratio: {:.2}x", self.spread())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_all_families() {
        let opts = ExpOptions {
            workloads: vec![Workload::Lexgen],
            fuel: 20_000,
            threads: 1,
            ..ExpOptions::default()
        };
        let result = run(&opts);
        // 3 policies x 3 models.
        assert_eq!(result.rows.len(), 9);
        for r in &result.rows {
            assert!(r.elements_per_sec > 0.0, "{r:?}");
        }
        assert!(result.spread() >= 1.0);
        // Sorted fastest first.
        for w in result.rows.windows(2) {
            assert!(w[0].elements_per_sec >= w[1].elements_per_sec);
        }
        assert!(result.to_string().contains("ns/element"));
    }
}
