//! The `opd audit` implementation: exhaustive DPOR exploration of the
//! three modeled concurrent subsystems (metrics registry, sweep
//! runner, checkpoint protocol), the seeded-bug mutant suite proving
//! the detector catches real bugs, the `OPD-R` race lints over the
//! observed synchronization profiles, and the `BENCH_sched.json`
//! artifact recording all of it.
//!
//! Everything here is deterministic: the explorer is seeded DFS over
//! a serialized runtime, so execution counts, pruning ratios, witness
//! schedules, and verdicts are bit-identical across runs and hosts —
//! which is what lets the committed artifact be freshness-tested the
//! same way as `BENCH_kernel.json`.

use opd_analyze::{race_lints, Diagnostic, SubsystemSyncProfile, SyncSite};
use opd_sched::{models, Explorer, FindingKind, SyncProfile};

/// The audit's explorer seed: fixed so artifacts are reproducible.
pub const AUDIT_SEED: u64 = 0;

/// One audited subsystem's exploration results.
#[derive(Debug)]
pub struct SubsystemAudit {
    /// Subsystem name (`metrics`, `runner`, `checkpoint`).
    pub name: &'static str,
    /// Schedules explored with DPOR.
    pub executions: u64,
    /// Schedules explored by the naive (unreduced) search — the
    /// pruning-ratio denominator.
    pub naive_executions: u64,
    /// Total scheduling steps across the DPOR search.
    pub transitions: u64,
    /// Deepest schedule, in steps.
    pub max_depth: usize,
    /// `None` when the exhaustive search was clean, else the rendered
    /// finding + witness.
    pub finding: Option<String>,
    /// The lintable profile (observed sites + declared coverage).
    pub profile: SubsystemSyncProfile,
}

impl SubsystemAudit {
    /// DPOR pruning ratio: naive schedules per DPOR schedule.
    #[must_use]
    pub fn pruning_ratio(&self) -> f64 {
        if self.executions == 0 {
            return 1.0;
        }
        self.naive_executions as f64 / self.executions as f64
    }

    /// `"clean"` or `"finding"` — the artifact's verdict string.
    #[must_use]
    pub fn verdict(&self) -> &'static str {
        if self.finding.is_none() {
            "clean"
        } else {
            "finding"
        }
    }
}

/// One seeded-bug mutant's detection record.
#[derive(Debug)]
pub struct MutantAudit {
    /// Mutant name.
    pub name: &'static str,
    /// The finding class the auditor must report (`data_race` |
    /// `lost_update`).
    pub expected: &'static str,
    /// The object label the finding must name.
    pub object: &'static str,
    /// Whether the expected finding was reported.
    pub caught: bool,
    /// Schedules explored before the bug surfaced.
    pub executions: u64,
    /// The replayable schedule witness (thread choice per step).
    pub schedule: Vec<usize>,
}

fn to_sync_sites(profile: &SyncProfile) -> Vec<SyncSite> {
    profile
        .sites
        .iter()
        .map(|s| SyncSite {
            label: s.label.clone(),
            atomic: s.atomic,
            accesses: s.accesses,
            writes_all_relaxed_rmw: !s.writes.is_empty()
                && s.writes.iter().all(|&(kind, order)| {
                    kind == opd_sched::AccessKind::Rmw && order == opd_sched::MemOrder::Relaxed
                }),
            has_acquire_read: s.has_acquire_read(),
            concurrent_rw: s.concurrent_rw,
        })
        .collect()
}

fn audit_one(name: &'static str, model: fn(), expected: Vec<String>) -> SubsystemAudit {
    let mut explorer = Explorer::new();
    explorer.seed = AUDIT_SEED;
    let report = explorer.explore(model);
    let naive = explorer.clone().naive().explore(model);
    SubsystemAudit {
        name,
        executions: report.executions,
        naive_executions: naive.executions,
        transitions: report.transitions,
        max_depth: report.max_depth,
        finding: report.finding.as_ref().map(ToString::to_string),
        profile: SubsystemSyncProfile {
            name: name.to_owned(),
            sites: to_sync_sites(&report.profile),
            expected,
        },
    }
}

/// Explores all three modeled subsystems exhaustively (DPOR and
/// naive) and returns their audits, in fixed order.
#[must_use]
pub fn audit_subsystems() -> Vec<SubsystemAudit> {
    vec![
        audit_one(
            "metrics",
            opd_obs::sched_model::writers_then_snapshot,
            opd_obs::sched_model::expected_objects(),
        ),
        audit_one(
            "runner",
            models::runner_disjoint_buckets,
            models::runner_expected_objects(),
        ),
        audit_one(
            "checkpoint",
            models::checkpoint_writer_reader,
            models::checkpoint_expected_objects(),
        ),
    ]
}

fn mutant_one(
    name: &'static str,
    model: fn(),
    expected: &'static str,
    object: &'static str,
) -> MutantAudit {
    let mut explorer = Explorer::new();
    explorer.seed = AUDIT_SEED;
    let report = explorer.explore(model);
    let (caught, schedule) = match &report.finding {
        Some(finding) => {
            let matches = match (&finding.kind, expected) {
                (FindingKind::DataRace { object: o, .. }, "data_race") => o == object,
                (FindingKind::LostUpdate { object: o, .. }, "lost_update") => o == object,
                _ => false,
            };
            (matches, finding.witness.choices.clone())
        }
        None => (false, Vec::new()),
    };
    MutantAudit {
        name,
        expected,
        object,
        caught,
        executions: report.executions,
        schedule,
    }
}

/// Runs the seeded-bug mutation suite: every intentionally broken
/// variant of the three protocols must be caught with the expected
/// finding on the expected object.
#[must_use]
pub fn mutant_audits() -> Vec<MutantAudit> {
    vec![
        mutant_one(
            "metrics_lost_update",
            models::metrics_lost_update,
            "lost_update",
            "hits",
        ),
        mutant_one(
            "runner_overlapping_buckets",
            models::runner_overlapping_buckets,
            "data_race",
            "results[1]",
        ),
        mutant_one(
            "runner_dropped_join",
            models::runner_dropped_join,
            "data_race",
            "results[0]",
        ),
        mutant_one(
            "checkpoint_relaxed_publish",
            models::checkpoint_relaxed_publish,
            "data_race",
            "record[0]",
        ),
    ]
}

/// Runs the `OPD-R` lints over every subsystem audit, in order.
#[must_use]
pub fn audit_lints(audits: &[SubsystemAudit]) -> Vec<Diagnostic> {
    audits.iter().flat_map(|a| race_lints(&a.profile)).collect()
}

/// Renders `BENCH_sched.json` (hand-built: the vendored serde_json is
/// an inert shim). Every field is deterministic, so the committed
/// artifact is freshness-tested by exact comparison.
#[must_use]
pub fn sched_json(
    audits: &[SubsystemAudit],
    mutants: &[MutantAudit],
    lints: &[Diagnostic],
) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n");
    out.push_str("  \"schema\": \"opd-bench-sched-v1\",\n");
    out.push_str(&format!("  \"seed\": {AUDIT_SEED},\n"));
    out.push_str("  \"subsystems\": [\n");
    for (i, a) in audits.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"executions\": {}, \"naive_executions\": {}, \
             \"pruning_ratio\": {:.4}, \"transitions\": {}, \"max_depth\": {}, \
             \"verdict\": \"{}\"}}{}\n",
            a.name,
            a.executions,
            a.naive_executions,
            a.pruning_ratio(),
            a.transitions,
            a.max_depth,
            a.verdict(),
            if i + 1 < audits.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"mutants\": [\n");
    for (i, m) in mutants.iter().enumerate() {
        let schedule = m
            .schedule
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"expected\": \"{}\", \"object\": \"{}\", \
             \"caught\": {}, \"executions\": {}, \"schedule\": [{}]}}{}\n",
            m.name,
            m.expected,
            m.object,
            m.caught,
            m.executions,
            schedule,
            if i + 1 < mutants.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"lint_warnings\": {}\n", lints.len()));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subsystems_audit_clean_and_cover_expected_objects() {
        let audits = audit_subsystems();
        assert_eq!(audits.len(), 3);
        for a in &audits {
            assert_eq!(a.verdict(), "clean", "{}: {:?}", a.name, a.finding);
            assert!(a.executions > 0);
            assert!(
                a.naive_executions >= a.executions,
                "{}: DPOR explored more than naive",
                a.name
            );
            assert!(a.pruning_ratio() >= 1.0);
        }
        assert!(audit_lints(&audits).is_empty(), "clean repo audits clean");
    }

    #[test]
    fn live_snapshots_stay_monotone_under_exhaustive_exploration() {
        // The stress half of this claim lives in opd-obs
        // (`live_snapshots_are_monotone_under_stress`, real OS
        // scheduler); this is the exhaustive half — every interleaving
        // of a writer with two concurrent snapshots keeps
        // `s1 <= s2 <= total` and the quiesced total exact.
        let mut explorer = Explorer::new();
        explorer.seed = AUDIT_SEED;
        let report = explorer.explore(opd_obs::sched_model::live_snapshot_monotone);
        assert!(report.is_clean(), "{:?}", report.finding);
        assert!(report.executions > 1, "snapshots must actually interleave");
    }

    #[test]
    fn every_mutant_is_caught_with_a_witness() {
        for m in mutant_audits() {
            assert!(m.caught, "mutant `{}` escaped the auditor", m.name);
            assert!(!m.schedule.is_empty(), "{}: no witness schedule", m.name);
        }
    }

    #[test]
    fn sched_json_is_deterministic_and_shaped() {
        let audits = audit_subsystems();
        let mutants = mutant_audits();
        let lints = audit_lints(&audits);
        let a = sched_json(&audits, &mutants, &lints);
        let b = sched_json(&audit_subsystems(), &mutant_audits(), &lints);
        assert_eq!(a, b, "audit output must be deterministic");
        for needle in [
            "\"schema\": \"opd-bench-sched-v1\"",
            "\"name\": \"metrics\"",
            "\"name\": \"runner\"",
            "\"name\": \"checkpoint\"",
            "\"verdict\": \"clean\"",
            "\"caught\": true",
            "\"lint_warnings\": 0",
        ] {
            assert!(a.contains(needle), "missing {needle} in {a}");
        }
    }

    #[test]
    fn r201_fires_when_coverage_is_missing() {
        let mut audits = audit_subsystems();
        audits[1].profile.expected.push("uncovered_flag".to_owned());
        let lints = audit_lints(&audits);
        assert_eq!(lints.len(), 1);
        assert_eq!(lints[0].code().as_str(), "OPD-R201");
        assert!(lints[0].message().contains("uncovered_flag"));
    }
}
