//! The per-workload static-bounds artifact (`BENCH_static_bounds.json`).
//!
//! PR 1's sweep benchmark records its machine-readable summary in
//! `BENCH_sweep.json`; this module renders the companion artifact so
//! future changes to the workloads or the analyzer regress-check the
//! pre-sizing bounds the runtime relies on.

use opd_analyze::Analysis;
use opd_microvm::workloads::Workload;

/// Renders every built-in workload's static analysis as one JSON
/// object, keyed by workload name in table order.
///
/// The output is deterministic (no timestamps, no host data), so the
/// committed artifact can be compared byte-for-byte by tests.
///
/// # Examples
///
/// ```
/// let json = opd_experiments::analysis::static_bounds_json(1);
/// assert!(json.contains("\"lexgen\""));
/// assert!(json.contains("\"alphabet_bound\""));
/// ```
#[must_use]
pub fn static_bounds_json(scale: u32) -> String {
    let entries: Vec<String> = Workload::ALL
        .iter()
        .map(|w| {
            format!(
                "  \"{}\": {}",
                w.name(),
                Analysis::of(&w.program(scale)).to_json()
            )
        })
        .collect();
    format!(
        "{{\n \"scale\": {scale},\n \"workloads\": {{\n{}\n }}\n}}\n",
        entries.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_lists_every_workload_and_no_findings() {
        let json = static_bounds_json(1);
        for w in Workload::ALL {
            assert!(json.contains(&format!("\"{}\"", w.name())), "{w}");
        }
        // The workloads lint clean, so every diagnostics array is
        // empty in the committed artifact.
        assert!(!json.contains("\"diagnostics\":[{"));
        assert_eq!(json.matches("\"diagnostics\":[]").count(), 8);
    }

    #[test]
    fn artifact_is_deterministic() {
        assert_eq!(static_bounds_json(1), static_bounds_json(1));
    }
}
