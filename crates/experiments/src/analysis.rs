//! The committed analysis artifacts (`BENCH_static_bounds.json`,
//! `BENCH_plan.json`).
//!
//! PR 1's sweep benchmark records its machine-readable summary in
//! `BENCH_sweep.json`; this module renders the companion artifacts so
//! future changes to the workloads or the analyzer regress-check the
//! pre-sizing bounds the runtime relies on and the sweep-plan
//! analysis of the default grid.

use opd_analyze::{Analysis, PlanAnalysis, PlanWorkload};
use opd_microvm::workloads::Workload;

/// Renders every built-in workload's static analysis as one JSON
/// object, keyed by workload name in table order.
///
/// The output is deterministic (no timestamps, no host data), so the
/// committed artifact can be compared byte-for-byte by tests.
///
/// # Examples
///
/// ```
/// let json = opd_experiments::analysis::static_bounds_json(1);
/// assert!(json.contains("\"lexgen\""));
/// assert!(json.contains("\"alphabet_bound\""));
/// ```
#[must_use]
pub fn static_bounds_json(scale: u32) -> String {
    let entries: Vec<String> = Workload::ALL
        .iter()
        .map(|w| {
            format!(
                "  \"{}\": {}",
                w.name(),
                Analysis::of(&w.program(scale)).to_json()
            )
        })
        .collect();
    format!(
        "{{\n \"scale\": {scale},\n \"workloads\": {{\n{}\n }}\n}}\n",
        entries.join(",\n")
    )
}

/// One [`PlanWorkload`] per built-in workload at `scale`, carrying the
/// static element and alphabet bounds the plan lints and the cost
/// model consume.
#[must_use]
pub fn plan_workloads(scale: u32) -> Vec<PlanWorkload> {
    Workload::ALL
        .iter()
        .map(|w| {
            let a = Analysis::of(&w.program(scale));
            PlanWorkload {
                name: w.name().to_string(),
                elements: a.bounds().branches(),
                alphabet: a.flow().alphabet_bound(),
            }
        })
        .collect()
}

/// Analyzes the default 28-config plan grid against every workload's
/// static bounds at `scale`.
#[must_use]
pub fn default_plan(scale: u32) -> PlanAnalysis {
    PlanAnalysis::of(&crate::grid::default_plan_grid(), &plan_workloads(scale))
}

/// Renders the sweep-plan analysis of the default grid as one JSON
/// object (`BENCH_plan.json`): grid size, pruned size, class count,
/// predicted scan totals, and the full per-class detail.
///
/// Deterministic (no timestamps, no host data), so the committed
/// artifact can be compared byte-for-byte by tests.
///
/// # Examples
///
/// ```
/// let json = opd_experiments::analysis::plan_json(1);
/// assert!(json.contains("\"grid\":28"));
/// ```
#[must_use]
pub fn plan_json(scale: u32) -> String {
    let plan = default_plan(scale);
    format!(
        "{{\n \"scale\": {scale},\n \"equivalence_classes\": {},\n \"plan\": {}\n}}\n",
        plan.classes().len(),
        plan.to_json()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_lists_every_workload_and_no_findings() {
        let json = static_bounds_json(1);
        for w in Workload::ALL {
            assert!(json.contains(&format!("\"{}\"", w.name())), "{w}");
        }
        // The workloads lint clean, so every diagnostics array is
        // empty in the committed artifact.
        assert!(!json.contains("\"diagnostics\":[{"));
        assert_eq!(json.matches("\"diagnostics\":[]").count(), 8);
    }

    #[test]
    fn artifact_is_deterministic() {
        assert_eq!(static_bounds_json(1), static_bounds_json(1));
    }

    #[test]
    fn plan_artifact_covers_the_default_grid() {
        let json = plan_json(1);
        assert!(json.contains("\"grid\":28"), "{json}");
        assert!(json.contains("\"predicted_scans_full\":"));
        assert_eq!(plan_json(1), json);
    }
}
