//! Sweep self-profiling: metered sweeps, the per-bucket profile, and
//! the NullObserver overhead benchmark behind `BENCH_obs.json`.
//!
//! [`sweep_many_profiled`] is [`crate::runner::sweep_many`] with the
//! meter on: every `(workload, engine unit)` bucket runs through
//! [`SweepEngine::run_unit_metered`], recording scans, steps, judged
//! steps, comparison ops, elements, and wall-clock into a lock-free
//! [`MetricsRegistry`] shared by the workers. The per-bucket numbers
//! are cross-checked at runtime against PR 3's static cost model:
//! scans and steps are predicted exactly, comparison ops are bounded
//! above (see `counter_bounds.rs` in the test suite).
//!
//! [`null_observer_overhead`] is the measurement behind the
//! zero-overhead-when-off claim: the instrumented detector path run
//! with [`opd_obs::NullObserver`] against the uninstrumented
//! `run_interned_phases_only`, interleaved samples, median of each.

use std::time::Instant;

use opd_analyze::ConfigCost;
use opd_core::{DetectorConfig, KernelKind, PhaseDetector, SweepEngine, SweepScratch};
use opd_obs::{MetricsRegistry, MetricsSnapshot, NullObserver, UnitMetrics};

use crate::report::Table;
use crate::runner::{calibrated_unit_cost, config_run, lpt_plan, ConfigRun, PreparedWorkload};

/// Fuel for the overhead benchmark's workload trace.
pub const OBS_FUEL: u64 = 60_000;
/// Timing samples per arm of the overhead benchmark.
pub const OBS_SAMPLES: usize = 5;

/// What one `(workload, engine unit)` bucket actually did.
#[derive(Debug, Clone)]
pub struct BucketProfile {
    /// Workload name.
    pub workload: &'static str,
    /// Index into the prepared-workload slice.
    pub workload_index: usize,
    /// Index into the engine's unit list.
    pub unit_index: usize,
    /// The window kernel the bucket ran on (`"swar"` or `"scalar"`).
    pub kernel: &'static str,
    /// Whether the unit ran one shared scan for all members.
    pub shared: bool,
    /// Member configs in the unit.
    pub members: usize,
    /// Runtime accounting from the metered engine.
    pub metrics: UnitMetrics,
    /// The calibrated cost model's LPT weight for this bucket.
    pub static_cost: u64,
    /// Static upper bound on the bucket's comparison ops (`None` if
    /// the checked arithmetic overflowed).
    pub static_compare_bound: Option<u64>,
    /// Wall-clock spent running the bucket.
    pub wall_nanos: u64,
}

impl BucketProfile {
    /// Measured comparison-op throughput (ops/second) of this bucket —
    /// the number that separates the SWAR kernel from the scalar
    /// reference in the committed artifacts. `0.0` if the bucket ran
    /// too fast to time.
    #[must_use]
    pub fn compare_ops_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            return 0.0;
        }
        self.metrics.compare_ops as f64 * 1e9 / self.wall_nanos as f64
    }
}

/// The profile of one metered sweep: per-bucket accounting plus the
/// registry snapshot and per-worker busy time.
#[derive(Debug, Clone)]
pub struct SweepProfile {
    /// The window kernel every bucket ran on.
    pub kernel: KernelKind,
    /// Worker threads the sweep ran on.
    pub threads: usize,
    /// End-to-end wall-clock of the sweep.
    pub wall_nanos: u64,
    /// Busy wall-clock per worker (bucket run time, excluding joins) —
    /// the measured counterpart of the LPT plan's load estimate.
    pub thread_busy_nanos: Vec<u64>,
    /// One entry per `(workload, unit)` bucket, in deterministic
    /// `(workload, unit)` order.
    pub buckets: Vec<BucketProfile>,
    /// The metrics registry's post-join snapshot.
    pub snapshot: MetricsSnapshot,
}

impl SweepProfile {
    /// Sums every bucket's runtime accounting.
    #[must_use]
    pub fn totals(&self) -> UnitMetrics {
        let mut total = UnitMetrics::new();
        for b in &self.buckets {
            total.merge(&b.metrics);
        }
        total
    }

    /// Static upper bound on total comparison ops (`None` on
    /// overflow in any bucket).
    #[must_use]
    pub fn static_compare_bound(&self) -> Option<u64> {
        self.buckets
            .iter()
            .try_fold(0u64, |acc, b| acc.checked_add(b.static_compare_bound?))
    }

    /// Measured LPT imbalance: the busiest worker's share over the
    /// mean (1.0 = perfectly even; 0.0 if nothing ran).
    #[must_use]
    pub fn imbalance(&self) -> f64 {
        let busy: Vec<u64> = self.thread_busy_nanos.clone();
        if busy.is_empty() || busy.iter().all(|&b| b == 0) {
            return 0.0;
        }
        let max = *busy.iter().max().expect("non-empty") as f64;
        let mean = busy.iter().sum::<u64>() as f64 / busy.len() as f64;
        max / mean
    }

    /// The per-bucket profile as a printable table (the body of
    /// `opd sweep --stats`).
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Sweep profile (per bucket)",
            &[
                "workload", "unit", "kernel", "kind", "members", "scans", "steps", "judged",
                "cmp ops", "bound", "cmp/s", "wall ms",
            ],
        );
        for b in &self.buckets {
            t.row(vec![
                b.workload.to_owned(),
                b.unit_index.to_string(),
                b.kernel.to_owned(),
                if b.shared { "shared" } else { "private" }.to_owned(),
                b.members.to_string(),
                b.metrics.scans.to_string(),
                b.metrics.steps.to_string(),
                b.metrics.judged_steps.to_string(),
                b.metrics.compare_ops.to_string(),
                b.static_compare_bound
                    .map_or_else(|| "overflow".to_owned(), |v| v.to_string()),
                format!("{:.3e}", b.compare_ops_per_sec()),
                format!("{:.2}", b.wall_nanos as f64 / 1e6),
            ]);
        }
        t
    }
}

/// [`crate::runner::sweep_many`] with the meter on: identical results
/// (the engine's metered paths are mirrors of the unmetered ones,
/// guarded by the observer-equivalence suite), plus a [`SweepProfile`]
/// of what every bucket did.
#[must_use]
pub fn sweep_many_profiled(
    prepared: &[PreparedWorkload],
    configs: &[DetectorConfig],
    threads: usize,
) -> (Vec<Vec<ConfigRun>>, SweepProfile) {
    sweep_many_profiled_with_kernel(prepared, configs, threads, KernelKind::default())
}

/// [`sweep_many_profiled`] on an explicit window kernel, so `opd
/// sweep --stats` artifacts can record both the SWAR default and the
/// scalar reference.
#[must_use]
pub fn sweep_many_profiled_with_kernel(
    prepared: &[PreparedWorkload],
    configs: &[DetectorConfig],
    threads: usize,
    kernel: KernelKind,
) -> (Vec<Vec<ConfigRun>>, SweepProfile) {
    let engine = SweepEngine::with_kernel(configs, kernel);
    let started = Instant::now();

    let mut registry = MetricsRegistry::for_host();
    let c_scans = registry.counter("sweep.scans");
    let c_steps = registry.counter("sweep.steps");
    let c_judged = registry.counter("sweep.judged_steps");
    let c_compare = registry.counter("sweep.compare_ops");
    let c_elements = registry.counter("sweep.elements");
    let h_wall = registry.histogram("sweep.bucket_wall_us");
    let h_compare = registry.histogram("sweep.bucket_compare_ops");
    let registry = &registry;

    let mut items: Vec<(usize, usize, u64)> =
        Vec::with_capacity(prepared.len() * engine.units().len());
    for (wi, p) in prepared.iter().enumerate() {
        for (ui, unit) in engine.units().iter().enumerate() {
            items.push((wi, ui, calibrated_unit_cost(configs, unit, p)));
        }
    }
    let threads = threads.max(1).min(items.len().max(1));
    let site_capacity = prepared
        .iter()
        .map(PreparedWorkload::site_capacity)
        .max()
        .unwrap_or(0);

    // One worker's run of one bucket: metered engine call, registry
    // recording, and the per-bucket profile entry.
    let run_bucket = |wi: usize,
                      ui: usize,
                      static_cost: u64,
                      scratch: &mut SweepScratch|
     -> (Vec<(usize, usize, ConfigRun)>, BucketProfile) {
        let p = &prepared[wi];
        let unit = &engine.units()[ui];
        let total = p.interned().len() as u64;
        let mut metrics = UnitMetrics::new();
        let bucket_start = Instant::now();
        let runs = engine.run_unit_metered(ui, p.interned(), scratch, &mut metrics);
        let wall_nanos = u64::try_from(bucket_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        registry.add(c_scans, metrics.scans);
        registry.add(c_steps, metrics.steps);
        registry.add(c_judged, metrics.judged_steps);
        registry.add(c_compare, metrics.compare_ops);
        registry.add(c_elements, metrics.elements);
        registry.record(h_wall, wall_nanos / 1_000);
        registry.record(h_compare, metrics.compare_ops);
        let static_compare_bound = unit.config_indices().iter().try_fold(0u64, |acc, &ci| {
            acc.checked_add(
                ConfigCost::of(&configs[ci], p.total_elements(), p.site_capacity() as u64)
                    .compare_ops()?,
            )
        });
        let profile = BucketProfile {
            workload: p.workload().name(),
            workload_index: wi,
            unit_index: ui,
            kernel: engine.kernel().as_str(),
            shared: unit.is_shared(),
            members: unit.config_indices().len(),
            metrics,
            static_cost,
            static_compare_bound,
            wall_nanos,
        };
        let local = runs
            .into_iter()
            .map(|(ci, phases)| (wi, ci, config_run(configs[ci], &phases, total)))
            .collect();
        (local, profile)
    };

    let mut out: Vec<Vec<Option<ConfigRun>>> = prepared
        .iter()
        .map(|_| configs.iter().map(|_| None).collect())
        .collect();
    let mut buckets: Vec<BucketProfile> = Vec::with_capacity(items.len());
    let mut thread_busy_nanos = vec![0u64; threads];

    if threads <= 1 {
        let mut scratch = SweepScratch::with_site_capacity(site_capacity);
        for &(wi, ui, cost) in &items {
            let (local, profile) = run_bucket(wi, ui, cost, &mut scratch);
            thread_busy_nanos[0] += profile.wall_nanos;
            buckets.push(profile);
            for (wi, ci, run) in local {
                out[wi][ci] = Some(run);
            }
        }
    } else {
        let costs: Vec<u64> = items.iter().map(|&(_, _, c)| c).collect();
        let plan: Vec<Vec<(usize, usize, u64)>> = lpt_plan(&costs, threads)
            .into_iter()
            .map(|bucket| bucket.into_iter().map(|i| items[i]).collect())
            .collect();
        let run_bucket = &run_bucket;
        type WorkerOut = (Vec<(usize, usize, ConfigRun)>, Vec<BucketProfile>, u64);
        let filled: Vec<WorkerOut> = std::thread::scope(|s| {
            let handles: Vec<_> = plan
                .into_iter()
                .map(|assigned| {
                    s.spawn(move || {
                        let mut scratch = SweepScratch::with_site_capacity(site_capacity);
                        let mut local = Vec::new();
                        let mut profiles = Vec::new();
                        let mut busy = 0u64;
                        for (wi, ui, cost) in assigned {
                            let (runs, profile) = run_bucket(wi, ui, cost, &mut scratch);
                            busy += profile.wall_nanos;
                            local.extend(runs);
                            profiles.push(profile);
                        }
                        (local, profiles, busy)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("profiled sweep worker panicked"))
                .collect()
        });
        for (t, (local, profiles, busy)) in filled.into_iter().enumerate() {
            thread_busy_nanos[t] = busy;
            buckets.extend(profiles);
            for (wi, ci, run) in local {
                out[wi][ci] = Some(run);
            }
        }
    }
    buckets.sort_by_key(|b| (b.workload_index, b.unit_index));

    let profile = SweepProfile {
        kernel: engine.kernel(),
        threads,
        wall_nanos: u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
        thread_busy_nanos,
        buckets,
        snapshot: registry.snapshot(),
    };
    let out = out
        .into_iter()
        .map(|w| {
            w.into_iter()
                .map(|o| o.expect("every (workload, config) cell filled"))
                .collect()
        })
        .collect();
    (out, profile)
}

/// The two arms of the overhead benchmark.
#[derive(Debug, Clone, Copy)]
pub struct OverheadReport {
    /// Samples per arm.
    pub samples: usize,
    /// Median wall-clock of the uninstrumented sweep arm.
    pub plain_nanos: u64,
    /// Median wall-clock of the NullObserver-instrumented arm.
    pub instrumented_nanos: u64,
}

impl OverheadReport {
    /// Instrumented over plain (1.0 = no overhead).
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.plain_nanos == 0 {
            return 1.0;
        }
        self.instrumented_nanos as f64 / self.plain_nanos as f64
    }
}

fn median(mut samples: Vec<u64>) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Measures the NullObserver arm against the uninstrumented arm:
/// every config in `configs` run over `prepared`'s trace through one
/// reused detector, `samples` interleaved samples per arm, median of
/// each. With a correctly monomorphized observer layer the ratio is
/// noise around 1.0; the committed `BENCH_obs.json` records it and the
/// artifact test holds it under the 2% acceptance line.
#[must_use]
pub fn null_observer_overhead(
    prepared: &PreparedWorkload,
    configs: &[DetectorConfig],
    samples: usize,
) -> OverheadReport {
    let samples = samples.max(1);
    let trace = prepared.interned();
    let mut detector = PhaseDetector::new(configs[0]);
    detector.reserve_sites(prepared.site_capacity());

    // Warm both paths once (page in code and site tables) before
    // timing anything.
    for &config in configs {
        detector.reconfigure(config);
        let _ = detector.run_interned_phases_only(trace);
        detector.reconfigure(config);
        let _ = detector.run_interned_phases_observed(trace, &mut NullObserver);
    }

    let mut plain = Vec::with_capacity(samples);
    let mut instrumented = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        for &config in configs {
            detector.reconfigure(config);
            let _ = detector.run_interned_phases_only(trace);
        }
        plain.push(u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX));

        let t = Instant::now();
        for &config in configs {
            detector.reconfigure(config);
            let _ = detector.run_interned_phases_observed(trace, &mut NullObserver);
        }
        instrumented.push(u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
    OverheadReport {
        samples,
        plain_nanos: median(plain),
        instrumented_nanos: median(instrumented),
    }
}

/// Renders `BENCH_obs.json`: the overhead measurement plus the sweep
/// profile, hand-built (the vendored serde_json is an inert shim).
#[must_use]
pub fn obs_json(
    scale: u32,
    fuel: u64,
    grid_configs: usize,
    overhead: &OverheadReport,
    profile: &SweepProfile,
) -> String {
    let totals = profile.totals();
    let mut out = String::with_capacity(4096);
    out.push_str("{\n");
    out.push_str("  \"schema\": \"opd-bench-obs-v2\",\n");
    out.push_str(&format!("  \"scale\": {scale},\n"));
    out.push_str(&format!("  \"fuel\": {fuel},\n"));
    out.push_str(&format!("  \"kernel\": \"{}\",\n", profile.kernel.as_str()));
    out.push_str(&format!("  \"threads\": {},\n", profile.threads));
    out.push_str(&format!("  \"grid_configs\": {grid_configs},\n"));
    out.push_str("  \"overhead\": {\n");
    out.push_str(&format!("    \"samples\": {},\n", overhead.samples));
    out.push_str(&format!("    \"plain_nanos\": {},\n", overhead.plain_nanos));
    out.push_str(&format!(
        "    \"instrumented_nanos\": {},\n",
        overhead.instrumented_nanos
    ));
    out.push_str(&format!("    \"ratio\": {:.4}\n", overhead.ratio()));
    out.push_str("  },\n");
    out.push_str("  \"totals\": {\n");
    out.push_str(&format!("    \"scans\": {},\n", totals.scans));
    out.push_str(&format!("    \"steps\": {},\n", totals.steps));
    out.push_str(&format!("    \"judged_steps\": {},\n", totals.judged_steps));
    out.push_str(&format!("    \"compare_ops\": {},\n", totals.compare_ops));
    out.push_str(&format!("    \"elements\": {},\n", totals.elements));
    out.push_str(&format!(
        "    \"static_compare_bound\": {}\n",
        profile
            .static_compare_bound()
            .map_or_else(|| "null".to_owned(), |v| v.to_string())
    ));
    out.push_str("  },\n");
    out.push_str(&format!(
        "  \"lpt_imbalance\": {:.4},\n",
        profile.imbalance()
    ));
    out.push_str("  \"buckets\": [\n");
    for (i, b) in profile.buckets.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"unit\": {}, \"kernel\": \"{}\", \"shared\": {}, \
             \"members\": {}, \"scans\": {}, \"steps\": {}, \"judged_steps\": {}, \
             \"compare_ops\": {}, \"elements\": {}, \"static_compare_bound\": {}, \
             \"compare_ops_per_sec\": {:.1}, \"wall_nanos\": {}}}{}\n",
            b.workload,
            b.unit_index,
            b.kernel,
            b.shared,
            b.members,
            b.metrics.scans,
            b.metrics.steps,
            b.metrics.judged_steps,
            b.metrics.compare_ops,
            b.metrics.elements,
            b.static_compare_bound
                .map_or_else(|| "null".to_owned(), |v| v.to_string()),
            b.compare_ops_per_sec(),
            b.wall_nanos,
            if i + 1 == profile.buckets.len() {
                ""
            } else {
                ","
            },
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::default_plan_grid;
    use crate::runner::{prepare_all, sweep_many};
    use opd_microvm::workloads::Workload;

    #[test]
    fn profiled_sweep_matches_unprofiled_results() {
        let prepared = prepare_all(
            &[Workload::Lexgen, Workload::Blockcomp],
            1,
            &[1_000],
            30_000,
        );
        let configs = default_plan_grid();
        let reference = sweep_many(&prepared, &configs, 2);
        for threads in [1, 3] {
            let (runs, profile) = sweep_many_profiled(&prepared, &configs, threads);
            assert_eq!(runs.len(), reference.len());
            for (w_ref, w_prof) in reference.iter().zip(&runs) {
                for (a, b) in w_ref.iter().zip(w_prof) {
                    assert_eq!(a.detected, b.detected);
                    assert_eq!(a.anchored, b.anchored);
                }
            }
            // One shared bucket per workload on the default plan grid.
            assert_eq!(profile.buckets.len(), 2);
            let totals = profile.totals();
            assert_eq!(totals.scans, 2);
            assert_eq!(totals.elements, 2 * 30_000);
            assert!(totals.judged_steps > 0);
            // The registry agrees with the per-bucket accounting.
            assert_eq!(profile.snapshot.counter("sweep.scans"), Some(totals.scans));
            assert_eq!(
                profile.snapshot.counter("sweep.compare_ops"),
                Some(totals.compare_ops)
            );
            assert_eq!(
                profile
                    .snapshot
                    .histogram("sweep.bucket_wall_us")
                    .expect("registered")
                    .count(),
                2
            );
            assert!(profile.table().to_string().contains("lexgen"));
        }
    }

    #[test]
    fn profiled_sweep_records_the_kernel_variant() {
        let prepared = prepare_all(&[Workload::Lexgen], 1, &[1_000], 10_000);
        let configs = default_plan_grid();
        let (swar_runs, swar) = sweep_many_profiled(&prepared, &configs, 1);
        assert_eq!(swar.kernel, KernelKind::Swar);
        assert!(swar.buckets.iter().all(|b| b.kernel == "swar"));
        let (scalar_runs, scalar) =
            sweep_many_profiled_with_kernel(&prepared, &configs, 1, KernelKind::Scalar);
        assert_eq!(scalar.kernel, KernelKind::Scalar);
        assert!(scalar.buckets.iter().all(|b| b.kernel == "scalar"));
        // Same decisions, same step accounting — the kernels differ
        // only in per-judge op counts and speed.
        for (a, b) in swar_runs[0].iter().zip(&scalar_runs[0]) {
            assert_eq!(a.detected, b.detected);
            assert_eq!(a.anchored, b.anchored);
        }
        assert_eq!(swar.totals().judged_steps, scalar.totals().judged_steps);
    }

    #[test]
    fn overhead_report_is_sane() {
        let prepared = &prepare_all(&[Workload::Lexgen], 1, &[1_000], 10_000)[0];
        let configs = &default_plan_grid()[..4];
        let report = null_observer_overhead(prepared, configs, 3);
        assert_eq!(report.samples, 3);
        assert!(report.plain_nanos > 0);
        assert!(report.instrumented_nanos > 0);
        // Loose sanity bound (the committed artifact holds the strict
        // 2% line; this in-test check only guards against gross
        // monomorphization failures without being timing-flaky).
        assert!(report.ratio() < 1.5, "ratio {}", report.ratio());
    }

    #[test]
    fn obs_json_is_structurally_complete() {
        let prepared = prepare_all(&[Workload::Lexgen], 1, &[1_000], 10_000);
        let configs = default_plan_grid();
        let (_, profile) = sweep_many_profiled(&prepared, &configs, 1);
        let overhead = OverheadReport {
            samples: 3,
            plain_nanos: 100,
            instrumented_nanos: 101,
        };
        let json = obs_json(1, 10_000, configs.len(), &overhead, &profile);
        for key in [
            "\"schema\": \"opd-bench-obs-v2\"",
            "\"kernel\": \"swar\"",
            "\"overhead\"",
            "\"ratio\"",
            "\"totals\"",
            "\"static_compare_bound\"",
            "\"compare_ops_per_sec\"",
            "\"lpt_imbalance\"",
            "\"buckets\"",
            "\"workload\": \"lexgen\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!((overhead.ratio() - 1.01).abs() < 1e-9);
    }
}
