//! Regenerates the paper's fig7 artifact on truncated traces — a
//! benchmark of the full experiment pipeline (workload execution,
//! oracle computation, detector sweep, scoring).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use opd_experiments::exp::{fig7, ExpOptions};
use opd_microvm::workloads::Workload;

fn bench_fig7(c: &mut Criterion) {
    let opts = ExpOptions {
        workloads: vec![Workload::Ruleng, Workload::Lexgen],
        fuel: 20_000,
        threads: 1,
        ..ExpOptions::default()
    };
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    group.bench_function("fig7_truncated", |b| {
        b.iter(|| black_box(fig7::run(&opts)));
    });
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
