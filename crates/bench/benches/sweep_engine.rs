//! Sweep engine: naive per-config scans versus the single-pass
//! shared-window engine, on a same-shape Constant-TW grid.
//!
//! Besides the Criterion report, the bench records a machine-readable
//! summary (median times and the speedup) in `BENCH_sweep.json` at the
//! repository root.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use opd_core::{DetectorConfig, InternedTrace, PhaseDetector, SweepEngine};
use opd_experiments::grid::default_plan_grid;
use opd_microvm::workloads::Workload;
use opd_microvm::Interpreter;
use opd_trace::ExecutionTrace;

const TRACE_LEN: u64 = 60_000;
const CW: usize = 500;
const JSON_SAMPLES: usize = 7;

fn lexgen_trace() -> InternedTrace {
    let program = Workload::Lexgen.program(1);
    let mut trace = ExecutionTrace::new();
    Interpreter::new(&program, Workload::Lexgen.default_seed())
        .with_fuel(TRACE_LEN)
        .run(&mut trace)
        .expect("workloads terminate");
    InternedTrace::from(trace.branches())
}

fn naive_pass(configs: &[DetectorConfig], trace: &InternedTrace) -> usize {
    let mut phases = 0;
    for &config in configs {
        let mut detector = PhaseDetector::new(config);
        phases += detector.run_interned_phases_only(trace).len();
    }
    phases
}

fn engine_pass(engine: &SweepEngine<'_>, trace: &InternedTrace) -> usize {
    engine.run_all(trace).iter().map(Vec::len).sum()
}

fn median_millis(mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..JSON_SAMPLES)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    samples[samples.len() / 2]
}

fn write_summary(configs: usize, trace_len: usize, naive_ms: f64, engine_ms: f64) {
    let speedup = naive_ms / engine_ms;
    let json = format!(
        "{{\n  \"bench\": \"sweep_engine\",\n  \"workload\": \"lexgen\",\n  \"trace_len\": {trace_len},\n  \"configs\": {configs},\n  \"shape\": {{ \"cw\": {CW}, \"tw\": {CW}, \"skip\": 1 }},\n  \"scans\": {{ \"naive\": {configs}, \"engine\": 1 }},\n  \"samples\": {JSON_SAMPLES},\n  \"naive_ms\": {naive_ms:.3},\n  \"engine_ms\": {engine_ms:.3},\n  \"speedup\": {speedup:.2}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
    std::fs::write(path, &json).expect("write BENCH_sweep.json");
    println!("sweep_engine: naive {naive_ms:.1} ms, engine {engine_ms:.1} ms, speedup {speedup:.2}x -> {path}");
}

fn bench_sweep_engine(c: &mut Criterion) {
    let trace = lexgen_trace();
    // 28 Constant-TW configs, all with shape (500, 500, 1) — the same
    // grid `opd plan` analyzes by default.
    let configs = default_plan_grid();
    assert!(configs.len() >= 28, "grid too small: {}", configs.len());
    let engine = SweepEngine::new(&configs);
    assert_eq!(engine.total_scans(), 1, "grid must share one scan");
    // Both passes must agree before being compared for speed.
    assert_eq!(naive_pass(&configs, &trace), engine_pass(&engine, &trace));

    let mut group = c.benchmark_group("sweep_engine");
    group.sample_size(10);
    group.throughput(Throughput::Elements(TRACE_LEN * configs.len() as u64));
    group.bench_function("naive_28_configs", |b| {
        b.iter(|| black_box(naive_pass(&configs, &trace)));
    });
    group.bench_function("shared_pass_28_configs", |b| {
        b.iter(|| black_box(engine_pass(&engine, &trace)));
    });
    group.finish();

    let naive_ms = median_millis(|| {
        black_box(naive_pass(&configs, &trace));
    });
    let engine_ms = median_millis(|| {
        black_box(engine_pass(&engine, &trace));
    });
    write_summary(configs.len(), trace.len(), naive_ms, engine_ms);
}

criterion_group!(benches, bench_sweep_engine);
criterion_main!(benches);
