//! Component throughput: detector element rate per model and window
//! policy, baseline forest construction and MPL solving, and the
//! scoring metric.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

use opd_baseline::CallLoopForest;
use opd_core::{
    AnalyzerPolicy, DetectorConfig, InternedTrace, ModelPolicy, PhaseDetector, TwPolicy,
};
use opd_microvm::workloads::Workload;
use opd_microvm::Interpreter;
use opd_scoring::score_intervals;
use opd_trace::ExecutionTrace;

const TRACE_LEN: u64 = 50_000;

fn truncated_trace(w: Workload) -> ExecutionTrace {
    let program = w.program(1);
    let mut trace = ExecutionTrace::new();
    Interpreter::new(&program, w.default_seed())
        .with_fuel(TRACE_LEN)
        .run(&mut trace)
        .expect("workloads terminate");
    trace
}

fn bench_detector(c: &mut Criterion) {
    let trace = truncated_trace(Workload::Ruleng);
    let interned = InternedTrace::from(trace.branches());
    let mut group = c.benchmark_group("detector");
    group.throughput(Throughput::Elements(TRACE_LEN));
    for (name, model, tw) in [
        (
            "unweighted_constant",
            ModelPolicy::UnweightedSet,
            TwPolicy::Constant,
        ),
        (
            "weighted_constant",
            ModelPolicy::WeightedSet,
            TwPolicy::Constant,
        ),
        (
            "unweighted_adaptive",
            ModelPolicy::UnweightedSet,
            TwPolicy::Adaptive,
        ),
        (
            "weighted_adaptive",
            ModelPolicy::WeightedSet,
            TwPolicy::Adaptive,
        ),
    ] {
        let config = DetectorConfig::builder()
            .current_window(1_000)
            .tw_policy(tw)
            .model(model)
            .analyzer(AnalyzerPolicy::Threshold(0.6))
            .build()
            .expect("valid config");
        group.bench_function(name, |b| {
            b.iter_batched(
                || PhaseDetector::new(config),
                |mut d| black_box(d.run_interned(&interned)),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_interning(c: &mut Criterion) {
    let trace = truncated_trace(Workload::Ruleng);
    let mut group = c.benchmark_group("interning");
    group.throughput(Throughput::Elements(TRACE_LEN));
    group.bench_function("intern_trace", |b| {
        b.iter(|| black_box(InternedTrace::from(trace.branches())));
    });
    group.finish();
}

fn bench_baseline(c: &mut Criterion) {
    let trace = truncated_trace(Workload::Srccomp);
    let mut group = c.benchmark_group("baseline");
    group.throughput(Throughput::Elements(TRACE_LEN));
    group.bench_function("forest_build", |b| {
        b.iter(|| black_box(CallLoopForest::build(&trace).expect("well nested")));
    });
    let forest = CallLoopForest::build(&trace).expect("well nested");
    group.bench_function("solve_mpl_1k", |b| {
        b.iter(|| black_box(forest.solve(1_000)));
    });
    group.bench_function("solve_mpl_100k", |b| {
        b.iter(|| black_box(forest.solve(100_000)));
    });
    group.finish();
}

fn bench_scoring(c: &mut Criterion) {
    let trace = truncated_trace(Workload::Audiodec);
    let forest = CallLoopForest::build(&trace).expect("well nested");
    let oracle = forest.solve(1_000);
    let interned = InternedTrace::from(trace.branches());
    let config = DetectorConfig::builder()
        .current_window(500)
        .build()
        .expect("valid");
    let mut detector = PhaseDetector::new(config);
    let _ = detector.run_interned(&interned);
    let detected = opd_core::detected_intervals(detector.detected_phases(), TRACE_LEN);
    let mut group = c.benchmark_group("scoring");
    group.bench_function("score_intervals", |b| {
        b.iter(|| black_box(score_intervals(&detected, &oracle)));
    });
    group.finish();
}

fn bench_detector_per_workload(c: &mut Criterion) {
    // The default detector across every workload's first 50K branches:
    // how trace character (working-set size, phase churn) moves the
    // per-element cost.
    let config = DetectorConfig::builder()
        .current_window(1_000)
        .build()
        .expect("valid config");
    let mut group = c.benchmark_group("detector_per_workload");
    group.throughput(Throughput::Elements(TRACE_LEN));
    for w in Workload::ALL {
        let trace = truncated_trace(w);
        let interned = InternedTrace::from(trace.branches());
        group.bench_function(w.name(), |b| {
            b.iter_batched(
                || PhaseDetector::new(config),
                |mut d| black_box(d.run_interned(&interned)),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_weighted_ablation(c: &mut Criterion) {
    // Ablation of a core design choice: the weighted model's
    // incrementally maintained integer min-sum (exact at window
    // capacity) versus recomputing the similarity from the distinct
    // CW sites on every step.
    let trace = truncated_trace(Workload::Ruleng);
    let interned = InternedTrace::from(trace.branches());
    let mut group = c.benchmark_group("ablation");
    group.throughput(Throughput::Elements(TRACE_LEN));
    for (name, tracked) in [
        ("weighted_incremental", true),
        ("weighted_recompute", false),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut w = opd_core::Windows::with_weighted_tracking(1_000, 1_000, tracked);
                w.ensure_sites(interned.distinct_count() as usize);
                let mut acc = 0.0;
                for &id in interned.ids() {
                    w.push(id, false);
                    acc += w.weighted_similarity();
                }
                black_box(acc)
            });
        });
    }
    group.finish();
}

fn bench_microvm(c: &mut Criterion) {
    let mut group = c.benchmark_group("microvm");
    group.throughput(Throughput::Elements(TRACE_LEN));
    group.bench_function("interpret_ruleng", |b| {
        b.iter(|| black_box(truncated_trace(Workload::Ruleng)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_detector,
    bench_interning,
    bench_baseline,
    bench_scoring,
    bench_detector_per_workload,
    bench_weighted_ablation,
    bench_microvm
);
criterion_main!(benches);
