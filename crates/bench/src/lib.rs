//! Benchmark crate: all content lives in `benches/`.
//!
//! See the workspace's `opd-bench/benches/` directory for one Criterion
//! benchmark per paper table/figure plus component throughput
//! benchmarks.
