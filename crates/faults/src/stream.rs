//! Stream-level injectors: faults applied to a *decoded* trace,
//! producing a well-formed but lossy [`ExecutionTrace`].
//!
//! Byte-level faults (see [`crate::bytes`]) exercise the decoder;
//! stream-level faults model what reaches the detector *after* a lossy
//! transport or a resync pass — elements dropped, duplicated, or lost
//! in bursts, events missing. Event offsets are remapped so the
//! output trace always satisfies the trace invariants.
//!
//! All injectors share the draw-per-candidate discipline of the byte
//! layer: the fault set at a low rate nests inside the fault set at
//! any higher rate under the same seed.

use opd_trace::{BranchTrace, CallLoopEvent, CallLoopTrace, ExecutionTrace};

use crate::{FaultLedger, FaultRng};

/// Rebuilds a trace emitting element `i` exactly `copies[i]` times,
/// remapping each event offset to the number of emitted elements
/// before it.
fn rebuild(trace: &ExecutionTrace, copies: &[u32]) -> ExecutionTrace {
    let elements = trace.branches().as_slice();
    debug_assert_eq!(elements.len(), copies.len());

    let mut branches = BranchTrace::with_capacity(elements.len());
    // prefix[o] = emitted count among the first o elements: the new
    // offset of an event that sat at offset o in the clean trace.
    let mut prefix = Vec::with_capacity(elements.len() + 1);
    prefix.push(0u64);
    for (e, &c) in elements.iter().zip(copies) {
        for _ in 0..c {
            branches.push(*e);
        }
        prefix.push(prefix.last().copied().unwrap_or(0) + u64::from(c));
    }

    let mut events = CallLoopTrace::new();
    for ev in trace.events() {
        let o = usize::try_from(ev.offset()).unwrap_or(prefix.len() - 1);
        let new_offset = prefix[o.min(prefix.len() - 1)];
        // Invariant: prefix is non-decreasing, so remapped offsets are
        // too — this push cannot fail.
        let _ = events.try_push(CallLoopEvent::new(ev.kind(), new_offset));
    }
    ExecutionTrace::try_from_parts(branches, events)
        .expect("remapped offsets are bounded by the emitted branch count")
}

/// Drops each branch element independently with probability `rate`,
/// remapping event offsets onto the surviving stream.
pub fn drop_branches(
    trace: &ExecutionTrace,
    rate: f64,
    seed: u64,
) -> (ExecutionTrace, FaultLedger) {
    let mut rng = FaultRng::new(seed);
    let copies: Vec<u32> = (0..trace.branches().len())
        .map(|_| u32::from(rng.next_unit() >= rate))
        .collect();
    let mut ledger = FaultLedger::new();
    ledger.dropped_branches = copies.iter().filter(|&&c| c == 0).count() as u64;
    (rebuild(trace, &copies), ledger)
}

/// Duplicates each branch element independently with probability
/// `rate` (the duplicate is emitted immediately after the original).
pub fn duplicate_branches(
    trace: &ExecutionTrace,
    rate: f64,
    seed: u64,
) -> (ExecutionTrace, FaultLedger) {
    let mut rng = FaultRng::new(seed);
    let copies: Vec<u32> = (0..trace.branches().len())
        .map(|_| if rng.next_unit() < rate { 2 } else { 1 })
        .collect();
    let mut ledger = FaultLedger::new();
    ledger.duplicated_branches = copies.iter().filter(|&&c| c == 2).count() as u64;
    (rebuild(trace, &copies), ledger)
}

/// Drops contiguous runs of `burst_len` branch elements: the branch
/// stream is chunked and each chunk is lost wholesale with
/// probability `rate`.
pub fn burst_drop_branches(
    trace: &ExecutionTrace,
    rate: f64,
    seed: u64,
    burst_len: usize,
) -> (ExecutionTrace, FaultLedger) {
    let burst_len = burst_len.max(1);
    let n = trace.branches().len();
    let mut rng = FaultRng::new(seed);
    let mut copies = vec![1u32; n];
    let mut ledger = FaultLedger::new();
    for chunk_start in (0..n).step_by(burst_len) {
        if rng.next_unit() < rate {
            let end = (chunk_start + burst_len).min(n);
            copies[chunk_start..end].fill(0);
            ledger.dropped_branches += (end - chunk_start) as u64;
        }
    }
    (rebuild(trace, &copies), ledger)
}

/// Delivers branch elements out of order, with bounded displacement:
/// each element is independently *delayed* with probability `rate`,
/// and a delayed element re-enters the stream up to `max_delay`
/// positions later than it was produced. Order among undelayed
/// elements (and among equally-delayed ones) is preserved — the model
/// of a lossy transport that retransmits late, not one that shuffles.
///
/// Events are untouched: the stream keeps its length, so every event
/// offset remains valid. The ledger counts exactly the elements whose
/// delivered position differs from their produced position (a delayed
/// element that happens to land back in place is not a fault).
///
/// Two draws are consumed per element (the delay decision and the
/// delay distance) regardless of `rate`, preserving the nesting
/// discipline: the delayed set at a low rate is a subset of the set
/// at any higher rate under the same seed.
pub fn reorder_branches(
    trace: &ExecutionTrace,
    rate: f64,
    seed: u64,
    max_delay: usize,
) -> (ExecutionTrace, FaultLedger) {
    let max_delay = max_delay.max(1) as u64;
    let elements = trace.branches().as_slice();
    let n = elements.len();
    let mut rng = FaultRng::new(seed);
    // Delivery key: produced position, pushed forward by the drawn
    // delay. A stable sort on (key, produced position) yields bounded
    // out-of-order delivery.
    let mut keys: Vec<u64> = Vec::with_capacity(n);
    for i in 0..n {
        let delayed = rng.next_unit() < rate;
        let distance = (rng.next_unit() * max_delay as f64).floor() as u64 % max_delay + 1;
        keys.push(i as u64 + if delayed { distance } else { 0 });
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (keys[i], i as u64));

    let mut branches = BranchTrace::with_capacity(n);
    let mut ledger = FaultLedger::new();
    for (pos, &i) in order.iter().enumerate() {
        if i != pos {
            ledger.reordered_branches += 1;
        }
        branches.push(elements[i]);
    }
    let out = ExecutionTrace::try_from_parts(branches, trace.events().clone())
        .expect("the stream keeps its length, so event offsets stay valid");
    (out, ledger)
}

/// Drops each call-loop event independently with probability `rate`.
/// The branch stream is untouched.
pub fn drop_events(trace: &ExecutionTrace, rate: f64, seed: u64) -> (ExecutionTrace, FaultLedger) {
    let mut rng = FaultRng::new(seed);
    let mut ledger = FaultLedger::new();
    let mut events = CallLoopTrace::new();
    for ev in trace.events() {
        if rng.next_unit() < rate {
            ledger.dropped_events += 1;
        } else {
            // Invariant: a subsequence of a non-decreasing sequence is
            // non-decreasing — this push cannot fail.
            let _ = events.try_push(*ev);
        }
    }
    let out = ExecutionTrace::try_from_parts(trace.branches().clone(), events)
        .expect("surviving events keep their in-range offsets");
    (out, ledger)
}

#[cfg(test)]
mod tests {
    use super::*;
    use opd_trace::{LoopId, MethodId, ProfileElement, TraceSink};

    fn sample(branches: u32) -> ExecutionTrace {
        let mut t = ExecutionTrace::new();
        t.record_method_enter(MethodId::new(2));
        for i in 0..branches {
            if i % 8 == 0 {
                t.record_loop_enter(LoopId::new(i / 8));
            }
            t.record_branch(ProfileElement::new(MethodId::new(2), i % 31, i % 2 == 0));
            if i % 8 == 7 {
                t.record_loop_exit(LoopId::new(i / 8));
            }
        }
        t.record_method_exit(MethodId::new(2));
        t
    }

    #[test]
    fn drop_ledger_matches_shrinkage_and_stays_valid() {
        let t = sample(500);
        for seed in 0..6 {
            let (out, ledger) = drop_branches(&t, 0.25, seed);
            assert_eq!(out.branches().len() as u64, 500 - ledger.dropped_branches);
            assert!(ledger.dropped_branches > 0);
            assert_eq!(out.events().len(), t.events().len());
        }
    }

    #[test]
    fn duplicate_ledger_matches_growth() {
        let t = sample(500);
        let (out, ledger) = duplicate_branches(&t, 0.2, 3);
        assert_eq!(
            out.branches().len() as u64,
            500 + ledger.duplicated_branches
        );
        assert!(ledger.duplicated_branches > 0);
    }

    #[test]
    fn burst_drop_loses_whole_chunks() {
        let t = sample(512);
        let (out, ledger) = burst_drop_branches(&t, 0.3, 7, 64);
        assert_eq!(ledger.dropped_branches % 64, 0);
        assert_eq!(out.branches().len() as u64, 512 - ledger.dropped_branches);
    }

    #[test]
    fn drop_events_keeps_branches_intact() {
        let t = sample(256);
        let (out, ledger) = drop_events(&t, 0.5, 11);
        assert_eq!(out.branches(), t.branches());
        assert_eq!(
            out.events().len() as u64 + ledger.dropped_events,
            t.events().len() as u64
        );
        assert!(ledger.dropped_events > 0);
    }

    #[test]
    fn event_offsets_remap_onto_surviving_stream() {
        // Three branches with a loop around the middle one; dropping
        // the first branch must shift the loop's offsets left by one.
        let mut t = ExecutionTrace::new();
        t.record_branch(ProfileElement::new(MethodId::new(0), 0, true));
        t.record_loop_enter(LoopId::new(0));
        t.record_branch(ProfileElement::new(MethodId::new(0), 1, true));
        t.record_loop_exit(LoopId::new(0));
        t.record_branch(ProfileElement::new(MethodId::new(0), 2, true));

        // Find a seed whose draws drop exactly the first branch.
        for seed in 0..64 {
            let mut rng = FaultRng::new(seed);
            let drops: Vec<bool> = (0..3).map(|_| rng.next_unit() < 0.34).collect();
            if drops == [true, false, false] {
                let (out, ledger) = drop_branches(&t, 0.34, seed);
                assert_eq!(ledger.dropped_branches, 1);
                let offsets: Vec<u64> = out.events().iter().map(|e| e.offset()).collect();
                assert_eq!(offsets, vec![0, 1]);
                return;
            }
        }
        panic!("no seed in 0..64 produced the [drop, keep, keep] pattern");
    }

    #[test]
    fn rate_zero_is_identity_everywhere() {
        let t = sample(128);
        assert_eq!(drop_branches(&t, 0.0, 1).0, t);
        assert_eq!(duplicate_branches(&t, 0.0, 1).0, t);
        assert_eq!(burst_drop_branches(&t, 0.0, 1, 16).0, t);
        assert_eq!(drop_events(&t, 0.0, 1).0, t);
        assert_eq!(reorder_branches(&t, 0.0, 1, 8).0, t);
    }

    #[test]
    fn reorder_preserves_multiset_and_counts_displacements() {
        let t = sample(500);
        for seed in 0..6 {
            let (out, ledger) = reorder_branches(&t, 0.3, seed, 8);
            assert_eq!(out.branches().len(), t.branches().len());
            assert_eq!(out.events(), t.events());
            assert!(ledger.reordered_branches > 0);

            // The delivered stream is a permutation of the produced one.
            let mut produced = t.branches().as_slice().to_vec();
            let mut delivered = out.branches().as_slice().to_vec();
            produced.sort_unstable_by_key(|e| e.raw());
            delivered.sort_unstable_by_key(|e| e.raw());
            assert_eq!(produced, delivered);

            // The ledger counts exactly the displaced positions.
            let displaced = out
                .branches()
                .as_slice()
                .iter()
                .zip(t.branches().as_slice())
                .filter(|(a, b)| a != b)
                .count() as u64;
            // Distinct elements at the same position are displaced;
            // equal elements may or may not be (the ledger tracks
            // positions, not values), so it can only count more.
            assert!(ledger.reordered_branches >= displaced);
        }
    }

    #[test]
    fn reorder_displacement_is_bounded_by_max_delay() {
        // Distinct payloads so positions are recoverable from values.
        let mut t = ExecutionTrace::new();
        for i in 0..400u32 {
            t.record_branch(ProfileElement::new(MethodId::new(i), 0, true));
        }
        for max_delay in [1usize, 4, 16] {
            let (out, _) = reorder_branches(&t, 0.5, 9, max_delay);
            for (pos, e) in out.branches().as_slice().iter().enumerate() {
                let original = e.site().method().index() as usize;
                assert!(
                    pos.abs_diff(original) <= max_delay,
                    "element produced at {original} delivered at {pos} \
                     with max_delay {max_delay}"
                );
            }
        }
    }

    #[test]
    fn reorder_is_deterministic_in_seed() {
        let t = sample(300);
        let (a, la) = reorder_branches(&t, 0.4, 21, 6);
        let (b, lb) = reorder_branches(&t, 0.4, 21, 6);
        assert_eq!(a, b);
        assert_eq!(la, lb);
        let (c, _) = reorder_branches(&t, 0.4, 22, 6);
        assert_ne!(a, c, "different seeds should reorder differently");
    }
}
