//! Deterministic fault injection for phase-detection traces.
//!
//! Production traces are not pristine: bits flip in transit, transfers
//! are cut short, events are dropped or reordered. This crate provides
//! *seeded, composable* corruptions over both representations of a
//! trace, each returning an exact [`FaultLedger`] of what was
//! injected:
//!
//! * [`bytes`] — corruptions of the encoded buffer (bit flips, record
//!   swaps, truncation, burst corruption), to be decoded with
//!   [`opd_trace::decode_trace_resync`];
//! * [`stream`] — corruptions of the decoded trace (drop, duplicate,
//!   burst loss, event loss) that always yield a well-formed
//!   [`opd_trace::ExecutionTrace`] for the detector.
//!
//! Every injector draws one decision per candidate site from its
//! seeded [`FaultRng`] regardless of the fault rate, so the fault set
//! at rate `r1` nests inside the set at any `r2 >= r1` under the same
//! seed — accuracy-degradation curves over rate are monotone in the
//! injected faults by construction.
//!
//! [`FaultKind::apply`] is the one-call entry point used by the
//! `opd faults` degradation study: it routes byte-level kinds through
//! the resynchronizing decoder and stream-level kinds directly.
//!
//! # Examples
//!
//! ```
//! use opd_faults::FaultKind;
//! use opd_trace::{ExecutionTrace, MethodId, ProfileElement, TraceSink};
//!
//! let mut t = ExecutionTrace::new();
//! for i in 0..100 {
//!     t.record_branch(ProfileElement::new(MethodId::new(0), i % 7, true));
//! }
//! let outcome = FaultKind::BitFlip.apply(&t, 0.1, 42);
//! assert!(outcome.ledger.total() > 0);
//! // Detectable flips were skipped by the resync decoder.
//! let report = outcome.report.expect("byte-level fault decodes with a report");
//! assert_eq!(report.bad_elements, outcome.ledger.detectable_element_flips);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod bytes;
mod ledger;
mod rng;
pub mod stream;

use core::fmt;

use opd_trace::{decode_trace_resync, encode_trace, CorruptionReport, ExecutionTrace};

pub use ledger::FaultLedger;
pub use rng::FaultRng;

/// Burst length (in records) used by [`FaultKind::Burst`].
pub const DEFAULT_BURST_LEN: usize = 32;

/// Maximum displacement (in elements) used by [`FaultKind::Reorder`].
pub const DEFAULT_REORDER_DELAY: usize = 8;

/// One family of injected faults, at the granularity the degradation
/// study sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FaultKind {
    /// Random single-bit flips in packed branch records (byte level).
    BitFlip,
    /// Swaps of adjacent event records (byte level).
    EventSwap,
    /// Truncation of the encoded buffer's tail (byte level).
    Truncate,
    /// Burst corruption of contiguous branch records (byte level).
    Burst,
    /// Independent loss of branch elements (stream level).
    DropBranch,
    /// Independent duplication of branch elements (stream level).
    DuplicateBranch,
    /// Independent loss of call-loop events (stream level).
    DropEvent,
    /// Bounded out-of-order delivery of branch elements (stream
    /// level): delayed elements re-enter the stream up to
    /// [`DEFAULT_REORDER_DELAY`] positions late.
    Reorder,
}

/// What a fault application produced: the degraded trace, the exact
/// injection ledger, and — for byte-level kinds — the resync
/// decoder's corruption report.
#[derive(Debug, Clone)]
pub struct FaultOutcome {
    /// The degraded (but always well-formed) trace.
    pub trace: ExecutionTrace,
    /// Exactly what the injector did.
    pub ledger: FaultLedger,
    /// The decoder's view of the corrupted bytes; `None` for
    /// stream-level kinds, which never re-encode.
    pub report: Option<CorruptionReport>,
}

impl FaultKind {
    /// Every fault kind, in sweep order.
    pub const ALL: [FaultKind; 8] = [
        FaultKind::BitFlip,
        FaultKind::EventSwap,
        FaultKind::Truncate,
        FaultKind::Burst,
        FaultKind::DropBranch,
        FaultKind::DuplicateBranch,
        FaultKind::DropEvent,
        FaultKind::Reorder,
    ];

    /// Stable lowercase name, as used by the `opd faults` CLI and the
    /// benchmark artifact.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::BitFlip => "bitflip",
            FaultKind::EventSwap => "eventswap",
            FaultKind::Truncate => "truncate",
            FaultKind::Burst => "burst",
            FaultKind::DropBranch => "dropbranch",
            FaultKind::DuplicateBranch => "dupbranch",
            FaultKind::DropEvent => "dropevent",
            FaultKind::Reorder => "reorder",
        }
    }

    /// Returns `true` for kinds that corrupt the encoded buffer (and
    /// therefore exercise the resynchronizing decoder).
    #[must_use]
    pub fn is_byte_level(self) -> bool {
        matches!(
            self,
            FaultKind::BitFlip | FaultKind::EventSwap | FaultKind::Truncate | FaultKind::Burst
        )
    }

    /// Applies this fault to a clean trace at the given rate and seed.
    ///
    /// Byte-level kinds encode the trace, corrupt the buffer, and
    /// decode it back through [`decode_trace_resync`]; stream-level
    /// kinds transform the decoded representation directly. Either
    /// way the returned trace is well-formed and the ledger is exact.
    #[must_use]
    pub fn apply(self, clean: &ExecutionTrace, rate: f64, seed: u64) -> FaultOutcome {
        if self.is_byte_level() {
            let mut buf = encode_trace(clean).to_vec();
            let ledger = match self {
                FaultKind::BitFlip => bytes::flip_element_bits(&mut buf, rate, seed),
                FaultKind::EventSwap => bytes::swap_adjacent_events(&mut buf, rate, seed),
                FaultKind::Truncate => bytes::truncate_tail(&mut buf, rate),
                FaultKind::Burst => bytes::corrupt_burst(&mut buf, rate, seed, DEFAULT_BURST_LEN),
                _ => unreachable!("is_byte_level covered all byte kinds"),
            };
            let (trace, report) = decode_trace_resync(&buf);
            FaultOutcome {
                trace,
                ledger,
                report: Some(report),
            }
        } else {
            let (trace, ledger) = match self {
                FaultKind::DropBranch => stream::drop_branches(clean, rate, seed),
                FaultKind::DuplicateBranch => stream::duplicate_branches(clean, rate, seed),
                FaultKind::DropEvent => stream::drop_events(clean, rate, seed),
                FaultKind::Reorder => {
                    stream::reorder_branches(clean, rate, seed, DEFAULT_REORDER_DELAY)
                }
                _ => unreachable!("is_byte_level covered all byte kinds"),
            };
            FaultOutcome {
                trace,
                ledger,
                report: None,
            }
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for FaultKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        FaultKind::ALL
            .into_iter()
            .find(|k| k.name() == s)
            .ok_or_else(|| format!("unknown fault kind `{s}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opd_trace::{MethodId, ProfileElement, TraceSink};

    fn sample() -> ExecutionTrace {
        let mut t = ExecutionTrace::new();
        t.record_method_enter(MethodId::new(0));
        for i in 0..300 {
            if i % 10 == 0 {
                t.record_loop_enter(opd_trace::LoopId::new(i / 10));
            }
            t.record_branch(ProfileElement::new(MethodId::new(0), i % 13, i % 2 == 0));
            if i % 10 == 9 {
                t.record_loop_exit(opd_trace::LoopId::new(i / 10));
            }
        }
        t.record_method_exit(MethodId::new(0));
        t
    }

    #[test]
    fn every_kind_applies_and_rate_zero_is_lossless() {
        let t = sample();
        for kind in FaultKind::ALL {
            let clean = kind.apply(&t, 0.0, 1);
            assert!(clean.ledger.is_empty(), "{kind}: {}", clean.ledger);
            assert_eq!(clean.trace, t, "{kind}");
            assert_eq!(clean.report.is_some(), kind.is_byte_level(), "{kind}");

            let faulted = kind.apply(&t, 0.5, 1);
            assert!(faulted.ledger.total() > 0, "{kind} at rate 0.5");
        }
    }

    #[test]
    fn apply_is_deterministic_in_seed() {
        let t = sample();
        for kind in FaultKind::ALL {
            let a = kind.apply(&t, 0.3, 9);
            let b = kind.apply(&t, 0.3, 9);
            assert_eq!(a.trace, b.trace, "{kind}");
            assert_eq!(a.ledger, b.ledger, "{kind}");
        }
    }

    #[test]
    fn names_roundtrip() {
        for kind in FaultKind::ALL {
            assert_eq!(kind.name().parse::<FaultKind>(), Ok(kind));
        }
        assert!("frob".parse::<FaultKind>().is_err());
    }
}
