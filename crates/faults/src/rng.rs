//! A tiny deterministic generator for fault placement.

/// A seeded SplitMix64 generator.
///
/// Fault injection needs reproducible, portable randomness with no
/// external dependency; SplitMix64 passes BigCrush, is four lines
/// long, and every (seed, draw-index) pair maps to the same value on
/// every platform — which is what makes injected-fault ledgers exact.
///
/// # Examples
///
/// ```
/// use opd_faults::FaultRng;
/// let mut a = FaultRng::new(7);
/// let mut b = FaultRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultRng { state: seed }
    }

    /// Returns the next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform draw in `[0, 1)`.
    ///
    /// Injectors compare this against a fault *rate*: because the draw
    /// stream does not depend on the rate, the faults injected at rate
    /// `r1` are a subset of those at `r2 >= r1` under the same seed —
    /// the nesting that makes degradation curves monotone by
    /// construction.
    pub fn next_unit(&mut self) -> f64 {
        // 53 high bits → the standard uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform draw in `0..n`. `n` must be nonzero.
    pub fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "next_below needs a nonzero bound");
        // Modulo bias is ~n/2^64 — irrelevant for fault placement.
        self.next_u64() % n.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_well_spread() {
        let mut r = FaultRng::new(42);
        let a: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let mut r = FaultRng::new(42);
        let b: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(a, b);
        assert_ne!(a[0], a[1]);

        let mut r = FaultRng::new(1);
        for _ in 0..1000 {
            let u = r.next_unit();
            assert!((0.0..1.0).contains(&u));
            assert!(r.next_below(64) < 64);
        }
    }

    #[test]
    fn different_seeds_diverge() {
        assert_ne!(FaultRng::new(1).next_u64(), FaultRng::new(2).next_u64());
    }
}
