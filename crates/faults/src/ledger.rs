//! The exact record of what an injector did.

use core::fmt;

/// Per-category counts of every fault an injector actually applied.
///
/// Each injector fills only its own categories; ledgers from composed
/// injectors are combined with [`FaultLedger::merge`]. The categories
/// mirror [`opd_trace::CorruptionReport`] so seeded runs can assert
/// the resync decoder saw *exactly* what was injected.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct FaultLedger {
    /// Bit flips landing in a packed element's reserved bits — the
    /// decoder can (and must) detect these.
    pub detectable_element_flips: u64,
    /// Bit flips landing in the used 48 bits — the record stays
    /// well-formed but describes the wrong branch.
    pub silent_element_flips: u64,
    /// Adjacent event-record swaps that broke offset order (the
    /// decoder skips exactly one record per such swap).
    pub order_breaking_swaps: u64,
    /// Adjacent event-record swaps between equal offsets — harmless.
    pub benign_swaps: u64,
    /// Bytes removed from the end of the buffer.
    pub truncated_bytes: u64,
    /// Branch records overwritten by burst corruption (all
    /// detectable).
    pub corrupted_burst_records: u64,
    /// Branch elements removed from the stream.
    pub dropped_branches: u64,
    /// Branch elements emitted twice.
    pub duplicated_branches: u64,
    /// Call-loop events removed from the stream.
    pub dropped_events: u64,
    /// Branch elements delivered at a different position than they
    /// were produced (bounded out-of-order delivery).
    pub reordered_branches: u64,
}

impl FaultLedger {
    /// A ledger with nothing injected.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns `true` if no fault was applied.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        *self == Self::default()
    }

    /// Total faults applied, over all categories.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.detectable_element_flips
            + self.silent_element_flips
            + self.order_breaking_swaps
            + self.benign_swaps
            + self.truncated_bytes
            + self.corrupted_burst_records
            + self.dropped_branches
            + self.duplicated_branches
            + self.dropped_events
            + self.reordered_branches
    }

    /// Folds another ledger into this one, category by category.
    pub fn merge(&mut self, other: &FaultLedger) {
        self.detectable_element_flips += other.detectable_element_flips;
        self.silent_element_flips += other.silent_element_flips;
        self.order_breaking_swaps += other.order_breaking_swaps;
        self.benign_swaps += other.benign_swaps;
        self.truncated_bytes += other.truncated_bytes;
        self.corrupted_burst_records += other.corrupted_burst_records;
        self.dropped_branches += other.dropped_branches;
        self.duplicated_branches += other.duplicated_branches;
        self.dropped_events += other.dropped_events;
        self.reordered_branches += other.reordered_branches;
    }
}

impl fmt::Display for FaultLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("no faults");
        }
        write!(
            f,
            "{} fault(s): {} detectable flip(s), {} silent flip(s), {} order-breaking \
             swap(s), {} benign swap(s), {} truncated byte(s), {} burst record(s), \
             {} dropped branch(es), {} duplicate(s), {} dropped event(s), \
             {} reordered branch(es)",
            self.total(),
            self.detectable_element_flips,
            self.silent_element_flips,
            self.order_breaking_swaps,
            self.benign_swaps,
            self.truncated_bytes,
            self.corrupted_burst_records,
            self.dropped_branches,
            self.duplicated_branches,
            self.dropped_events,
            self.reordered_branches,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_per_category() {
        let mut a = FaultLedger {
            detectable_element_flips: 1,
            dropped_branches: 2,
            ..FaultLedger::default()
        };
        let b = FaultLedger {
            detectable_element_flips: 3,
            dropped_events: 5,
            ..FaultLedger::default()
        };
        a.merge(&b);
        assert_eq!(a.detectable_element_flips, 4);
        assert_eq!(a.dropped_branches, 2);
        assert_eq!(a.dropped_events, 5);
        assert_eq!(a.total(), 11);
        assert!(!a.is_empty());
        assert!(a.to_string().contains("11 fault(s)"));
        assert_eq!(FaultLedger::new().to_string(), "no faults");
    }
}
