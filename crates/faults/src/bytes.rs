//! Byte-level injectors: corruptions applied to an *encoded* trace
//! buffer, exercising the resynchronizing decoder.
//!
//! Every injector draws one decision per candidate site from its own
//! [`FaultRng`] stream *regardless of the fault rate*, and applies the
//! fault iff the draw clears the rate. Under a fixed seed the faults
//! injected at rate `r1` are therefore a subset of those at any
//! `r2 >= r1` — degradation curves over rate are monotone in the
//! injected-fault set by construction.

use opd_trace::{BRANCH_RECORD_LEN, EVENT_COUNT_LEN, EVENT_RECORD_LEN, HEADER_LEN};

use crate::{FaultLedger, FaultRng};

/// First bit index (little-endian, within the packed `u64`) of the
/// reserved region of a [`opd_trace::ProfileElement`]: flips at or
/// above it are detectable, flips below it are silent.
const RESERVED_BIT: u64 = 48;

/// Reads the branch count from an encoded trace's header, clipped to
/// the number of whole records the buffer actually holds.
fn branch_records(buf: &[u8]) -> usize {
    if buf.len() < HEADER_LEN {
        return 0;
    }
    let declared = u64::from_le_bytes(buf[6..14].try_into().expect("8-byte slice"));
    let available = (buf.len() - HEADER_LEN) / BRANCH_RECORD_LEN;
    usize::try_from(declared)
        .unwrap_or(usize::MAX)
        .min(available)
}

/// Returns the byte offset of the event-count field, if present.
fn event_count_at(buf: &[u8]) -> Option<usize> {
    let at = HEADER_LEN + branch_records(buf) * BRANCH_RECORD_LEN;
    (buf.len() >= at + EVENT_COUNT_LEN).then_some(at)
}

/// Flips one random bit in each selected branch record.
///
/// Per record, draws `(keep-or-fault, bit index)` and flips the bit
/// iff the first draw clears `rate`. The ledger separates flips the
/// decoder can detect (reserved bits, >= 48) from silent ones (the
/// used 48 bits, which keep the record well-formed but change which
/// branch it describes).
pub fn flip_element_bits(buf: &mut [u8], rate: f64, seed: u64) -> FaultLedger {
    let mut rng = FaultRng::new(seed);
    let mut ledger = FaultLedger::new();
    for record in 0..branch_records(buf) {
        let u = rng.next_unit();
        let bit = rng.next_below(64);
        if u >= rate {
            continue;
        }
        let at = HEADER_LEN + record * BRANCH_RECORD_LEN + (bit / 8) as usize;
        buf[at] ^= 1 << (bit % 8);
        if bit >= RESERVED_BIT {
            ledger.detectable_element_flips += 1;
        } else {
            ledger.silent_element_flips += 1;
        }
    }
    ledger
}

/// Swaps disjoint adjacent pairs of 13-byte event records.
///
/// Pairs `(0,1), (2,3), ...` are each swapped iff their draw clears
/// `rate`. A swap between records with strictly increasing offsets
/// breaks the non-decreasing order invariant and costs the decoder
/// exactly one record (`order_breaking_swaps`); a swap between equal
/// offsets is counted as benign.
pub fn swap_adjacent_events(buf: &mut [u8], rate: f64, seed: u64) -> FaultLedger {
    let mut rng = FaultRng::new(seed);
    let mut ledger = FaultLedger::new();
    let Some(count_at) = event_count_at(buf) else {
        return ledger;
    };
    let declared = u64::from_le_bytes(
        buf[count_at..count_at + 8]
            .try_into()
            .expect("8-byte slice"),
    );
    let region = count_at + EVENT_COUNT_LEN;
    let available = (buf.len() - region) / EVENT_RECORD_LEN;
    let n_events = usize::try_from(declared)
        .unwrap_or(usize::MAX)
        .min(available);

    for pair in 0..n_events / 2 {
        let u = rng.next_unit();
        if u >= rate {
            continue;
        }
        let a = region + 2 * pair * EVENT_RECORD_LEN;
        let b = a + EVENT_RECORD_LEN;
        let offset_of =
            |at: usize| u64::from_le_bytes(buf[at + 5..at + 13].try_into().expect("8-byte slice"));
        // Offsets are non-decreasing in a valid trace, so either the
        // swap breaks order (strictly increasing pair) or it is a
        // no-op on ordering (equal pair).
        if offset_of(a) < offset_of(b) {
            ledger.order_breaking_swaps += 1;
        } else {
            ledger.benign_swaps += 1;
        }
        for i in 0..EVENT_RECORD_LEN {
            buf.swap(a + i, b + i);
        }
    }
    ledger
}

/// Cuts `rate` of the buffer's body (everything after the header) off
/// the end, simulating a connection dropped mid-transfer.
///
/// Deterministic in `rate` alone: a larger rate always cuts a superset
/// of the bytes a smaller rate cuts.
pub fn truncate_tail(buf: &mut Vec<u8>, rate: f64) -> FaultLedger {
    let mut ledger = FaultLedger::new();
    if buf.len() <= HEADER_LEN {
        return ledger;
    }
    let body = buf.len() - HEADER_LEN;
    #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
    let cut = ((body as f64) * rate.clamp(0.0, 1.0)).floor() as usize;
    buf.truncate(buf.len() - cut.min(body));
    ledger.truncated_bytes = cut as u64;
    ledger
}

/// Overwrites contiguous runs of branch records with detectably
/// corrupt values (reserved byte forced nonzero), simulating burst
/// loss on a link.
///
/// The branch region is divided into chunks of `burst_len` records;
/// each chunk is corrupted wholesale iff its draw clears `rate`. Every
/// corrupted record is detectable, so on a seeded run the decoder's
/// `bad_elements` equals `corrupted_burst_records` exactly.
pub fn corrupt_burst(buf: &mut [u8], rate: f64, seed: u64, burst_len: usize) -> FaultLedger {
    let mut rng = FaultRng::new(seed);
    let mut ledger = FaultLedger::new();
    let n = branch_records(buf);
    let burst_len = burst_len.max(1);
    let mut record = 0;
    while record < n {
        let burst = burst_len.min(n - record);
        let u = rng.next_unit();
        if u < rate {
            for r in record..record + burst {
                // Force the top reserved byte nonzero: detectable.
                buf[HEADER_LEN + r * BRANCH_RECORD_LEN + 7] = 0xFF;
            }
            ledger.corrupted_burst_records += burst as u64;
        }
        record += burst;
    }
    ledger
}

#[cfg(test)]
mod tests {
    use super::*;
    use opd_trace::{
        decode_trace_resync, encode_trace, ExecutionTrace, LoopId, MethodId, ProfileElement,
        TraceSink,
    };

    fn sample(branches: u32) -> ExecutionTrace {
        let mut t = ExecutionTrace::new();
        t.record_method_enter(MethodId::new(1));
        for i in 0..branches {
            if i % 10 == 0 {
                t.record_loop_enter(LoopId::new(i / 10));
            }
            t.record_branch(ProfileElement::new(MethodId::new(1), i % 50, i % 3 == 0));
            if i % 10 == 9 {
                t.record_loop_exit(LoopId::new(i / 10));
            }
        }
        t.record_method_exit(MethodId::new(1));
        t
    }

    #[test]
    fn reserved_bit_boundary_matches_element_packing() {
        // The ledger's detectable/silent split relies on bit 48 being
        // the first reserved bit of the packed element.
        let e = ProfileElement::new(MethodId::new(MethodId::MAX), 1, true);
        assert!(ProfileElement::try_from(e.raw() ^ (1 << RESERVED_BIT)).is_err());
        assert!(ProfileElement::try_from(e.raw() ^ (1 << (RESERVED_BIT - 1))).is_ok());
    }

    #[test]
    fn flip_ledger_matches_resync_report_exactly() {
        let bytes = encode_trace(&sample(400));
        for seed in 0..8 {
            let mut corrupted = bytes.to_vec();
            let ledger = flip_element_bits(&mut corrupted, 0.2, seed);
            let (decoded, report) = decode_trace_resync(&corrupted);
            assert_eq!(report.bad_elements, ledger.detectable_element_flips);
            // Silent flips survive decoding: the element count only
            // shrinks by the detectable flips.
            assert_eq!(
                decoded.branches().len() as u64,
                400 - ledger.detectable_element_flips
            );
            assert!(ledger.total() > 0, "rate 0.2 over 400 records");
        }
    }

    #[test]
    fn swap_ledger_matches_resync_out_of_order_count() {
        let bytes = encode_trace(&sample(400));
        for seed in 0..8 {
            let mut corrupted = bytes.to_vec();
            let ledger = swap_adjacent_events(&mut corrupted, 0.5, seed);
            let (_, report) = decode_trace_resync(&corrupted);
            assert_eq!(report.out_of_order_events, ledger.order_breaking_swaps);
            assert!(ledger.order_breaking_swaps + ledger.benign_swaps > 0);
        }
    }

    #[test]
    fn burst_ledger_matches_resync_bad_elements() {
        let bytes = encode_trace(&sample(400));
        for seed in 0..8 {
            let mut corrupted = bytes.to_vec();
            let ledger = corrupt_burst(&mut corrupted, 0.3, seed, 16);
            let (_, report) = decode_trace_resync(&corrupted);
            assert_eq!(report.bad_elements, ledger.corrupted_burst_records);
        }
    }

    #[test]
    fn truncation_is_monotone_and_decodes_lossily() {
        let bytes = encode_trace(&sample(100));
        let mut prev_cut = 0;
        for rate in [0.0, 0.1, 0.5, 0.9] {
            let mut cut = bytes.to_vec();
            let ledger = truncate_tail(&mut cut, rate);
            assert!(ledger.truncated_bytes >= prev_cut);
            prev_cut = ledger.truncated_bytes;
            // Whatever is left decodes without panicking.
            let (_, report) = decode_trace_resync(&cut);
            if rate == 0.0 {
                assert!(report.is_clean());
            }
        }
    }

    #[test]
    fn faults_nest_across_rates_under_one_seed() {
        // The defining property for monotone degradation curves: a
        // corruption present at a low rate is present at every higher
        // rate with the same seed.
        let bytes = encode_trace(&sample(300)).to_vec();
        let mut low = bytes.clone();
        let mut high = bytes.clone();
        flip_element_bits(&mut low, 0.05, 99);
        flip_element_bits(&mut high, 0.4, 99);
        for (i, (l, h)) in low.iter().zip(&high).enumerate() {
            if bytes[i] != *l {
                assert_eq!(l, h, "byte {i}: low-rate fault missing at high rate");
            }
        }
    }

    #[test]
    fn injectors_tolerate_headerless_buffers() {
        let mut tiny = b"OP".to_vec();
        assert!(flip_element_bits(&mut tiny, 1.0, 0).is_empty());
        assert!(swap_adjacent_events(&mut tiny, 1.0, 0).is_empty());
        assert!(truncate_tail(&mut tiny, 0.5).is_empty());
        assert!(corrupt_burst(&mut tiny, 1.0, 0, 4).is_empty());
    }
}
