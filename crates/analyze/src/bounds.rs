//! Exact worst-case bounds of one program execution, computed by a
//! memoized abstract interpretation of the IR over maximum argument
//! values.
//!
//! All arithmetic is checked: if any bound exceeds `u64`, the result is
//! saturated and flagged ([`StaticBounds::overflowed`]), which the lint
//! engine reports as `OPD-E004`.

use std::collections::{HashMap, HashSet};

use opd_microvm::{Interpreter, Program, Stmt};

use crate::flow::arg_upper_bound;

/// Worst-case bounds for a whole program execution.
///
/// Every bound is inclusive and sound: no run of the program (any seed,
/// unlimited fuel) can exceed it. The companion soundness tests compare
/// these against observed [`opd_microvm::RunSummary`] values and the
/// dynamic call-loop forest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticBounds {
    branches: u64,
    events: u64,
    call_depth: u64,
    nest_depth: u64,
    overflowed: bool,
}

impl StaticBounds {
    /// Computes the bounds for `program`.
    #[must_use]
    pub fn compute(program: &Program) -> Self {
        let mut eval = Evaluator {
            program,
            memo: HashMap::new(),
            in_progress: HashSet::new(),
            depth: 0,
            overflowed: false,
        };
        let entry = eval.func(program.entry().index() as usize, program.entry_arg());
        StaticBounds {
            branches: entry.branches,
            // The entry invocation itself emits method enter/exit.
            events: entry.events.saturating_add(2),
            call_depth: entry.call_depth.saturating_add(1),
            nest_depth: entry.nest.saturating_add(1),
            overflowed: eval.overflowed,
        }
    }

    /// Maximum number of profile elements any run can emit.
    #[must_use]
    pub fn branches(self) -> u64 {
        self.branches
    }

    /// Maximum number of call-loop events any run can emit.
    #[must_use]
    pub fn events(self) -> u64 {
        self.events
    }

    /// Maximum call-stack depth any run can reach (the entry frame
    /// counts as 1, matching [`opd_microvm::RunSummary::max_depth`]).
    #[must_use]
    pub fn call_depth(self) -> u64 {
        self.call_depth
    }

    /// Maximum nesting depth of the dynamic call-loop tree (the entry
    /// method execution counts as 1) — the ceiling on how many phase
    /// nesting levels the oracle hierarchy can expose.
    #[must_use]
    pub fn nest_depth(self) -> u64 {
        self.nest_depth
    }

    /// `true` if any bound overflowed `u64` (or the evaluation had to
    /// bail out of an unboundedly deep chain); overflowed bounds are
    /// saturated to `u64::MAX` and reported as `OPD-E004`.
    #[must_use]
    pub fn overflowed(self) -> bool {
        self.overflowed
    }

    /// `true` if the worst-case call depth exceeds the interpreter's
    /// default limit — the `OPD-W007` condition.
    #[must_use]
    pub fn exceeds_depth_limit(self) -> bool {
        self.call_depth > Interpreter::DEFAULT_DEPTH_LIMIT as u64
    }
}

/// Worst case of one function invocation (exclusive of the invocation's
/// own enter/exit events and stack frame).
#[derive(Debug, Clone, Copy, Default)]
struct FnBound {
    branches: u64,
    events: u64,
    /// Additional call frames the body can stack on top of its own.
    call_depth: u64,
    /// Deepest construct chain the body opens inside its method node.
    nest: u64,
}

const SATURATED: FnBound = FnBound {
    branches: u64::MAX,
    events: u64::MAX,
    call_depth: u64::MAX,
    nest: u64::MAX,
};

struct Evaluator<'p> {
    program: &'p Program,
    memo: HashMap<(usize, u32), FnBound>,
    in_progress: HashSet<(usize, u32)>,
    depth: usize,
    overflowed: bool,
}

impl Evaluator<'_> {
    /// Evaluation recursion cap. Deeper chains (a long `arg-1` ladder
    /// from a huge entry argument) saturate instead of recursing; such
    /// programs exceed the interpreter's 512-frame limit long before
    /// this cap, so precision there has no value.
    const DEPTH_CAP: usize = 1024;

    fn func(&mut self, f: usize, arg: u32) -> FnBound {
        let key = (f, arg);
        if let Some(&cached) = self.memo.get(&key) {
            return cached;
        }
        // Re-entering an in-progress (function, argument) pair means a
        // call cycle that does not decrease its argument: unbounded.
        if !self.in_progress.insert(key) {
            self.overflowed = true;
            return SATURATED;
        }
        if self.depth >= Self::DEPTH_CAP {
            self.in_progress.remove(&key);
            self.overflowed = true;
            return SATURATED;
        }
        self.depth += 1;
        let body = self.program.function(self.program.func_id(f)).body();
        let bound = self.block(body, arg);
        self.depth -= 1;
        self.in_progress.remove(&key);
        self.memo.insert(key, bound);
        bound
    }

    fn block(&mut self, stmts: &[Stmt], arg: u32) -> FnBound {
        let mut total = FnBound::default();
        for stmt in stmts {
            let s = self.stmt(stmt, arg);
            total.branches = self.add(total.branches, s.branches);
            total.events = self.add(total.events, s.events);
            total.call_depth = total.call_depth.max(s.call_depth);
            total.nest = total.nest.max(s.nest);
        }
        total
    }

    fn stmt(&mut self, stmt: &Stmt, arg: u32) -> FnBound {
        match stmt {
            Stmt::Branch(_) => FnBound {
                branches: 1,
                ..FnBound::default()
            },
            Stmt::Loop { trip, body, .. } => {
                let t = u64::from(trip.max_trip(arg));
                // Zero-trip loops still emit enter/exit and still open
                // a construct node; their body never runs.
                let b = if t == 0 {
                    FnBound::default()
                } else {
                    self.block(body, arg)
                };
                let body_events = self.mul(t, b.events);
                FnBound {
                    branches: self.mul(t, b.branches),
                    events: self.add(2, body_events),
                    call_depth: b.call_depth,
                    nest: self.add_depth(1, b.nest),
                }
            }
            Stmt::Call { callee, arg: expr } => {
                let callee_arg = arg_upper_bound(*expr, arg);
                let c = self.func(callee.index() as usize, callee_arg);
                FnBound {
                    branches: c.branches,
                    events: self.add(2, c.events),
                    call_depth: self.add_depth(1, c.call_depth),
                    nest: self.add_depth(1, c.nest),
                }
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                let t = self.block(then_body, arg);
                let e = self.block(else_body, arg);
                FnBound {
                    branches: self.add(1, t.branches.max(e.branches)),
                    events: t.events.max(e.events),
                    call_depth: t.call_depth.max(e.call_depth),
                    nest: t.nest.max(e.nest),
                }
            }
            Stmt::IfArgPositive { body } => {
                if arg == 0 {
                    FnBound::default()
                } else {
                    self.block(body, arg)
                }
            }
        }
    }

    fn add(&mut self, a: u64, b: u64) -> u64 {
        a.checked_add(b).unwrap_or_else(|| {
            self.overflowed = true;
            u64::MAX
        })
    }

    fn mul(&mut self, a: u64, b: u64) -> u64 {
        a.checked_mul(b).unwrap_or_else(|| {
            self.overflowed = true;
            u64::MAX
        })
    }

    /// Depth metrics saturate without raising the overflow flag: the
    /// flag means "event/branch counts are meaningless", while a
    /// saturated depth still reports correctly as "deeper than any
    /// limit".
    fn add_depth(&mut self, a: u64, b: u64) -> u64 {
        a.saturating_add(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opd_microvm::{ArgExpr, ProgramBuilder, TakenDist, Trip};
    use opd_trace::ExecutionTrace;

    fn bounds_of(b: &mut ProgramBuilder) -> StaticBounds {
        StaticBounds::compute(&b.build().unwrap())
    }

    #[test]
    fn flat_loop_bounds_are_exact() {
        let mut b = ProgramBuilder::new();
        let main = b.declare("main");
        b.define(main, |f| {
            f.repeat(Trip::Fixed(7), |l| {
                l.branch(TakenDist::Always);
                l.branch(TakenDist::Never);
            });
        });
        let s = bounds_of(&mut b);
        assert_eq!(s.branches(), 14);
        assert_eq!(s.events(), 2 + 2); // entry method + one loop
        assert_eq!(s.call_depth(), 1);
        assert_eq!(s.nest_depth(), 2); // method > loop
        assert!(!s.overflowed());
    }

    #[test]
    fn bounds_match_a_deterministic_run_exactly() {
        let mut b = ProgramBuilder::new();
        let helper = b.declare("helper");
        let main = b.declare("main");
        b.define(helper, |f| {
            f.repeat(Trip::Fixed(3), |l| {
                l.branch(TakenDist::Alternating);
            });
        });
        b.define(main, |f| {
            f.repeat(Trip::Fixed(5), |l| {
                l.call(helper, ArgExpr::Const(0));
            });
        });
        let p = b.entry(main).build().unwrap();
        let s = StaticBounds::compute(&p);
        let mut t = ExecutionTrace::new();
        let run = Interpreter::new(&p, 1).run(&mut t).unwrap();
        // Fully deterministic control flow: bounds are equalities.
        assert_eq!(s.branches(), run.branches);
        assert_eq!(s.events(), run.events);
        assert_eq!(s.call_depth(), run.max_depth as u64);
    }

    #[test]
    fn guarded_recursion_bounds_by_argument() {
        let mut b = ProgramBuilder::new();
        let rec = b.declare("rec");
        let main = b.declare("main");
        b.define(rec, |f| {
            f.branch(TakenDist::Always);
            f.if_arg_positive(|g| {
                g.call(rec, ArgExpr::Dec);
            });
        });
        b.define(main, |f| {
            f.call(rec, ArgExpr::Const(5));
        });
        b.entry(main);
        let s = bounds_of(&mut b);
        assert_eq!(s.branches(), 6); // args 5,4,3,2,1,0
        assert_eq!(s.call_depth(), 7); // main + six rec frames
        assert!(!s.overflowed());
    }

    #[test]
    fn unguarded_recursion_saturates() {
        let mut b = ProgramBuilder::new();
        let rec = b.declare("rec");
        b.define(rec, |f| {
            f.call(rec, ArgExpr::Const(1));
        });
        let s = bounds_of(&mut b);
        assert!(s.overflowed());
        assert!(s.exceeds_depth_limit());
    }

    #[test]
    fn nested_huge_loops_overflow_u64() {
        let mut b = ProgramBuilder::new();
        let main = b.declare("main");
        b.define(main, |f| {
            f.repeat(Trip::Fixed(4_000_000_000), |a| {
                a.repeat(Trip::Fixed(4_000_000_000), |c| {
                    c.repeat(Trip::Fixed(4_000_000_000), |d| {
                        d.branch(TakenDist::Always);
                    });
                });
            });
        });
        let s = bounds_of(&mut b);
        assert!(s.overflowed());
        assert_eq!(s.branches(), u64::MAX);
    }

    #[test]
    fn deep_dec_recursion_exceeds_interpreter_limit() {
        let mut b = ProgramBuilder::new();
        let rec = b.declare("rec");
        b.define(rec, |f| {
            f.branch(TakenDist::Always);
            f.if_arg_positive(|g| {
                g.call(rec, ArgExpr::Dec);
            });
        });
        b.entry_arg(600);
        let s = bounds_of(&mut b);
        assert!(!s.overflowed()); // 601 frames: precisely evaluable
        assert_eq!(s.call_depth(), 601);
        assert!(s.exceeds_depth_limit());
    }

    #[test]
    fn half_recursion_is_logarithmic() {
        let mut b = ProgramBuilder::new();
        let rec = b.declare("rec");
        b.define(rec, |f| {
            f.branch(TakenDist::Always);
            f.if_arg_positive(|g| {
                g.call(rec, ArgExpr::Half);
            });
        });
        b.entry_arg(1 << 20);
        let s = bounds_of(&mut b);
        assert!(!s.overflowed());
        assert_eq!(s.call_depth(), 22); // 2^20 halves to 0 in 21 steps
        assert!(!s.exceeds_depth_limit());
    }
}
