//! Resource certificates: two-sided static bounds on what one
//! detector config spends on one program.
//!
//! [`ConfigCost`](crate::ConfigCost) prices the worst case from two
//! scalars (element bound × alphabet bound). A certificate starts
//! from the [`AbsInt`] intervals instead and pushes them through the
//! detector's *window semantics* — warm-up, phase-end flushes,
//! re-warming — so it bounds quantities the flat cost model cannot
//! see at all (phase-transition counts, occupancy and memory
//! high-water marks) and bounds the compare-op cost strictly tighter
//! whenever the warm-up is non-trivial (`ceil((cw+tw)/skip) > 1`):
//! the steps spent filling the windows are provably never judged.
//!
//! Every interval is *sound*, verified two ways in this repo's style:
//! a differential suite (`tests/cert_bounds.rs`) pins every dynamic
//! counter from `opd-obs` inside its certified interval across all
//! workloads × the default grid, and a proptest suite
//! (`crates/analyze/tests/cert_soundness.rs`) does the same for
//! arbitrary generated programs and configs.
//!
//! The derivation leans on window facts locked by `opd-core`'s own
//! tests:
//!
//! * Warm-up is deterministic and purely occupancy-based: the windows
//!   warm exactly when `cw + tw` elements have been pushed, i.e. at
//!   step `w0 = ceil((cw+tw)/skip)`; no earlier step is judged.
//! * A phase-end flush (`clear_keep_last`) keeps at most `skip`
//!   elements and un-warms; re-warming takes exactly
//!   `m = ceil(max(cw+tw−skip, tw)/skip)` further steps (the kept
//!   elements all land in the CW, the TW must refill from scratch at
//!   one shift per push).
//! * Phase starts are therefore at least `1 + m` judged-accounted
//!   steps apart, which turns the judged-step bound into a
//!   phase-count bound.
//! * Window capacities never change after construction (the Adaptive
//!   policy only suppresses TW eviction), so Constant-TW occupancy is
//!   capped at `tw + max(cw, skip)` while Adaptive occupancy is only
//!   capped by the element count.
//!
//! The memory interval maps the interned-site interval through the
//! closed-form SWAR layout ([`opd_core::swar_footprint_bytes`]), and
//! [`ResourceCertificate::admits`] is the admission-control entry
//! point a streaming service checks before accepting a session.

use opd_core::{swar_footprint_bytes, DetectorConfig, ModelPolicy, TwPolicy};
use opd_microvm::Program;

use crate::absint::AbsInt;
use crate::cost::{self, ConfigCost};
use crate::diag::{Code, Diagnostic};
use crate::equiv::always_fires;
use crate::flow::FlowInfo;

/// A closed interval `[lo, hi]` of `u64` resource counts. `hi ==
/// u64::MAX` means "unbounded" (a saturated analysis) and renders as
/// `null` in JSON.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CertInterval {
    lo: u64,
    hi: u64,
}

impl CertInterval {
    /// Creates an interval.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn new(lo: u64, hi: u64) -> Self {
        assert!(lo <= hi, "certificate interval [{lo}, {hi}] is inverted");
        CertInterval { lo, hi }
    }

    /// Lower bound.
    #[must_use]
    pub fn lo(self) -> u64 {
        self.lo
    }

    /// Upper bound (`u64::MAX` = unbounded).
    #[must_use]
    pub fn hi(self) -> u64 {
        self.hi
    }

    /// `true` if `v` lies inside the interval.
    #[must_use]
    pub fn contains(self, v: u64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// The interval midpoint (overflow-safe), the point estimate the
    /// runner's LPT pricing uses.
    #[must_use]
    pub fn midpoint(self) -> u64 {
        self.lo + (self.hi - self.lo) / 2
    }

    /// Renders as a two-element JSON array, `hi = u64::MAX` as `null`.
    fn json(self) -> String {
        if self.hi == u64::MAX {
            format!("[{},null]", self.lo)
        } else {
            format!("[{},{}]", self.lo, self.hi)
        }
    }
}

/// Sound two-sided bounds on every resource one detector config can
/// consume on one program, derived without running anything.
#[derive(Debug, Clone)]
pub struct ResourceCertificate {
    elements: CertInterval,
    steps: CertInterval,
    judged_steps: CertInterval,
    compare_ops: CertInterval,
    phases: CertInterval,
    occupancy: CertInterval,
    sites: CertInterval,
    memory_bytes: CertInterval,
    scans: CertInterval,
    cost_compare_bound: Option<u64>,
    warm_step: u64,
    warm_fill: u64,
    fuel: u64,
    truncated: bool,
    vacuous: bool,
}

/// The cheapest per-judge cost the kernel can realize for `model`
/// with at least `sites_lo` distinct sites: the dense-mode formula
/// (rank mode always dominates it), monotone in the site count.
fn dense_min_ops(model: ModelPolicy, sites_lo: u64) -> u64 {
    let d = sites_lo.max(1);
    let lanes = d.div_ceil(64);
    match model {
        ModelPolicy::UnweightedSet => lanes.saturating_add(2),
        ModelPolicy::WeightedSet => d.saturating_add(2),
        ModelPolicy::Pearson => d.saturating_add(lanes).saturating_add(2),
    }
}

impl ResourceCertificate {
    /// Certifies `config` against `program` under an interpreter fuel
    /// limit of `fuel` elements (`u64::MAX` = unlimited), running the
    /// abstract interpretation internally. Use [`Self::from_parts`]
    /// to amortize one [`AbsInt`] across a config grid.
    #[must_use]
    pub fn of(program: &Program, config: &DetectorConfig, fuel: u64) -> Self {
        let absint = AbsInt::of(program);
        let flow = FlowInfo::compute(program);
        Self::from_parts(&absint, &flow, config, fuel)
    }

    /// Certifies `config` from a precomputed abstract interpretation
    /// and flow analysis of the same program.
    #[must_use]
    pub fn from_parts(
        absint: &AbsInt,
        flow: &FlowInfo,
        config: &DetectorConfig,
        fuel: u64,
    ) -> Self {
        let cw = config.current_window() as u64;
        let tw = config.trailing_window() as u64;
        let skip = (config.skip_factor() as u64).max(1);
        let warm_fill = cw.saturating_add(tw);

        // Elements: the interpreter records at most `fuel` elements
        // (the fuel check precedes the record), so the static interval
        // clamps at the fuel on both ends.
        let static_lo = absint.elements().lo();
        let static_hi = absint.elements().hi();
        let truncated = static_hi > fuel;
        let elements = CertInterval::new(static_lo.min(fuel), static_hi.min(fuel));

        // Steps: the detector drives the trace in skip-sized chunks.
        let steps = CertInterval::new(elements.lo().div_ceil(skip), elements.hi().div_ceil(skip));

        // Warm-up: the windows warm exactly when `cw + tw` elements
        // have been pushed — during step `w0`. Steps `1..w0` are
        // never judged.
        let w0 = warm_fill.div_ceil(skip).max(1);

        // Re-warm cost after a phase-end flush: at most `skip` kept
        // elements land in the CW, the TW refills one shift per push.
        let rewarm = warm_fill.saturating_sub(skip).max(tw).div_ceil(skip);

        let judged_hi = steps.hi().saturating_sub(w0 - 1);

        // Phases: the first needs one judged step; each further start
        // pays at least a flush re-warm plus its own entry step.
        let gap = rewarm.saturating_add(1);
        let mut phases_hi = if judged_hi == 0 {
            0
        } else {
            1 + (judged_hi - 1) / gap
        };
        if elements.hi() < warm_fill {
            // The windows can never warm: provably silent (A301).
            phases_hi = 0;
        }
        let warm_guaranteed = elements.lo() >= warm_fill;
        let mut phases_lo = 0;
        if always_fires(config) {
            // The analyzer judges *Phase* at every warm step: exactly
            // one phase starts once warm and it never ends.
            if phases_hi > 0 {
                phases_hi = 1;
            }
            if warm_guaranteed {
                phases_lo = 1;
            }
        }
        let phases = CertInterval::new(phases_lo.min(phases_hi), phases_hi);

        // Judged steps: every warm step is judged; each phase end
        // un-warms for at most `rewarm` steps.
        let judged_lo = steps
            .lo()
            .saturating_sub(w0 - 1)
            .saturating_sub(phases.hi().saturating_mul(rewarm));
        let judged_steps = CertInterval::new(judged_lo.min(judged_hi), judged_hi);

        // Occupancy: fills monotonically to `cw + tw` before the
        // first flush; Constant TW then caps at `tw + max(cw, skip)`
        // (an over-full flush remainder drains one shift per push),
        // Adaptive TW never evicts.
        let occ_hi = match config.tw_policy() {
            TwPolicy::Constant => elements.hi().min(tw.saturating_add(cw.max(skip))),
            TwPolicy::Adaptive => elements.hi(),
        };
        // The lower bound differs by policy: Constant TW provably
        // reaches the full warm fill, but an Adaptive TW may shed
        // elements while re-anchoring, so only the sliding CW (whose
        // capacity no policy changes) is guaranteed to peak full.
        let occ_lo = match config.tw_policy() {
            TwPolicy::Constant => elements.lo().min(warm_fill),
            TwPolicy::Adaptive => elements.lo().min(cw),
        };
        let occupancy = CertInterval::new(occ_lo.min(occ_hi), occ_hi);

        // Interned sites, from the per-site outcome intervals; the
        // flow alphabet bound is sound independently of saturation.
        let alphabet = absint.alphabet();
        let sites_hi = alphabet.hi().min(flow.alphabet_bound());
        let mut sites_lo = alphabet.lo().min(sites_hi);
        if truncated {
            // A truncated run may stop before reaching most sites;
            // only "some element was recorded" survives.
            sites_lo = sites_lo.min(u64::from(elements.lo() > 0));
        }
        let sites = CertInterval::new(sites_lo, sites_hi);

        // Memory: the SWAR kernel's per-site state is a closed form
        // of the interned-site count, and monotone in it.
        let memory_bytes = CertInterval::new(
            swar_footprint_bytes(sites.lo()),
            swar_footprint_bytes(sites.hi()),
        );

        let mut vacuous = absint.overflowed();
        let compare_hi = match judged_steps
            .hi()
            .checked_mul(cost::per_step_ops(config, sites.hi()))
        {
            Some(ops) => ops,
            None => {
                vacuous = true;
                u64::MAX
            }
        };
        let compare_lo = if judged_steps.lo() == 0 {
            0
        } else {
            judged_steps
                .lo()
                .saturating_mul(dense_min_ops(config.model(), sites.lo()))
        };
        let compare_ops = CertInterval::new(compare_lo.min(compare_hi), compare_hi);

        // The flat cost-model bound at the same inputs: certificates
        // must never exceed it, and beat it whenever `w0 > 1`.
        let cost_compare_bound = ConfigCost::of(config, elements.hi(), sites.hi()).compare_ops();

        ResourceCertificate {
            elements,
            steps,
            judged_steps,
            compare_ops,
            phases,
            occupancy,
            sites,
            memory_bytes,
            scans: CertInterval::new(1, 1),
            cost_compare_bound,
            warm_step: w0,
            warm_fill,
            fuel,
            truncated,
            vacuous,
        }
    }

    /// Profile elements the run records.
    #[must_use]
    pub fn elements(&self) -> CertInterval {
        self.elements
    }

    /// Detector steps (skip-sized chunks) the run takes.
    #[must_use]
    pub fn steps(&self) -> CertInterval {
        self.steps
    }

    /// Steps judged by the similarity analyzer (warm steps).
    #[must_use]
    pub fn judged_steps(&self) -> CertInterval {
        self.judged_steps
    }

    /// Comparison ops across all judged steps (default SWAR kernel).
    #[must_use]
    pub fn compare_ops(&self) -> CertInterval {
        self.compare_ops
    }

    /// Phase transitions the detector reports.
    #[must_use]
    pub fn phases(&self) -> CertInterval {
        self.phases
    }

    /// Maximum combined window occupancy (elements) at any step.
    #[must_use]
    pub fn occupancy(&self) -> CertInterval {
        self.occupancy
    }

    /// Distinct interned `(site, taken)` elements.
    #[must_use]
    pub fn sites(&self) -> CertInterval {
        self.sites
    }

    /// Kernel memory high-water mark in bytes (per-site SWAR state).
    #[must_use]
    pub fn memory_bytes(&self) -> CertInterval {
        self.memory_bytes
    }

    /// Trace scans a dedicated run performs (always one; grid-level
    /// scan sharing is priced by [`crate::predicted_scans`]).
    #[must_use]
    pub fn scans(&self) -> CertInterval {
        self.scans
    }

    /// The flat [`ConfigCost`] compare-op bound at the same element
    /// and alphabet inputs; `None` if that bound overflowed.
    #[must_use]
    pub fn cost_compare_bound(&self) -> Option<u64> {
        self.cost_compare_bound
    }

    /// `true` if the certified compare-op upper bound strictly beats
    /// the flat cost-model bound.
    #[must_use]
    pub fn tighter_than_cost_bound(&self) -> bool {
        match self.cost_compare_bound {
            Some(bound) => self.compare_ops.hi() < bound,
            None => self.compare_ops.hi() < u64::MAX,
        }
    }

    /// The first step the windows can be warm (`ceil((cw+tw)/skip)`).
    #[must_use]
    pub fn warm_step(&self) -> u64 {
        self.warm_step
    }

    /// The fuel limit the certificate was issued under.
    #[must_use]
    pub fn fuel(&self) -> u64 {
        self.fuel
    }

    /// `true` if the fuel clamps the certificate (A304): the static
    /// element bound exceeds the fuel, so intervals describe the
    /// truncated run.
    #[must_use]
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// `true` if an abstract bound saturated (A305): upper bounds are
    /// `u64::MAX` and cannot support admission control on cost —
    /// though the memory bound stays finite via the flow alphabet.
    #[must_use]
    pub fn vacuous(&self) -> bool {
        self.vacuous
    }

    /// Admission control: `true` if the certified memory high-water
    /// mark provably fits in `budget_bytes`. This is the per-session
    /// check a multi-tenant streaming frontend performs before
    /// admitting a detector session.
    #[must_use]
    pub fn admits(&self, budget_bytes: u64) -> bool {
        self.memory_bytes.hi() <= budget_bytes
    }

    /// Certificate-quality lints (`OPD-A301` … `OPD-A305`), anchored
    /// at `location` (e.g. `querydb × config #3`). `budget` enables
    /// the A303 admission check.
    #[must_use]
    pub fn lints(&self, location: &str, budget: Option<u64>) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        if self.vacuous {
            out.push(Diagnostic::new(
                Code::CertVacuous,
                location,
                "abstract bound saturated; certificate upper bounds are vacuous",
            ));
        }
        if self.phases.hi() == 0 {
            out.push(Diagnostic::new(
                Code::CertNeverFires,
                location,
                format!(
                    "certified phase bound is 0: at most {} elements cannot warm cw+tw = {}",
                    self.elements.hi(),
                    self.warm_fill,
                ),
            ));
        }
        if self.warm_step <= 1 {
            out.push(Diagnostic::new(
                Code::CertNotTighter,
                location,
                "skip covers the whole warm-up in one step; \
                 the certificate cannot beat the flat cost bound",
            ));
        }
        if self.truncated {
            out.push(Diagnostic::new(
                Code::CertTruncated,
                location,
                format!(
                    "interpreter fuel {} clamps the certificate below the static bound",
                    self.fuel
                ),
            ));
        }
        if let Some(budget) = budget {
            if !self.admits(budget) {
                out.push(Diagnostic::new(
                    Code::CertBudgetExceeded,
                    location,
                    format!(
                        "certified memory high-water mark {} B exceeds the budget {} B",
                        self.memory_bytes.hi(),
                        budget
                    ),
                ));
            }
        }
        out
    }

    /// Renders the certificate as one JSON object. Unbounded interval
    /// ends (`u64::MAX`) render as `null`.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"elements\":{},\"steps\":{},\"judged_steps\":{},",
                "\"compare_ops\":{},\"phases\":{},\"occupancy\":{},",
                "\"sites\":{},\"memory_bytes\":{},\"scans\":{},",
                "\"cost_compare_bound\":{},\"warm_step\":{},",
                "\"fuel\":{},\"truncated\":{},\"vacuous\":{}}}"
            ),
            self.elements.json(),
            self.steps.json(),
            self.judged_steps.json(),
            self.compare_ops.json(),
            self.phases.json(),
            self.occupancy.json(),
            self.sites.json(),
            self.memory_bytes.json(),
            self.scans.json(),
            match self.cost_compare_bound {
                Some(b) => b.to_string(),
                None => "null".to_string(),
            },
            self.warm_step,
            if self.fuel == u64::MAX {
                "null".to_string()
            } else {
                self.fuel.to_string()
            },
            self.truncated,
            self.vacuous,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opd_microvm::workloads::Workload;
    use opd_microvm::{ProgramBuilder, TakenDist, Trip};

    /// The default-plan-grid shape: cw = tw = 500, skip 1.
    fn grid_config() -> DetectorConfig {
        DetectorConfig::builder()
            .current_window(500)
            .trailing_window(500)
            .build()
            .unwrap()
    }

    fn small_program(branches: u32) -> Program {
        let mut b = ProgramBuilder::new();
        let main = b.declare("main");
        b.define(main, |f| {
            f.repeat(Trip::Fixed(branches), |l| {
                l.branch(TakenDist::Alternating);
            });
        });
        b.build().unwrap()
    }

    #[test]
    fn a_small_program_certifies_as_never_firing() {
        // 64 elements cannot warm cw+tw = 1000.
        let cert = ResourceCertificate::of(&small_program(64), &grid_config(), u64::MAX);
        assert_eq!((cert.elements().lo(), cert.elements().hi()), (64, 64));
        assert_eq!(cert.phases().hi(), 0);
        assert_eq!(cert.judged_steps().hi(), 0);
        assert_eq!(cert.compare_ops().hi(), 0);
        let lints = cert.lints("tiny", None);
        assert!(lints.iter().any(|d| d.code() == Code::CertNeverFires));
        assert!(!cert.vacuous() && !cert.truncated());
    }

    #[test]
    fn warmup_makes_the_certificate_strictly_tighter() {
        // 5000 elements with cw = tw = 500, skip = 1: 1000 warm-up
        // steps are provably un-judged.
        let cert = ResourceCertificate::of(&small_program(5_000), &grid_config(), u64::MAX);
        assert_eq!(cert.warm_step(), 1_000);
        assert_eq!(cert.steps().hi(), 5_000);
        assert_eq!(cert.judged_steps().hi(), 4_001);
        let bound = cert.cost_compare_bound().unwrap();
        assert!(cert.compare_ops().hi() < bound, "cert must beat the bound");
        assert!(cert.tighter_than_cost_bound());
        // Occupancy: warm fill reached, Constant TW caps at tw+cw.
        assert_eq!(cert.occupancy().lo(), 1_000);
        assert_eq!(cert.occupancy().hi(), 1_000);
        // One site, two outcomes.
        assert_eq!((cert.sites().lo(), cert.sites().hi()), (2, 2));
        assert_eq!(cert.memory_bytes().hi(), swar_footprint_bytes(2));
    }

    #[test]
    fn fuel_truncation_is_flagged_and_clamps() {
        let cert = ResourceCertificate::of(&small_program(5_000), &grid_config(), 1_200);
        assert!(cert.truncated());
        assert_eq!(cert.elements().hi(), 1_200);
        assert_eq!(cert.steps().hi(), 1_200);
        // Truncation weakens the site lower bound to "visited at all".
        assert_eq!(cert.sites().lo(), 1);
        let lints = cert.lints("clamped", None);
        assert!(lints.iter().any(|d| d.code() == Code::CertTruncated));
    }

    #[test]
    fn budget_admission_is_a_hard_error() {
        let cert = ResourceCertificate::of(&small_program(5_000), &grid_config(), u64::MAX);
        let need = cert.memory_bytes().hi();
        assert!(cert.admits(need));
        assert!(!cert.admits(need - 1));
        let lints = cert.lints("broke", Some(need - 1));
        let budget = lints
            .iter()
            .find(|d| d.code() == Code::CertBudgetExceeded)
            .expect("A303 fires");
        assert_eq!(budget.severity(), crate::Severity::Error);
        assert!(cert.lints("rich", Some(need)).is_empty());
    }

    #[test]
    fn an_always_firing_analyzer_certifies_exactly_one_phase() {
        use opd_core::AnalyzerPolicy;
        let config = DetectorConfig::builder()
            .current_window(500)
            .trailing_window(500)
            .analyzer(AnalyzerPolicy::Threshold(0.0))
            .build()
            .unwrap();
        let cert = ResourceCertificate::of(&small_program(5_000), &config, u64::MAX);
        assert_eq!((cert.phases().lo(), cert.phases().hi()), (1, 1));
    }

    #[test]
    fn a_skip_swallowing_warmup_is_flagged_not_tighter() {
        let config = DetectorConfig::builder()
            .current_window(4)
            .trailing_window(4)
            .skip_factor(64)
            .build()
            .unwrap();
        let cert = ResourceCertificate::of(&small_program(5_000), &config, u64::MAX);
        assert_eq!(cert.warm_step(), 1);
        let lints = cert.lints("swallowed", None);
        assert!(lints.iter().any(|d| d.code() == Code::CertNotTighter));
        // judged == steps: nothing saved, cert equals the flat bound.
        assert_eq!(cert.judged_steps().hi(), cert.steps().hi());
        assert!(!cert.tighter_than_cost_bound());
    }

    #[test]
    fn saturated_analyses_issue_vacuous_certificates() {
        use opd_microvm::ArgExpr;
        let mut b = ProgramBuilder::new();
        let rec = b.declare("rec");
        let main = b.declare("main");
        b.define(rec, |f| {
            f.branch(TakenDist::Always);
            f.call(rec, ArgExpr::Const(1));
        });
        b.define(main, |f| {
            f.call(rec, ArgExpr::Const(1));
        });
        let program = b.entry(main).build().unwrap();
        let cert = ResourceCertificate::of(&program, &grid_config(), u64::MAX);
        assert!(cert.vacuous());
        assert_eq!(cert.elements().hi(), u64::MAX);
        let lints = cert.lints("cycle", None);
        assert!(lints.iter().any(|d| d.code() == Code::CertVacuous));
        // JSON renders the unbounded ends as null.
        assert!(cert.to_json().contains("\"elements\":[1,null]"));
        // Memory stays finite through the flow alphabet bound.
        assert!(cert.memory_bytes().hi() < u64::MAX);
    }

    #[test]
    fn workload_certificates_are_clean_on_the_default_config_and_json_shaped() {
        for w in Workload::ALL {
            let cert = ResourceCertificate::of(&w.program(1), &grid_config(), u64::MAX);
            assert!(
                cert.lints(&w.to_string(), None).is_empty(),
                "{w}: unexpected lints"
            );
            let json = cert.to_json();
            assert!(json.starts_with('{') && json.ends_with('}'));
            assert!(json.contains("\"judged_steps\":["));
            assert!(json.contains("\"fuel\":null"));
        }
    }
}
