//! Assembling flow, call-graph, and bound facts into diagnostics, plus
//! machine-readable JSON rendering.

use opd_microvm::{Program, Stmt, TakenDist};

use crate::bounds::StaticBounds;
use crate::callgraph::CallGraph;
use crate::diag::{Code, Diagnostic};
use crate::flow::{DeadKind, FlowInfo};

fn fn_anchor(program: &Program, func: opd_microvm::FuncId) -> String {
    format!("fn {} ({})", program.function(func).name(), func)
}

/// What is degenerate about a distribution, if anything.
fn degeneracy(dist: TakenDist) -> Option<&'static str> {
    match dist {
        TakenDist::Bernoulli(p) if p <= 0.0 => Some("p=0 is never taken; use `never`"),
        TakenDist::Bernoulli(p) if p >= 1.0 => Some("p=1 is always taken; use `always`"),
        TakenDist::Periodic(1) => Some("period=1 is always taken; use `always`"),
        _ => None,
    }
}

/// Runs every lint over an already-validated view of the program.
pub(crate) fn collect(
    program: &Program,
    graph: &CallGraph,
    flow: &FlowInfo,
    bounds: &StaticBounds,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // OPD-E005: structural validity (same checks the builder applies).
    for err in program.validate() {
        out.push(Diagnostic::from_build_error(program, &err));
    }

    // OPD-E002: recursion cycles without a decreasing guard.
    for cycle in graph.cycles() {
        if cycle.is_terminating() {
            continue;
        }
        let names: Vec<String> = cycle
            .members()
            .iter()
            .map(|&f| format!("`{}`", program.function(f).name()))
            .collect();
        out.push(Diagnostic::new(
            Code::UnguardedRecursion,
            fn_anchor(program, cycle.members()[0]),
            format!(
                "recursion cycle {} has a call that is not both `arg > 0`-guarded and argument-decreasing; execution may never terminate",
                names.join(" -> ")
            ),
        ));
    }

    // OPD-W001: functions no execution can reach.
    for i in 0..program.functions().len() {
        let f = program.func_id(i);
        if !flow.is_reachable(f) {
            out.push(Diagnostic::new(
                Code::UnreachableFunction,
                fn_anchor(program, f),
                format!(
                    "function `{}` is unreachable from the entry point `{}`",
                    program.function(f).name(),
                    program.function(program.entry()).name()
                ),
            ));
        }
    }

    // OPD-W003: degenerate distributions, wherever they are written.
    program.walk(|ctx, stmt| {
        let branch = match stmt {
            Stmt::Branch(b) => b,
            Stmt::If { branch, .. } => branch,
            _ => return,
        };
        if let Some(why) = degeneracy(branch.dist()) {
            out.push(Diagnostic::new(
                Code::DegenerateDistribution,
                fn_anchor(program, ctx.func()),
                format!(
                    "branch @{} has a degenerate distribution: {why}",
                    branch.offset()
                ),
            ));
        }
    });

    // OPD-W006: statically dead code.
    for dead in flow.dead_sites() {
        let message = match dead.kind {
            DeadKind::ZeroTripLoop(id) => {
                format!("loop {id} never iterates (maximum trip count is 0); its body is dead")
            }
            DeadKind::DeadThenArm(offset) => {
                format!("the taken arm of branch @{offset} can never execute")
            }
            DeadKind::DeadElseArm(offset) => {
                format!("the not-taken arm of branch @{offset} can never execute")
            }
            DeadKind::NeverEnteredGuard => {
                "an `arg > 0` guard can never hold (the argument is always 0)".to_owned()
            }
        };
        out.push(Diagnostic::new(
            Code::DeadCode,
            fn_anchor(program, dead.func),
            message,
        ));
    }

    // OPD-E004: the worst case is too large to bound.
    if bounds.overflowed() {
        out.push(Diagnostic::new(
            Code::BoundOverflow,
            "program".to_owned(),
            "worst-case branch/event bounds overflow u64; no meaningful static bound exists",
        ));
    } else if bounds.exceeds_depth_limit() {
        // OPD-W007 — only meaningful when the bound itself is finite.
        out.push(Diagnostic::new(
            Code::CallDepthBound,
            "program".to_owned(),
            format!(
                "worst-case call depth {} exceeds the interpreter's default limit of {}; runs would abort with CallDepthExceeded",
                bounds.call_depth(),
                opd_microvm::Interpreter::DEFAULT_DEPTH_LIMIT
            ),
        ));
    }

    out
}

/// Escapes a string for inclusion in a JSON document.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a diagnostic list as a JSON array.
#[must_use]
pub(crate) fn diagnostics_json(diagnostics: &[Diagnostic]) -> String {
    let items: Vec<String> = diagnostics
        .iter()
        .map(|d| {
            format!(
                "{{\"code\":\"{}\",\"severity\":\"{}\",\"location\":\"{}\",\"message\":\"{}\"}}",
                d.code(),
                d.severity(),
                json_escape(d.location()),
                json_escape(d.message())
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }
}
