//! The `OPD-R` race-audit lint family: rules over synchronization
//! profiles observed by schedule exploration.
//!
//! `opd-analyze` stays dependency-light, so the profile arrives as
//! plain data ([`SubsystemSyncProfile`]/[`SyncSite`]) rather than as
//! `opd-sched` types; `opd-experiments` converts the explorer's
//! output and a declared coverage list into this shape and feeds it
//! to [`race_lints`]. The rules:
//!
//! - **`OPD-R201` unexplored atomic** — a shared atomic declared in
//!   the subsystem's expected-object list was never touched by any
//!   exploration: its concurrency behavior is unverified.
//! - **`OPD-R202` relaxed release flag** — an atomic whose writes are
//!   all `Relaxed` read-modify-writes but which some thread reads
//!   with `Acquire` (or stronger): the reader is paying for a
//!   happens-before edge the writer never publishes.
//! - **`OPD-R203` torn snapshot** — a multi-member shard family
//!   (labels `name[0]`, `name[1]`, …) in which some member's reads
//!   and writes were observed concurrent: a summed snapshot of the
//!   family is torn across shards and is not a point-in-time value.

use std::collections::BTreeSet;

use crate::diag::{Code, Diagnostic};

/// Everything the lints need to know about one shared object, as
/// observed across a subsystem's explorations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SyncSite {
    /// The object's label (`progress`, `ops[3]`, …).
    pub label: String,
    /// Whether the object is an atomic (cells race instead of
    /// profiling, so lints only see them through findings).
    pub atomic: bool,
    /// Total accesses observed across every explored schedule.
    pub accesses: u64,
    /// Whether every observed write was a `Relaxed` read-modify-write.
    pub writes_all_relaxed_rmw: bool,
    /// Whether any thread read the object with `Acquire` or stronger.
    pub has_acquire_read: bool,
    /// Whether any explored schedule had a read and a write of this
    /// object unordered by happens-before.
    pub concurrent_rw: bool,
}

impl SyncSite {
    /// The shard-family part of the label: `ops[3]` -> `ops`; labels
    /// without an index are their own family.
    #[must_use]
    pub fn family(&self) -> &str {
        self.label.split('[').next().unwrap_or(&self.label)
    }
}

/// One audited subsystem: its name, the objects exploration actually
/// observed, and the objects its models declare they must cover.
#[derive(Debug, Clone, Default)]
pub struct SubsystemSyncProfile {
    /// Subsystem name, used as the diagnostic location.
    pub name: String,
    /// Observed shared objects.
    pub sites: Vec<SyncSite>,
    /// Labels the subsystem's models are expected to exercise.
    pub expected: Vec<String>,
}

/// Runs the `OPD-R` rules over one subsystem profile. Deterministic:
/// diagnostics come out ordered by rule then label.
#[must_use]
pub fn race_lints(profile: &SubsystemSyncProfile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let observed: BTreeSet<&str> = profile.sites.iter().map(|s| s.label.as_str()).collect();
    for label in &profile.expected {
        if !observed.contains(label.as_str()) {
            out.push(Diagnostic::new(
                Code::UnexploredAtomic,
                &profile.name,
                format!("shared object `{label}` is declared but never explored"),
            ));
        }
    }
    for site in &profile.sites {
        if site.atomic && site.accesses > 0 && site.writes_all_relaxed_rmw && site.has_acquire_read
        {
            out.push(Diagnostic::new(
                Code::RelaxedReleaseFlag,
                &profile.name,
                format!(
                    "`{}` is written only by Relaxed RMWs but read with Acquire: \
                     the acquire can never synchronize with those writes",
                    site.label
                ),
            ));
        }
    }
    // Torn snapshots are a family property: group multi-member shard
    // families and flag the ones with any concurrent member.
    let mut torn_families: BTreeSet<&str> = BTreeSet::new();
    for site in &profile.sites {
        let family = site.family();
        if family.len() == site.label.len() {
            continue; // not an indexed shard label
        }
        let members = profile
            .sites
            .iter()
            .filter(|s| s.family() == family && s.family().len() != s.label.len())
            .count();
        if members >= 2 && site.concurrent_rw {
            torn_families.insert(family);
        }
    }
    for family in torn_families {
        out.push(Diagnostic::new(
            Code::TornSnapshot,
            &profile.name,
            format!(
                "shard family `{family}[..]` was snapshotted while writers were live: \
                 the summed value is torn across shards"
            ),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(label: &str) -> SyncSite {
        SyncSite {
            label: label.to_owned(),
            atomic: true,
            accesses: 4,
            writes_all_relaxed_rmw: false,
            has_acquire_read: false,
            concurrent_rw: false,
        }
    }

    #[test]
    fn clean_profile_lints_clean() {
        let profile = SubsystemSyncProfile {
            name: "runner".to_owned(),
            sites: vec![site("progress"), site("results[0]"), site("results[1]")],
            expected: vec!["progress".to_owned(), "results[0]".to_owned()],
        };
        assert!(race_lints(&profile).is_empty());
    }

    #[test]
    fn r201_fires_on_missing_coverage() {
        let profile = SubsystemSyncProfile {
            name: "runner".to_owned(),
            sites: vec![site("progress")],
            expected: vec!["progress".to_owned(), "results[0]".to_owned()],
        };
        let diags = race_lints(&profile);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code(), Code::UnexploredAtomic);
        assert!(diags[0].message().contains("results[0]"));
        assert_eq!(diags[0].location(), "runner");
    }

    #[test]
    fn r202_fires_on_relaxed_rmw_with_acquire_reader() {
        let mut flag = site("committed");
        flag.writes_all_relaxed_rmw = true;
        flag.has_acquire_read = true;
        let profile = SubsystemSyncProfile {
            name: "checkpoint".to_owned(),
            sites: vec![flag],
            expected: vec![],
        };
        let diags = race_lints(&profile);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code(), Code::RelaxedReleaseFlag);
        assert!(diags[0].message().contains("committed"));
    }

    #[test]
    fn r202_needs_both_halves() {
        for (rmw, acq) in [(true, false), (false, true), (false, false)] {
            let mut flag = site("committed");
            flag.writes_all_relaxed_rmw = rmw;
            flag.has_acquire_read = acq;
            let profile = SubsystemSyncProfile {
                name: "checkpoint".to_owned(),
                sites: vec![flag],
                expected: vec![],
            };
            assert!(race_lints(&profile).is_empty(), "rmw={rmw} acq={acq}");
        }
    }

    #[test]
    fn r203_fires_on_torn_multi_shard_family() {
        let mut s0 = site("ops[0]");
        s0.concurrent_rw = true;
        let s1 = site("ops[1]");
        // A single-member "family" and a concurrent scalar must not
        // trigger the rule.
        let mut scalar = site("progress");
        scalar.concurrent_rw = true;
        let profile = SubsystemSyncProfile {
            name: "metrics".to_owned(),
            sites: vec![s0, s1, scalar],
            expected: vec![],
        };
        let diags = race_lints(&profile);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code(), Code::TornSnapshot);
        assert!(diags[0].message().contains("ops[..]"));
    }

    #[test]
    fn r203_ignores_quiesced_families() {
        let profile = SubsystemSyncProfile {
            name: "metrics".to_owned(),
            sites: vec![site("ops[0]"), site("ops[1]")],
            expected: vec![],
        };
        assert!(race_lints(&profile).is_empty());
    }
}
