//! Static analysis of a sweep plan: equivalence classes, plan lints,
//! predicted scan counts, and per-axis distinctness witnesses.
//!
//! [`PlanAnalysis::of`] analyzes a `&[DetectorConfig]` grid *before*
//! any trace is run:
//!
//! * the [equivalence prover](crate::equiv) partitions the grid into
//!   classes of configs with provably bit-identical output, so a
//!   sweep need only run one representative per class
//!   ([`PlanAnalysis::expand`] maps the results back);
//! * the [cost model](crate::cost) predicts the sweep engine's exact
//!   scan count and per-workload comparison-op bounds;
//! * plan lints `OPD-C101..C106` flag duplicates, provably-silent
//!   detectors, skip factors that swallow the current window,
//!   redundant sweep axes, cost-bound overflows, and shadowed
//!   (prunable) grid entries.
//!
//! Where the prover keeps configs *apart*, [`PlanAnalysis::
//! axis_witnesses`] backs the separation dynamically: for every pair
//! of representatives differing in exactly one sweep axis it searches
//! a battery of engineered probe traces for one on which the two
//! configs emit different phase streams. A divergent probe is a sound
//! inequivalence certificate; pairs with no divergent probe are
//! reported as *undecided*, never as proven distinct.

use std::collections::HashMap;

use opd_core::{
    AnalyzerPolicy, AnchorPolicy, DetectorConfig, InternedTrace, ModelPolicy, PhaseDetector,
    ResizePolicy, TwPolicy,
};
use opd_trace::{MethodId, ProfileElement};

use crate::cost::{predicted_scans, ConfigCost};
use crate::diag::{Code, Diagnostic};
use crate::equiv::{equivalence_classes, snap_fraction, EquivClass};
use crate::lint;

/// One workload a plan is costed against: the static element and
/// alphabet bounds from [`crate::Analysis`].
#[derive(Debug, Clone)]
pub struct PlanWorkload {
    /// Workload name, used in diagnostics.
    pub name: String,
    /// Static bound on emitted profile elements (branch events).
    pub elements: u64,
    /// Static bound on distinct branch sites (the alphabet).
    pub alphabet: u64,
}

/// One sweep axis: a single field of [`DetectorConfig`] that a grid
/// may vary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum SweepAxis {
    /// Current-window size.
    CurrentWindow,
    /// Trailing-window size.
    TrailingWindow,
    /// Skip factor.
    SkipFactor,
    /// Trailing-window policy (constant vs adaptive).
    TwPolicy,
    /// Anchor policy.
    Anchor,
    /// Resize policy.
    Resize,
    /// Similarity model.
    Model,
    /// Analyzer (kind and parameter together).
    Analyzer,
}

impl SweepAxis {
    /// Every axis, in declaration order.
    pub const ALL: [SweepAxis; 8] = [
        SweepAxis::CurrentWindow,
        SweepAxis::TrailingWindow,
        SweepAxis::SkipFactor,
        SweepAxis::TwPolicy,
        SweepAxis::Anchor,
        SweepAxis::Resize,
        SweepAxis::Model,
        SweepAxis::Analyzer,
    ];

    /// Stable lowercase name, used in reports and JSON.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            SweepAxis::CurrentWindow => "current-window",
            SweepAxis::TrailingWindow => "trailing-window",
            SweepAxis::SkipFactor => "skip-factor",
            SweepAxis::TwPolicy => "tw-policy",
            SweepAxis::Anchor => "anchor",
            SweepAxis::Resize => "resize",
            SweepAxis::Model => "model",
            SweepAxis::Analyzer => "analyzer",
        }
    }
}

impl core::fmt::Display for SweepAxis {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Field-level encoding of a raw (uncanonicalized) config, hashable
/// so axis groupings can erase one field at a time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct RawKey {
    cw: u64,
    tw: u64,
    skip: u64,
    tw_policy: u8,
    anchor: u8,
    resize: u8,
    model: u8,
    analyzer_tag: u8,
    param_bits: u64,
}

impl RawKey {
    fn of(c: &DetectorConfig) -> Self {
        let (analyzer_tag, param_bits) = match c.analyzer() {
            AnalyzerPolicy::Threshold(t) => (0, t.to_bits()),
            AnalyzerPolicy::Average { delta } => (1, delta.to_bits()),
        };
        RawKey {
            cw: c.current_window() as u64,
            tw: c.trailing_window() as u64,
            skip: c.skip_factor() as u64,
            tw_policy: matches!(c.tw_policy(), TwPolicy::Adaptive).into(),
            anchor: matches!(c.anchor(), AnchorPolicy::LeftmostNonNoisy).into(),
            resize: matches!(c.resize(), ResizePolicy::Move).into(),
            model: match c.model() {
                ModelPolicy::UnweightedSet => 0,
                ModelPolicy::WeightedSet => 1,
                ModelPolicy::Pearson => 2,
            },
            analyzer_tag,
            param_bits,
        }
    }

    /// The key with `axis`'s field replaced by a sentinel, so configs
    /// equal everywhere *except* that axis collide.
    fn erasing(mut self, axis: SweepAxis) -> Self {
        match axis {
            SweepAxis::CurrentWindow => self.cw = u64::MAX,
            SweepAxis::TrailingWindow => self.tw = u64::MAX,
            SweepAxis::SkipFactor => self.skip = u64::MAX,
            SweepAxis::TwPolicy => self.tw_policy = u8::MAX,
            SweepAxis::Anchor => self.anchor = u8::MAX,
            SweepAxis::Resize => self.resize = u8::MAX,
            SweepAxis::Model => self.model = u8::MAX,
            SweepAxis::Analyzer => {
                self.analyzer_tag = u8::MAX;
                self.param_bits = u64::MAX;
            }
        }
        self
    }
}

/// The axes on which `a` and `b` differ.
fn differing_axes(a: &DetectorConfig, b: &DetectorConfig) -> Vec<SweepAxis> {
    let (ka, kb) = (RawKey::of(a), RawKey::of(b));
    SweepAxis::ALL
        .into_iter()
        .filter(|&axis| field_differs(&ka, &kb, axis))
        .collect()
}

fn field_differs(a: &RawKey, b: &RawKey, axis: SweepAxis) -> bool {
    match axis {
        SweepAxis::CurrentWindow => a.cw != b.cw,
        SweepAxis::TrailingWindow => a.tw != b.tw,
        SweepAxis::SkipFactor => a.skip != b.skip,
        SweepAxis::TwPolicy => a.tw_policy != b.tw_policy,
        SweepAxis::Anchor => a.anchor != b.anchor,
        SweepAxis::Resize => a.resize != b.resize,
        SweepAxis::Model => a.model != b.model,
        SweepAxis::Analyzer => a.analyzer_tag != b.analyzer_tag || a.param_bits != b.param_bits,
    }
}

/// The outcome of probing one single-axis pair of representatives.
#[derive(Debug, Clone)]
pub struct AxisPairOutcome {
    /// Grid index of the first config of the pair.
    pub a: usize,
    /// Grid index of the second config of the pair.
    pub b: usize,
    /// The one axis on which the pair differs.
    pub axis: SweepAxis,
    /// Name of the first probe trace on which the two configs emitted
    /// different phase streams (a sound inequivalence certificate),
    /// or `None` when every probe agreed — the pair stays *undecided*.
    pub witness: Option<String>,
}

/// Dynamic distinctness evidence for every single-axis pair of class
/// representatives.
#[derive(Debug, Clone)]
pub struct AxisWitnesses {
    /// Every probed pair, in (a, b) order.
    pub pairs: Vec<AxisPairOutcome>,
}

impl AxisWitnesses {
    /// Pairs with a divergence witness.
    #[must_use]
    pub fn witnessed(&self) -> usize {
        self.pairs.iter().filter(|p| p.witness.is_some()).count()
    }

    /// Pairs no probe could separate.
    #[must_use]
    pub fn undecided(&self) -> usize {
        self.pairs.len() - self.witnessed()
    }

    /// `(witnessed, total)` per axis, in [`SweepAxis::ALL`] order,
    /// omitting axes with no pairs.
    #[must_use]
    pub fn per_axis(&self) -> Vec<(SweepAxis, usize, usize)> {
        SweepAxis::ALL
            .into_iter()
            .filter_map(|axis| {
                let total = self.pairs.iter().filter(|p| p.axis == axis).count();
                if total == 0 {
                    return None;
                }
                let hit = self
                    .pairs
                    .iter()
                    .filter(|p| p.axis == axis && p.witness.is_some())
                    .count();
                Some((axis, hit, total))
            })
            .collect()
    }
}

/// The complete static analysis of one sweep grid.
#[derive(Debug, Clone)]
pub struct PlanAnalysis {
    configs: Vec<DetectorConfig>,
    classes: Vec<EquivClass>,
    class_of: Vec<usize>,
    diagnostics: Vec<Diagnostic>,
    predicted_scans_full: usize,
    predicted_scans_pruned: usize,
}

impl PlanAnalysis {
    /// Analyzes `configs` as one sweep grid, costed against
    /// `workloads` (pass an empty slice to skip the per-workload
    /// lints `OPD-C102`/`OPD-C105`).
    #[must_use]
    pub fn of(configs: &[DetectorConfig], workloads: &[PlanWorkload]) -> Self {
        let classes = equivalence_classes(configs);
        let mut class_of = vec![0usize; configs.len()];
        for (ci, class) in classes.iter().enumerate() {
            for &m in class.members() {
                class_of[m] = ci;
            }
        }
        let representatives: Vec<DetectorConfig> = classes
            .iter()
            .map(|c| configs[c.representative()])
            .collect();
        let mut analysis = PlanAnalysis {
            configs: configs.to_vec(),
            classes,
            class_of,
            diagnostics: Vec::new(),
            predicted_scans_full: predicted_scans(configs),
            predicted_scans_pruned: predicted_scans(&representatives),
        };
        analysis.lint_grid();
        analysis.lint_workloads(workloads);
        analysis
    }

    fn lint_grid(&mut self) {
        // OPD-C101 / OPD-C106: non-representative members are either
        // textual duplicates of an earlier member or rule-proven
        // shadows of their representative.
        for class in &self.classes {
            let rep = class.representative();
            for &m in class.members() {
                if m == rep {
                    continue;
                }
                let duplicate_of = class.members()[..class.members().len()]
                    .iter()
                    .copied()
                    .take_while(|&e| e < m)
                    .find(|&e| self.configs[e] == self.configs[m]);
                if let Some(earlier) = duplicate_of {
                    self.diagnostics.push(Diagnostic::new(
                        Code::DuplicateConfig,
                        format!("config #{m}"),
                        format!(
                            "`{}` textually duplicates config #{earlier}",
                            self.configs[m]
                        ),
                    ));
                } else {
                    self.diagnostics.push(Diagnostic::new(
                        Code::ShadowedRepresentative,
                        format!("config #{m}"),
                        format!(
                            "`{}` is provably equivalent to representative config #{rep} \
                             ({}); it can be pruned",
                            self.configs[m],
                            class
                                .rules()
                                .iter()
                                .map(|r| r.as_str())
                                .collect::<Vec<_>>()
                                .join(", "),
                        ),
                    ));
                }
            }
        }
        // OPD-C103: skip > cw excludes a config from shared scanning.
        for (i, config) in self.configs.iter().enumerate() {
            if config.skip_factor() > config.current_window() {
                self.diagnostics.push(Diagnostic::new(
                    Code::SkipSwallowsWindow,
                    format!("config #{i}"),
                    format!(
                        "skip factor {} exceeds the current window {}: a phase-end flush \
                         over-fills the CW, so the config runs on the private path and \
                         cannot share a scan",
                        config.skip_factor(),
                        config.current_window()
                    ),
                ));
            }
        }
        // OPD-C104: an axis the grid varies without ever changing the
        // output.
        for axis in SweepAxis::ALL {
            let mut groups: HashMap<RawKey, Vec<usize>> = HashMap::new();
            for (i, config) in self.configs.iter().enumerate() {
                groups
                    .entry(RawKey::of(config).erasing(axis))
                    .or_default()
                    .push(i);
            }
            let mut varied = false;
            let mut all_uniform = true;
            for members in groups.values() {
                let first_key = RawKey::of(&self.configs[members[0]]);
                if members
                    .iter()
                    .any(|&m| field_differs(&first_key, &RawKey::of(&self.configs[m]), axis))
                {
                    varied = true;
                    let class = self.class_of[members[0]];
                    if members.iter().any(|&m| self.class_of[m] != class) {
                        all_uniform = false;
                    }
                }
            }
            if varied && all_uniform {
                self.diagnostics.push(Diagnostic::new(
                    Code::RedundantSweepAxis,
                    "grid",
                    format!(
                        "axis `{axis}` is redundant: every pair of grid entries \
                         differing only in {axis} is provably equivalent"
                    ),
                ));
            }
        }
    }

    fn lint_workloads(&mut self, workloads: &[PlanWorkload]) {
        for w in workloads {
            for (i, config) in self.configs.iter().enumerate() {
                let warm_need = (config.current_window() as u64)
                    .saturating_add(config.trailing_window() as u64);
                // OPD-C102: the trace ends before the windows can warm.
                if w.elements < warm_need {
                    self.diagnostics.push(Diagnostic::new(
                        Code::ProvablySilent,
                        format!("config #{i}"),
                        format!(
                            "provably silent on workload `{}`: static element bound {} \
                             is below cw + tw = {warm_need}, so the detector never warms \
                             and emits zero phases",
                            w.name, w.elements
                        ),
                    ));
                }
                // OPD-C105: the comparison-op bound is not representable.
                if ConfigCost::of(config, w.elements, w.alphabet)
                    .compare_ops()
                    .is_none()
                {
                    self.diagnostics.push(Diagnostic::new(
                        Code::CostBoundOverflow,
                        format!("config #{i}"),
                        format!(
                            "comparison-op bound on workload `{}` overflows u64; the \
                             static cost model cannot rank this config",
                            w.name
                        ),
                    ));
                }
            }
        }
    }

    /// The analyzed grid.
    #[must_use]
    pub fn configs(&self) -> &[DetectorConfig] {
        &self.configs
    }

    /// The provable-equivalence classes, in representative order.
    #[must_use]
    pub fn classes(&self) -> &[EquivClass] {
        &self.classes
    }

    /// Class index of config `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn class_of(&self, i: usize) -> usize {
        self.class_of[i]
    }

    /// Classes merging at least two grid entries.
    #[must_use]
    pub fn nontrivial_classes(&self) -> usize {
        self.classes.iter().filter(|c| c.is_nontrivial()).count()
    }

    /// Grid indices of the class representatives — the pruned grid.
    #[must_use]
    pub fn representatives(&self) -> Vec<usize> {
        self.classes
            .iter()
            .map(EquivClass::representative)
            .collect()
    }

    /// The pruned grid itself: one config per class.
    #[must_use]
    pub fn pruned_configs(&self) -> Vec<DetectorConfig> {
        self.classes
            .iter()
            .map(|c| self.configs[c.representative()])
            .collect()
    }

    /// Expands per-class results (indexed like [`Self::classes`])
    /// back to per-config results: each member receives a clone of
    /// its representative's result.
    ///
    /// # Panics
    ///
    /// Panics if `per_class` does not have one entry per class.
    #[must_use]
    pub fn expand<T: Clone>(&self, per_class: &[T]) -> Vec<T> {
        assert_eq!(per_class.len(), self.classes.len(), "one result per class");
        self.class_of
            .iter()
            .map(|&c| per_class[c].clone())
            .collect()
    }

    /// The plan lints (`OPD-C101..C106`).
    #[must_use]
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Error-severity plan lints.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == crate::Severity::Error)
            .count()
    }

    /// Trace scans a sweep of the full grid performs, predicted
    /// statically (matches `SweepEngine::total_scans()` exactly).
    #[must_use]
    pub fn predicted_scans_full(&self) -> usize {
        self.predicted_scans_full
    }

    /// Trace scans a sweep of the pruned grid performs.
    #[must_use]
    pub fn predicted_scans_pruned(&self) -> usize {
        self.predicted_scans_pruned
    }

    /// Renders the plan (sizes, classes, scans, diagnostics) as one
    /// JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut classes = String::from("[");
        for (i, class) in self.classes.iter().enumerate() {
            if i > 0 {
                classes.push(',');
            }
            let rules: Vec<String> = class
                .rules()
                .iter()
                .map(|r| format!("\"{}\"", r.as_str()))
                .collect();
            classes.push_str(&format!(
                "{{\"representative\":{},\"members\":{:?},\"rules\":[{}]}}",
                class.representative(),
                class.members(),
                rules.join(",")
            ));
        }
        classes.push(']');
        format!(
            concat!(
                "{{\"grid\":{},\"pruned\":{},\"nontrivial_classes\":{},",
                "\"predicted_scans_full\":{},\"predicted_scans_pruned\":{},",
                "\"classes\":{},\"diagnostics\":{}}}"
            ),
            self.configs.len(),
            self.classes.len(),
            self.nontrivial_classes(),
            self.predicted_scans_full,
            self.predicted_scans_pruned,
            classes,
            lint::diagnostics_json(&self.diagnostics),
        )
    }

    /// Probes every pair of class representatives differing in
    /// exactly one sweep axis for a trace on which their outputs
    /// diverge. Runs `O(pairs × probes)` short detector runs — meant
    /// for report generation, not hot paths.
    #[must_use]
    pub fn axis_witnesses(&self) -> AxisWitnesses {
        let reps = self.representatives();
        let mut batteries: HashMap<(usize, usize), Vec<(String, InternedTrace)>> = HashMap::new();
        let mut pairs = Vec::new();
        for (x, &a) in reps.iter().enumerate() {
            for &b in reps.iter().skip(x + 1) {
                let (ca, cb) = (&self.configs[a], &self.configs[b]);
                let axes = differing_axes(ca, cb);
                if axes.len() != 1 {
                    continue;
                }
                let shape_key = (ca.current_window().max(cb.current_window()), {
                    ca.trailing_window().max(cb.trailing_window())
                });
                let battery = batteries
                    .entry(shape_key)
                    .or_insert_with(|| probe_battery(&self.configs, shape_key.0, shape_key.1));
                let witness = battery
                    .iter()
                    .find(|(_, trace)| runs_differ(ca, cb, trace))
                    .map(|(name, _)| name.clone());
                pairs.push(AxisPairOutcome {
                    a,
                    b,
                    axis: axes[0],
                    witness,
                });
            }
        }
        AxisWitnesses { pairs }
    }
}

/// Runs both configs over `trace` and reports whether their phase
/// streams differ (a sound inequivalence certificate when they do).
fn runs_differ(a: &DetectorConfig, b: &DetectorConfig, trace: &InternedTrace) -> bool {
    let mut da = PhaseDetector::new(*a);
    let _ = da.run_interned_phases_only(trace);
    let mut db = PhaseDetector::new(*b);
    let _ = db.run_interned_phases_only(trace);
    da.take_phases() != db.take_phases()
}

fn intern(ids: &[u32]) -> InternedTrace {
    InternedTrace::from_elements(
        ids.iter()
            .map(|&site| ProfileElement::new(MethodId::new(0), site, true)),
    )
}

/// Emits `reps` segments of `w` elements each; every segment cycles
/// `n` distinct sites of which `k` are carried over from the previous
/// segment (new sites first). At each segment boundary of a
/// `cw = tw = w` detector the CW/TW distinct-overlap is exactly
/// `k / n`.
fn push_overlap_segments(
    out: &mut Vec<u32>,
    next_site: &mut u32,
    prev_sites: &mut Vec<u32>,
    w: usize,
    k: usize,
    n: usize,
    reps: usize,
) {
    for _ in 0..reps {
        let carried: Vec<u32> = prev_sites.iter().copied().take(k).collect();
        let mut sites: Vec<u32> = Vec::with_capacity(n);
        for _ in 0..n.saturating_sub(carried.len()) {
            sites.push(*next_site);
            *next_site += 1;
        }
        sites.extend(carried);
        for i in 0..w {
            out.push(sites[i % sites.len()]);
        }
        *prev_sites = sites;
    }
}

/// A trace whose similarity plateaus at `k / n` for several windows
/// and then decays to zero: distinguishes entry thresholds straddling
/// `k / n` at phase start, and exit behavior (threshold vs average)
/// during the decay.
fn overlap_probe(cw: usize, tw: usize, k: usize, n: usize) -> Vec<u32> {
    let w = cw.max(tw);
    let mut out = Vec::with_capacity(cw + tw + 8 * w);
    let mut next = 0u32;
    for _ in 0..cw + tw {
        out.push(next);
        next += 1;
    }
    let mut prev = Vec::new();
    push_overlap_segments(&mut out, &mut next, &mut prev, w, k, n, 4);
    push_overlap_segments(&mut out, &mut next, &mut prev, w, 0, n, 4);
    out
}

/// A trace where the distinct-set overlap is `k / n` but the weighted
/// overlap is tiny (one fresh site hogs the CW frequency mass):
/// separates the unweighted and weighted models at a threshold at or
/// below `fl(k / n)`.
fn skew_probe(cw: usize, tw: usize, k: usize, n: usize) -> Option<Vec<u32>> {
    let w = cw.max(tw);
    if k == 0 || n < k + 1 || w < n {
        return None;
    }
    let mut out = Vec::with_capacity(cw + tw + 2 * w);
    let mut next = 0u32;
    for _ in 0..cw + tw {
        out.push(next);
        next += 1;
    }
    // TW segment: cycle the k shared sites uniformly.
    let shared: Vec<u32> = (0..k as u32).map(|i| next + i).collect();
    next += k as u32;
    for i in 0..w {
        out.push(shared[i % k]);
    }
    // CW segment: one hog site takes all the slack, the k shared
    // sites and n - 1 - k fresh sites appear once each.
    let hog = next;
    next += 1;
    for _ in 0..w - (n - 1) {
        out.push(hog);
    }
    out.extend(&shared);
    for _ in 0..n - 1 - k {
        out.push(next);
        next += 1;
    }
    Some(out)
}

/// A slowly rotating working set: rich, irregular similarity
/// trajectories that separate analyzer families with equal entry
/// thresholds and most model pairs.
fn drift_probe(cw: usize, tw: usize, set: usize, stride: usize) -> Vec<u32> {
    let len = 6 * (cw + tw);
    (0..len)
        .map(|pos| (pos % set + pos / (set * stride)) as u32)
        .collect()
}

/// The probe battery for a window shape: targeted boundary fractions
/// for every entry threshold the grid uses, frequency-skew variants,
/// and drift traces.
fn probe_battery(configs: &[DetectorConfig], cw: usize, tw: usize) -> Vec<(String, InternedTrace)> {
    // Denominators must fit in both windows so a segment can cycle
    // all n sites; 64 caps probe size while separating thresholds
    // 1/64 apart.
    let denom = cw.min(tw).min(64) as u64;
    let mut fractions: Vec<(u64, u64)> = Vec::new();
    let mut entries: Vec<f64> = configs
        .iter()
        .map(|c| match c.analyzer() {
            AnalyzerPolicy::Threshold(t) => t,
            AnalyzerPolicy::Average { delta } => 1.0 - delta,
        })
        .collect();
    entries.sort_by(f64::total_cmp);
    entries.dedup();
    // A fraction just clearing each entry value, and one in each gap
    // between consecutive entry values.
    for (i, &e) in entries.iter().enumerate() {
        if let Some(f) = snap_fraction(e, denom) {
            fractions.push(f);
        }
        if let Some(&hi) = entries.get(i + 1) {
            if let Some(f) = snap_fraction(e, denom) {
                let v = f.0 as f64 / f.1 as f64;
                if v < hi {
                    fractions.push(f);
                }
            }
        }
    }
    // Generic plateaus covering the unit interval.
    fractions.extend([(1, 2), (5, 8), (3, 4), (7, 8), (15, 16), (1, 4)]);
    fractions.sort_unstable();
    fractions.dedup();
    let mut battery = Vec::new();
    for &(k, n) in &fractions {
        let (k, n) = (k as usize, n as usize);
        if n == 0 || n > cw.min(tw) {
            continue;
        }
        battery.push((
            format!("overlap k={k} n={n}"),
            intern(&overlap_probe(cw, tw, k, n)),
        ));
        if let Some(ids) = skew_probe(cw, tw, k, n) {
            battery.push((format!("skew k={k} n={n}"), intern(&ids)));
        }
    }
    for (set, stride) in [(8usize, 4usize), (24, 16), (4, 2)] {
        battery.push((
            format!("drift set={set} stride={stride}"),
            intern(&drift_probe(cw, tw, set, stride)),
        ));
    }
    battery
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(cw: usize, model: ModelPolicy, analyzer: AnalyzerPolicy) -> DetectorConfig {
        DetectorConfig::builder()
            .current_window(cw)
            .model(model)
            .analyzer(analyzer)
            .build()
            .unwrap()
    }

    #[test]
    fn duplicates_and_shadows_get_distinct_codes() {
        let base = mk(
            32,
            ModelPolicy::UnweightedSet,
            AnalyzerPolicy::Threshold(0.5),
        );
        let moved = DetectorConfig::builder()
            .current_window(32)
            .resize(ResizePolicy::Move)
            .build()
            .unwrap();
        let plan = PlanAnalysis::of(&[base, base, moved], &[]);
        let codes: Vec<Code> = plan.diagnostics().iter().map(Diagnostic::code).collect();
        assert!(codes.contains(&Code::DuplicateConfig));
        assert!(codes.contains(&Code::ShadowedRepresentative));
        assert_eq!(plan.classes().len(), 1);
        assert_eq!(plan.predicted_scans_full(), 1);
        assert_eq!(plan.predicted_scans_pruned(), 1);
    }

    #[test]
    fn skip_swallowing_and_silent_configs_are_flagged() {
        let swallowing = DetectorConfig::builder()
            .current_window(4)
            .trailing_window(8)
            .skip_factor(9)
            .build()
            .unwrap();
        let plan = PlanAnalysis::of(
            &[swallowing],
            &[PlanWorkload {
                name: "tiny".into(),
                elements: 10,
                alphabet: 4,
            }],
        );
        let codes: Vec<Code> = plan.diagnostics().iter().map(Diagnostic::code).collect();
        assert!(codes.contains(&Code::SkipSwallowsWindow));
        assert!(codes.contains(&Code::ProvablySilent));
    }

    #[test]
    fn cost_overflow_is_an_error_diagnostic() {
        let heavy = DetectorConfig::builder()
            .current_window(usize::MAX)
            .model(ModelPolicy::WeightedSet)
            .tw_policy(TwPolicy::Adaptive)
            .build()
            .unwrap();
        let plan = PlanAnalysis::of(
            &[heavy],
            &[PlanWorkload {
                name: "huge".into(),
                elements: u64::MAX,
                alphabet: u64::MAX,
            }],
        );
        assert!(plan
            .diagnostics()
            .iter()
            .any(|d| d.code() == Code::CostBoundOverflow));
        assert!(plan.error_count() > 0);
    }

    #[test]
    fn redundant_axis_is_reported() {
        // Constant-TW grid varying only resize: the axis is dead.
        let mut grid = Vec::new();
        for resize in [ResizePolicy::Slide, ResizePolicy::Move] {
            for t in [0.5, 0.7] {
                grid.push(
                    DetectorConfig::builder()
                        .current_window(16)
                        .resize(resize)
                        .analyzer(AnalyzerPolicy::Threshold(t))
                        .build()
                        .unwrap(),
                );
            }
        }
        let plan = PlanAnalysis::of(&grid, &[]);
        let redundant: Vec<&Diagnostic> = plan
            .diagnostics()
            .iter()
            .filter(|d| d.code() == Code::RedundantSweepAxis)
            .collect();
        assert_eq!(redundant.len(), 1, "{:?}", plan.diagnostics());
        assert!(redundant[0].message().contains("resize"));
        assert_eq!(plan.classes().len(), 2);
        // The analyzer axis is NOT redundant: no such diagnostic
        // names it.
        assert!(!redundant.iter().any(|d| d.message().contains("analyzer")));
    }

    #[test]
    fn expand_maps_class_results_back_to_members() {
        let base = mk(
            32,
            ModelPolicy::UnweightedSet,
            AnalyzerPolicy::Threshold(0.5),
        );
        let moved = DetectorConfig::builder()
            .current_window(32)
            .resize(ResizePolicy::Move)
            .build()
            .unwrap();
        let other = mk(
            64,
            ModelPolicy::UnweightedSet,
            AnalyzerPolicy::Threshold(0.5),
        );
        let plan = PlanAnalysis::of(&[base, other, moved], &[]);
        assert_eq!(plan.classes().len(), 2);
        assert_eq!(plan.representatives(), vec![0, 1]);
        assert_eq!(plan.expand(&["a", "b"]), vec!["a", "b", "a"]);
    }

    #[test]
    fn axis_witnesses_separate_threshold_and_model_pairs() {
        let grid = vec![
            mk(
                16,
                ModelPolicy::UnweightedSet,
                AnalyzerPolicy::Threshold(0.5),
            ),
            mk(
                16,
                ModelPolicy::UnweightedSet,
                AnalyzerPolicy::Threshold(0.75),
            ),
            mk(16, ModelPolicy::WeightedSet, AnalyzerPolicy::Threshold(0.5)),
        ];
        let plan = PlanAnalysis::of(&grid, &[]);
        assert_eq!(plan.classes().len(), 3);
        let report = plan.axis_witnesses();
        // (0,1) differ in analyzer; (0,2) differ in model; (1,2)
        // differ in two axes and are skipped.
        assert_eq!(report.pairs.len(), 2);
        assert_eq!(report.undecided(), 0, "{:?}", report.pairs);
        let axes: Vec<SweepAxis> = report.pairs.iter().map(|p| p.axis).collect();
        assert!(axes.contains(&SweepAxis::Analyzer));
        assert!(axes.contains(&SweepAxis::Model));
    }

    #[test]
    fn json_is_well_formed_enough() {
        let base = mk(
            32,
            ModelPolicy::UnweightedSet,
            AnalyzerPolicy::Threshold(0.5),
        );
        let plan = PlanAnalysis::of(&[base, base], &[]);
        let json = plan.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"grid\":2"));
        assert!(json.contains("\"pruned\":1"));
        assert!(json.contains("\"members\":[0, 1]") || json.contains("\"members\":[0,1]"));
        assert!(json.contains("OPD-C101"));
    }
}
