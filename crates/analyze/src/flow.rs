//! Interprocedural flow facts: which functions are reachable from the
//! entry, the largest argument each can receive, which branch sites can
//! execute, and which code is statically dead.
//!
//! The analysis is a monotone worklist fixpoint over per-function
//! maximum arguments. Argument expressions never increase their input
//! (`arg-1`, `arg/2`, constants, bounded draws), so the lattice height
//! is small and the fixpoint converges quickly; a relaxation cap
//! saturates pathological chains to the global argument bound, which is
//! always sound.

use opd_microvm::{ArgExpr, FuncId, Program, Stmt, TakenDist};
use opd_trace::LoopId;

/// Which way a branch can go, statically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TakenSet {
    AlwaysTaken,
    NeverTaken,
    Both,
}

fn taken_set(dist: TakenDist) -> TakenSet {
    match dist {
        TakenDist::Always | TakenDist::Periodic(1) => TakenSet::AlwaysTaken,
        TakenDist::Never => TakenSet::NeverTaken,
        TakenDist::Bernoulli(p) if p <= 0.0 => TakenSet::NeverTaken,
        TakenDist::Bernoulli(p) if p >= 1.0 => TakenSet::AlwaysTaken,
        TakenDist::Bernoulli(_) | TakenDist::Alternating | TakenDist::Periodic(_) => TakenSet::Both,
    }
}

/// Number of distinct profile elements one execution of a site can
/// produce (the taken bit is part of the element identity).
fn outcomes(dist: TakenDist) -> u64 {
    match taken_set(dist) {
        TakenSet::AlwaysTaken | TakenSet::NeverTaken => 1,
        TakenSet::Both => 2,
    }
}

/// Upper bound of an argument expression given the caller's bound.
pub(crate) fn arg_upper_bound(expr: ArgExpr, caller_max: u32) -> u32 {
    match expr {
        ArgExpr::Const(v) => v,
        ArgExpr::Dec => caller_max.saturating_sub(1),
        ArgExpr::Half => caller_max / 2,
        ArgExpr::Draw(_, hi) => hi,
    }
}

/// What kind of dead code a [`DeadSite`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DeadKind {
    /// A loop whose maximum trip count is zero: the body never runs.
    ZeroTripLoop(LoopId),
    /// The taken arm of a branch that is never taken (site offset).
    DeadThenArm(u32),
    /// The not-taken arm of a branch that is always taken (site offset).
    DeadElseArm(u32),
    /// An `arg > 0` guard in a function whose argument is always zero.
    NeverEnteredGuard,
}

/// One piece of statically dead code, anchored to its function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadSite {
    /// The function containing the dead code.
    pub func: FuncId,
    /// What is dead, and why.
    pub kind: DeadKind,
}

/// The interprocedural flow facts of a [`Program`].
#[derive(Debug, Clone)]
pub struct FlowInfo {
    reachable: Vec<bool>,
    max_arg: Vec<u32>,
    alphabet_bound: u64,
    executable_sites: u64,
    dead: Vec<DeadSite>,
}

impl FlowInfo {
    /// Runs the fixpoint and the executable-site scan.
    #[must_use]
    pub fn compute(program: &Program) -> Self {
        let n = program.functions().len();
        let mut max_arg: Vec<Option<u32>> = vec![None; n];
        let mut worklist: Vec<usize> = Vec::new();
        let mut relaxations = vec![0u32; n];
        // Sound saturation value: no argument expression can exceed
        // every constant, draw bound, and the entry argument.
        let global_bound = global_arg_bound(program);
        // Generous: honest chains relax each function a handful of
        // times; only adversarial `arg-1` ladders hit the cap.
        let relax_cap = 64 + 4 * n as u32;

        let entry = program.entry().index() as usize;
        max_arg[entry] = Some(program.entry_arg());
        worklist.push(entry);

        while let Some(f) = worklist.pop() {
            let a = max_arg[f].expect("worklist members are reachable");
            let body = program.function(program.func_id(f)).body();
            scan_executable(body, a, &mut |callee, expr| {
                let idx = callee.index() as usize;
                let mut v = arg_upper_bound(expr, a);
                if relaxations[idx] >= relax_cap {
                    v = global_bound;
                }
                if max_arg[idx].map_or(true, |m| m < v) {
                    max_arg[idx] = Some(v);
                    relaxations[idx] += 1;
                    if !worklist.contains(&idx) {
                        worklist.push(idx);
                    }
                }
            });
        }

        // Final scan with the fixpoint arguments: count executable
        // site outcomes and collect dead code.
        let mut alphabet_bound = 0u64;
        let mut executable_sites = 0u64;
        let mut dead = Vec::new();
        for (f, arg) in max_arg.iter().enumerate() {
            let Some(a) = *arg else { continue };
            let id = program.func_id(f);
            let body = program.function(id).body();
            scan_sites(
                body,
                a,
                &mut |dist| {
                    alphabet_bound += outcomes(dist);
                    executable_sites += 1;
                },
                &mut |kind| dead.push(DeadSite { func: id, kind }),
            );
        }

        FlowInfo {
            reachable: max_arg.iter().map(Option::is_some).collect(),
            max_arg: max_arg.into_iter().map(Option::unwrap_or_default).collect(),
            alphabet_bound,
            executable_sites,
            dead,
        }
    }

    /// `true` if the function can execute in some run.
    #[must_use]
    pub fn is_reachable(&self, func: FuncId) -> bool {
        self.reachable[func.index() as usize]
    }

    /// The largest argument the function can be called with (0 for
    /// unreachable functions).
    #[must_use]
    pub fn max_arg(&self, func: FuncId) -> u32 {
        self.max_arg[func.index() as usize]
    }

    /// Upper bound on the number of distinct profile elements any
    /// execution can produce: the sum over executable branch sites of
    /// their possible taken outcomes.
    #[must_use]
    pub fn alphabet_bound(&self) -> u64 {
        self.alphabet_bound
    }

    /// Number of branch sites that can execute.
    #[must_use]
    pub fn executable_sites(&self) -> u64 {
        self.executable_sites
    }

    /// The statically dead code found.
    #[must_use]
    pub fn dead_sites(&self) -> &[DeadSite] {
        &self.dead
    }
}

/// The largest argument value any call in the program can produce:
/// arguments are only ever copied down from the entry argument, taken
/// from constants, or drawn from bounded ranges, then decreased.
fn global_arg_bound(program: &Program) -> u32 {
    let mut bound = program.entry_arg();
    program.walk(|_, stmt| {
        if let Stmt::Call { arg, .. } = stmt {
            match arg {
                ArgExpr::Const(v) => bound = bound.max(*v),
                ArgExpr::Draw(_, hi) => bound = bound.max(*hi),
                ArgExpr::Dec | ArgExpr::Half => {}
            }
        }
    });
    bound
}

/// Walks only the statements that can execute when the enclosing
/// function's argument is at most `a`, reporting each executable call.
fn scan_executable(stmts: &[Stmt], a: u32, on_call: &mut impl FnMut(FuncId, ArgExpr)) {
    for stmt in stmts {
        match stmt {
            Stmt::Branch(_) => {}
            Stmt::Loop { trip, body, .. } => {
                if trip.max_trip(a) > 0 {
                    scan_executable(body, a, on_call);
                }
            }
            Stmt::Call { callee, arg } => on_call(*callee, *arg),
            Stmt::If {
                branch,
                then_body,
                else_body,
            } => match taken_set(branch.dist()) {
                TakenSet::AlwaysTaken => scan_executable(then_body, a, on_call),
                TakenSet::NeverTaken => scan_executable(else_body, a, on_call),
                TakenSet::Both => {
                    scan_executable(then_body, a, on_call);
                    scan_executable(else_body, a, on_call);
                }
            },
            Stmt::IfArgPositive { body } => {
                if a > 0 {
                    scan_executable(body, a, on_call);
                }
            }
        }
    }
}

/// Like [`scan_executable`], but reporting executable branch sites and
/// dead code instead of calls.
fn scan_sites(
    stmts: &[Stmt],
    a: u32,
    on_site: &mut impl FnMut(TakenDist),
    on_dead: &mut impl FnMut(DeadKind),
) {
    for stmt in stmts {
        match stmt {
            Stmt::Branch(b) => on_site(b.dist()),
            Stmt::Loop { id, trip, body } => {
                if trip.max_trip(a) == 0 {
                    on_dead(DeadKind::ZeroTripLoop(*id));
                } else {
                    scan_sites(body, a, on_site, on_dead);
                }
            }
            Stmt::Call { .. } => {}
            Stmt::If {
                branch,
                then_body,
                else_body,
            } => {
                on_site(branch.dist());
                match taken_set(branch.dist()) {
                    TakenSet::AlwaysTaken => {
                        if !else_body.is_empty() {
                            on_dead(DeadKind::DeadElseArm(branch.offset()));
                        }
                        scan_sites(then_body, a, on_site, on_dead);
                    }
                    TakenSet::NeverTaken => {
                        if !then_body.is_empty() {
                            on_dead(DeadKind::DeadThenArm(branch.offset()));
                        }
                        scan_sites(else_body, a, on_site, on_dead);
                    }
                    TakenSet::Both => {
                        scan_sites(then_body, a, on_site, on_dead);
                        scan_sites(else_body, a, on_site, on_dead);
                    }
                }
            }
            Stmt::IfArgPositive { body } => {
                if a == 0 {
                    if !body.is_empty() {
                        on_dead(DeadKind::NeverEnteredGuard);
                    }
                } else {
                    scan_sites(body, a, on_site, on_dead);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opd_microvm::{ProgramBuilder, Trip};

    #[test]
    fn unreachable_function_detected() {
        let mut b = ProgramBuilder::new();
        let orphan = b.declare("orphan");
        let main = b.declare("main");
        b.define(orphan, |f| {
            f.branch(TakenDist::Always);
        });
        b.define(main, |f| {
            f.branch(TakenDist::Always);
        });
        let p = b.entry(main).build().unwrap();
        let flow = FlowInfo::compute(&p);
        assert!(!flow.is_reachable(orphan));
        assert!(flow.is_reachable(main));
        assert_eq!(flow.alphabet_bound(), 1); // only main's Always site
    }

    #[test]
    fn max_arg_propagates_through_calls() {
        let mut b = ProgramBuilder::new();
        let leaf = b.declare("leaf");
        let mid = b.declare("mid");
        let main = b.declare("main");
        b.define(leaf, |f| {
            f.branch(TakenDist::Always);
        });
        b.define(mid, |f| {
            f.call(leaf, ArgExpr::Half);
        });
        b.define(main, |f| {
            f.call(mid, ArgExpr::Const(9));
            f.call(leaf, ArgExpr::Draw(2, 6));
        });
        let p = b.entry(main).entry_arg(100).build().unwrap();
        let flow = FlowInfo::compute(&p);
        assert_eq!(flow.max_arg(main), 100);
        assert_eq!(flow.max_arg(mid), 9);
        // max(Const 6, Half of 9) = 6.
        assert_eq!(flow.max_arg(leaf), 6);
    }

    #[test]
    fn zero_trip_loop_and_guard_reported_dead() {
        let mut b = ProgramBuilder::new();
        let main = b.declare("main");
        b.define(main, |f| {
            f.repeat(Trip::Fixed(0), |l| {
                l.branch(TakenDist::Always);
            });
            f.if_arg_positive(|g| {
                g.branch(TakenDist::Always);
            });
            f.branch(TakenDist::Bernoulli(0.5));
        });
        let p = b.build().unwrap(); // entry_arg defaults to 0
        let flow = FlowInfo::compute(&p);
        let kinds: Vec<DeadKind> = flow.dead_sites().iter().map(|d| d.kind).collect();
        assert!(matches!(kinds[0], DeadKind::ZeroTripLoop(_)));
        assert!(matches!(kinds[1], DeadKind::NeverEnteredGuard));
        // Only the live Bernoulli site counts, both outcomes.
        assert_eq!(flow.alphabet_bound(), 2);
        assert_eq!(flow.executable_sites(), 1);
    }

    #[test]
    fn dead_branch_arms_reported() {
        let mut b = ProgramBuilder::new();
        let main = b.declare("main");
        b.define(main, |f| {
            f.cond(
                TakenDist::Always,
                |t| {
                    t.branch(TakenDist::Never);
                },
                |e| {
                    e.branch(TakenDist::Always);
                },
            );
            f.cond(
                TakenDist::Bernoulli(0.0),
                |t| {
                    t.branch(TakenDist::Always);
                },
                |_| {},
            );
        });
        let p = b.build().unwrap();
        let flow = FlowInfo::compute(&p);
        let kinds: Vec<DeadKind> = flow.dead_sites().iter().map(|d| d.kind).collect();
        assert_eq!(kinds.len(), 2);
        // Offsets: guard @0, then-arm @1, else-arm @2, second guard @3.
        assert!(matches!(kinds[0], DeadKind::DeadElseArm(0)));
        assert!(matches!(kinds[1], DeadKind::DeadThenArm(3)));
        // Guards: Always (1) + Bernoulli(0) (1); live arms: Never (1).
        assert_eq!(flow.alphabet_bound(), 3);
    }

    #[test]
    fn alternating_and_periodic_count_two_outcomes() {
        let mut b = ProgramBuilder::new();
        let main = b.declare("main");
        b.define(main, |f| {
            f.branch(TakenDist::Alternating);
            f.branch(TakenDist::Periodic(3));
            f.branch(TakenDist::Periodic(1)); // fires every time: 1 outcome
        });
        let flow = FlowInfo::compute(&b.build().unwrap());
        assert_eq!(flow.alphabet_bound(), 2 + 2 + 1);
    }

    #[test]
    fn workloads_have_no_dead_code_and_tight_alphabets() {
        for w in opd_microvm::workloads::Workload::ALL {
            let p = w.program(1);
            let flow = FlowInfo::compute(&p);
            assert!(flow.dead_sites().is_empty(), "{w}: {:?}", flow.dead_sites());
            for i in 0..p.functions().len() {
                assert!(flow.is_reachable(p.func_id(i)), "{w}: f{i} unreachable");
            }
            assert!(flow.alphabet_bound() <= 2 * p.site_count() as u64, "{w}");
        }
    }
}
