//! Interval abstract interpretation over the MicroVM IR.
//!
//! [`StaticBounds`](crate::StaticBounds) answers "how much, at most":
//! a single worst-case number per quantity. Resource *certification*
//! needs both ends — a detector that provably never fires is as
//! important a fact as one that fires at most `k` times — and it needs
//! the answers *per branch site*, because the interned alphabet (and
//! therefore the kernel's memory footprint) is a sum of per-site
//! outcome counts, not a single trip product.
//!
//! [`AbsInt`] runs the IR through an interval domain with a
//! congruence (stride) refinement:
//!
//! * Every abstract value is a [`StrideInterval`]: the set
//!   `{ lo, lo + s, lo + 2s, … } ∩ [lo, hi]`. Loop multiplication is
//!   where the stride earns its keep — a `Fixed(3)` loop over a
//!   2-element body yields element counts in `{6k}`, and joining two
//!   `If` arms recovers `gcd(|lo₁ − lo₂|, s₁, s₂)` instead of
//!   collapsing to stride 1.
//! * Function summaries ([`elements`](AbsInt::elements) plus one
//!   visit-count interval per static branch site) are memoized per
//!   `(function, argument-interval)` key and composed through the call
//!   graph exactly like the interpreter composes frames.
//! * **Widening** is saturation: re-entering an in-progress
//!   `(function, argument)` key (an abstract cycle the argument
//!   refinement cannot break) or exceeding [`DEPTH_CAP`] jumps the
//!   summary to ⊤ (`[0, u64::MAX]` everywhere) and latches
//!   [`overflowed`](AbsInt::overflowed). Argument-decreasing recursion
//!   (`Dec`, `Half`) never cycles — each recursive step shrinks the
//!   argument interval, so the chain bottoms out like the concrete
//!   evaluation does.
//!
//! Lower bounds lean on one interpreter fact: element emission does
//! not depend on branch *outcomes* (a branch emits exactly one profile
//! element per execution whichever way it goes), only on trip draws
//! and argument draws, whose distributions have known supports.

use std::collections::{HashMap, HashSet};

use opd_microvm::{ArgExpr, FuncId, Program, Stmt, TakenDist, Trip};

/// Recursion guard for the abstract evaluation, mirroring the concrete
/// evaluator in `bounds.rs`.
const DEPTH_CAP: usize = 1024;

/// Greatest common divisor (`gcd(0, x) = x`).
fn gcd(a: u64, b: u64) -> u64 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// A congruence-refined interval: the value set
/// `{ lo + k · stride | k ≥ 0 } ∩ [lo, hi]`.
///
/// Invariants (every constructor normalizes): a single-point
/// interval has `stride == 0`; otherwise `stride ≥ 1` and `hi − lo`
/// is a multiple of `stride`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StrideInterval {
    lo: u64,
    hi: u64,
    stride: u64,
}

impl StrideInterval {
    /// The single value `v`.
    #[must_use]
    pub fn point(v: u64) -> Self {
        StrideInterval {
            lo: v,
            hi: v,
            stride: 0,
        }
    }

    /// Every value in `[lo, hi]` (stride 1).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn span(lo: u64, hi: u64) -> Self {
        assert!(lo <= hi, "span [{lo}, {hi}] is inverted");
        StrideInterval { lo, hi, stride: 1 }.normalize()
    }

    /// The saturated top element `[0, u64::MAX]`.
    #[must_use]
    pub fn top() -> Self {
        StrideInterval {
            lo: 0,
            hi: u64::MAX,
            stride: 1,
        }
    }

    /// Smallest representable value.
    #[must_use]
    pub fn lo(self) -> u64 {
        self.lo
    }

    /// Largest representable value.
    #[must_use]
    pub fn hi(self) -> u64 {
        self.hi
    }

    /// The congruence stride (0 for a single point).
    #[must_use]
    pub fn stride(self) -> u64 {
        self.stride
    }

    /// `true` if `v` is in the represented set.
    #[must_use]
    pub fn contains(self, v: u64) -> bool {
        v >= self.lo && v <= self.hi && (self.stride == 0 || (v - self.lo) % self.stride == 0)
    }

    /// Restores the invariants after an endpoint or stride update.
    fn normalize(mut self) -> Self {
        debug_assert!(self.lo <= self.hi);
        if self.lo == self.hi {
            self.stride = 0;
        } else {
            self.stride = self.stride.max(1);
            // Snap `hi` down onto the congruence lattice.
            self.hi = self.lo + ((self.hi - self.lo) / self.stride) * self.stride;
            if self.lo == self.hi {
                self.stride = 0;
            }
        }
        self
    }

    /// Pointwise sum. Saturates to ⊤-like endpoints on overflow and
    /// reports it through `overflowed`.
    #[must_use]
    pub fn add(self, other: Self, overflowed: &mut bool) -> Self {
        let lo = self.lo.checked_add(other.lo).unwrap_or_else(|| {
            *overflowed = true;
            u64::MAX
        });
        let hi = self.hi.checked_add(other.hi).unwrap_or_else(|| {
            *overflowed = true;
            u64::MAX
        });
        StrideInterval {
            lo,
            hi,
            stride: gcd(self.stride, other.stride),
        }
        .normalize()
    }

    /// Pointwise product (`self` values times `other` values), for
    /// scaling a loop body by its trip count. The product stride is
    /// `gcd(lo₁·s₂, lo₂·s₁, s₁·s₂)`: writing values as `lo + k·s`,
    /// every cross term is a multiple of that gcd.
    #[must_use]
    pub fn mul(self, other: Self, overflowed: &mut bool) -> Self {
        if (self.lo == 0 && self.hi == 0) || (other.lo == 0 && other.hi == 0) {
            return StrideInterval::point(0);
        }
        let lo = self.lo.checked_mul(other.lo).unwrap_or_else(|| {
            *overflowed = true;
            u64::MAX
        });
        let hi = self.hi.checked_mul(other.hi).unwrap_or_else(|| {
            *overflowed = true;
            u64::MAX
        });
        let stride = match (
            self.lo.checked_mul(other.stride),
            other.lo.checked_mul(self.stride),
            self.stride.checked_mul(other.stride),
        ) {
            (Some(a), Some(b), Some(c)) => gcd(gcd(a, b), c),
            _ => 1,
        };
        StrideInterval { lo, hi, stride }.normalize()
    }

    /// Least upper bound of the two value sets: the join keeps the
    /// congruence the branches agree on
    /// (`gcd(s₁, s₂, |lo₁ − lo₂|)`).
    #[must_use]
    pub fn join(self, other: Self) -> Self {
        let lo = self.lo.min(other.lo);
        let hi = self.hi.max(other.hi);
        let stride = gcd(gcd(self.stride, other.stride), self.lo.abs_diff(other.lo));
        StrideInterval { lo, hi, stride }.normalize()
    }

    /// Restricts the set to values `≥ min` (the `IfArgPositive` body
    /// refinement). The caller guarantees `hi ≥ min`.
    #[must_use]
    fn at_least(self, min: u64) -> Self {
        debug_assert!(self.hi >= min);
        if self.lo >= min {
            return self;
        }
        let stride = self.stride.max(1);
        let lo = self.lo + (min - self.lo).div_ceil(stride) * stride;
        StrideInterval {
            lo: lo.min(self.hi),
            hi: self.hi,
            stride: self.stride,
        }
        .normalize()
    }

    /// Saturating decrement of every value (the `Dec` argument rule).
    /// Saturation at 0 merges two lattice points, so the stride only
    /// survives when no value saturates.
    fn dec(self) -> Self {
        let lo = self.lo.saturating_sub(1);
        let hi = self.hi.saturating_sub(1);
        let stride = if self.lo >= 1 { self.stride } else { 1 };
        StrideInterval { lo, hi, stride }.normalize()
    }

    /// Pointwise halving (the `Half` argument rule). Division does not
    /// preserve congruences in general, so the stride degrades to 1.
    fn half(self) -> Self {
        StrideInterval {
            lo: self.lo / 2,
            hi: self.hi / 2,
            stride: 1,
        }
        .normalize()
    }
}

/// The per-site abstract result: which static branch site, its taken
/// distribution, and the certified visit-count interval.
#[derive(Debug, Clone, Copy)]
pub struct SiteVisits {
    /// The function owning the site.
    pub func: FuncId,
    /// The site's bytecode offset within its function.
    pub offset: u32,
    /// The site's taken-bit distribution.
    pub dist: TakenDist,
    /// How many times any run visits the site.
    pub visits: StrideInterval,
}

/// One function summary: total emitted elements plus one visit-count
/// interval per static site (dense, indexed like `AbsInt::sites`).
#[derive(Debug, Clone)]
struct Summary {
    elements: StrideInterval,
    visits: Vec<StrideInterval>,
    saturated: bool,
}

impl Summary {
    fn zero(n_sites: usize) -> Self {
        Summary {
            elements: StrideInterval::point(0),
            visits: vec![StrideInterval::point(0); n_sites],
            saturated: false,
        }
    }

    fn top(n_sites: usize) -> Self {
        Summary {
            elements: StrideInterval::top(),
            visits: vec![StrideInterval::top(); n_sites],
            saturated: true,
        }
    }

    fn add(&mut self, other: &Summary, overflowed: &mut bool) {
        self.elements = self.elements.add(other.elements, overflowed);
        for (mine, theirs) in self.visits.iter_mut().zip(&other.visits) {
            *mine = mine.add(*theirs, overflowed);
        }
        self.saturated |= other.saturated;
    }

    fn scale(&self, trips: StrideInterval, overflowed: &mut bool) -> Summary {
        Summary {
            elements: self.elements.mul(trips, overflowed),
            visits: self
                .visits
                .iter()
                .map(|v| v.mul(trips, overflowed))
                .collect(),
            saturated: self.saturated && trips.hi() > 0,
        }
    }

    fn join(&self, other: &Summary) -> Summary {
        Summary {
            elements: self.elements.join(other.elements),
            visits: self
                .visits
                .iter()
                .zip(&other.visits)
                .map(|(a, b)| a.join(*b))
                .collect(),
            saturated: self.saturated || other.saturated,
        }
    }
}

/// The interval abstract interpretation of one program: element-count
/// and per-site visit-count intervals for the entry invocation.
#[derive(Debug, Clone)]
pub struct AbsInt {
    elements: StrideInterval,
    sites: Vec<SiteVisits>,
    overflowed: bool,
}

struct Eval<'p> {
    program: &'p Program,
    /// `(function index, site offset)` → dense site index.
    site_index: HashMap<(u32, u32), usize>,
    n_sites: usize,
    memo: HashMap<(u32, StrideInterval), Summary>,
    in_progress: HashSet<(u32, StrideInterval)>,
    depth: usize,
    overflowed: bool,
}

impl AbsInt {
    /// Abstractly interprets `program` from its entry invocation.
    #[must_use]
    pub fn of(program: &Program) -> Self {
        let mut sites = Vec::new();
        let mut site_index = HashMap::new();
        for (fi, function) in program.functions().iter().enumerate() {
            collect_sites(
                program.func_id(fi),
                function.body(),
                &mut sites,
                &mut site_index,
            );
        }
        let n_sites = sites.len();
        let mut eval = Eval {
            program,
            site_index,
            n_sites,
            memo: HashMap::new(),
            in_progress: HashSet::new(),
            depth: 0,
            overflowed: false,
        };
        let summary = eval.func(
            program.entry().index(),
            StrideInterval::point(u64::from(program.entry_arg())),
        );
        let overflowed = eval.overflowed || summary.saturated;
        for (site, visits) in sites.iter_mut().zip(&summary.visits) {
            site.visits = *visits;
        }
        AbsInt {
            elements: summary.elements,
            sites,
            overflowed,
        }
    }

    /// The certified interval of profile elements any run emits
    /// (before any fuel truncation).
    #[must_use]
    pub fn elements(&self) -> StrideInterval {
        self.elements
    }

    /// Per-site visit-count intervals, in program order.
    #[must_use]
    pub fn sites(&self) -> &[SiteVisits] {
        &self.sites
    }

    /// `true` if any bound saturated — an abstract cycle the argument
    /// refinement could not break, or a `u64` overflow. Upper bounds
    /// are then `u64::MAX` (vacuous); lower bounds remain sound.
    #[must_use]
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// The certified interval of *distinct interned elements*
    /// (`(site, taken)` pairs) any run can produce, from the per-site
    /// visit intervals and the distributions' outcome structure: an
    /// `Alternating` site needs two visits to produce both outcomes, a
    /// `Periodic(p)` site needs `p` visits to produce its first taken
    /// element, and any visited site produces at least one element.
    #[must_use]
    pub fn alphabet(&self) -> StrideInterval {
        let mut lo = 0u64;
        let mut hi = 0u64;
        for site in &self.sites {
            lo = lo.saturating_add(min_outcomes(site.dist, site.visits.lo()));
            hi = hi.saturating_add(max_outcomes(site.dist, site.visits.hi()));
        }
        StrideInterval { lo, hi, stride: 1 }.normalize()
    }
}

/// Distinct `(site, taken)` elements the site is *guaranteed* to
/// produce when visited at least `visits_lo` times.
fn min_outcomes(dist: TakenDist, visits_lo: u64) -> u64 {
    if visits_lo == 0 {
        return 0;
    }
    match dist {
        // Deterministic single outcome; any visit produces it.
        TakenDist::Always | TakenDist::Never => 1,
        // Degenerate probabilities are deterministic too; otherwise
        // every visit produces *some* element, outcome unknown.
        TakenDist::Bernoulli(_) => 1,
        // First visit taken, second not taken (state starts at 0 and
        // toggles before the read).
        TakenDist::Alternating => {
            if visits_lo >= 2 {
                2
            } else {
                1
            }
        }
        // `period ≤ 1` is always-taken; otherwise visit 1 is not
        // taken and visit `period` is the first taken one.
        TakenDist::Periodic(period) => {
            if period <= 1 {
                1
            } else if visits_lo >= u64::from(period) {
                2
            } else {
                1
            }
        }
    }
}

/// Distinct `(site, taken)` elements the site can produce in at most
/// `visits_hi` visits.
fn max_outcomes(dist: TakenDist, visits_hi: u64) -> u64 {
    if visits_hi == 0 {
        return 0;
    }
    match dist {
        TakenDist::Always | TakenDist::Never => 1,
        TakenDist::Bernoulli(p) => {
            if p <= 0.0 || p >= 1.0 {
                1
            } else if visits_hi >= 2 {
                2
            } else {
                1
            }
        }
        TakenDist::Alternating => {
            if visits_hi >= 2 {
                2
            } else {
                1
            }
        }
        TakenDist::Periodic(period) => {
            if period <= 1 {
                1
            } else if visits_hi >= u64::from(period) {
                2
            } else {
                // Fewer visits than the period: the counter never
                // reaches it, so only not-taken elements exist.
                1
            }
        }
    }
}

fn collect_sites(
    func: FuncId,
    stmts: &[Stmt],
    sites: &mut Vec<SiteVisits>,
    index: &mut HashMap<(u32, u32), usize>,
) {
    for stmt in stmts {
        match stmt {
            Stmt::Branch(b) => {
                index.insert((func.index(), b.offset()), sites.len());
                sites.push(SiteVisits {
                    func,
                    offset: b.offset(),
                    dist: b.dist(),
                    visits: StrideInterval::point(0),
                });
            }
            Stmt::Loop { body, .. } | Stmt::IfArgPositive { body } => {
                collect_sites(func, body, sites, index);
            }
            Stmt::Call { .. } => {}
            Stmt::If {
                branch,
                then_body,
                else_body,
            } => {
                index.insert((func.index(), branch.offset()), sites.len());
                sites.push(SiteVisits {
                    func,
                    offset: branch.offset(),
                    dist: branch.dist(),
                    visits: StrideInterval::point(0),
                });
                collect_sites(func, then_body, sites, index);
                collect_sites(func, else_body, sites, index);
            }
        }
    }
}

/// Which way a branch can go, statically.
enum Taken {
    Always,
    Never,
    Both,
}

fn taken_lattice(dist: TakenDist) -> Taken {
    match dist {
        TakenDist::Always => Taken::Always,
        TakenDist::Never => Taken::Never,
        TakenDist::Bernoulli(p) => {
            if p <= 0.0 {
                Taken::Never
            } else if p >= 1.0 {
                Taken::Always
            } else {
                Taken::Both
            }
        }
        // The interpreter increments the counter before comparing, so
        // period 0 and 1 both fire on every visit.
        TakenDist::Periodic(period) => {
            if period <= 1 {
                Taken::Always
            } else {
                Taken::Both
            }
        }
        TakenDist::Alternating => Taken::Both,
    }
}

impl Eval<'_> {
    fn func(&mut self, func: u32, arg: StrideInterval) -> Summary {
        let key = (func, arg);
        if let Some(cached) = self.memo.get(&key) {
            return cached.clone();
        }
        if self.in_progress.contains(&key) || self.depth >= DEPTH_CAP {
            // Widening: an abstract cycle (or a pathological chain)
            // jumps straight to ⊤ rather than iterating to a fixpoint
            // the interval domain may never reach.
            self.overflowed = true;
            return Summary::top(self.n_sites);
        }
        self.in_progress.insert(key);
        self.depth += 1;
        let body = self.program.function(self.program.func_id(func as usize));
        let summary = self.block(func, arg, body.body());
        self.depth -= 1;
        self.in_progress.remove(&key);
        self.memo.insert(key, summary.clone());
        summary
    }

    fn block(&mut self, func: u32, arg: StrideInterval, stmts: &[Stmt]) -> Summary {
        let mut total = Summary::zero(self.n_sites);
        for stmt in stmts {
            match stmt {
                Stmt::Branch(b) => {
                    self.visit_site(&mut total, func, b.offset());
                }
                Stmt::Loop { trip, body, .. } => {
                    let trips = self.trip_interval(*trip, arg);
                    if trips.hi() > 0 {
                        let one = self.block(func, arg, body);
                        let scaled = one.scale(trips, &mut self.overflowed);
                        total.add(&scaled, &mut self.overflowed);
                    }
                }
                Stmt::Call { callee, arg: expr } => {
                    let callee_arg = arg_interval(*expr, arg);
                    let summary = self.func(callee.index(), callee_arg);
                    total.add(&summary, &mut self.overflowed);
                }
                Stmt::If {
                    branch,
                    then_body,
                    else_body,
                } => {
                    self.visit_site(&mut total, func, branch.offset());
                    let arm = match taken_lattice(branch.dist()) {
                        Taken::Always => self.block(func, arg, then_body),
                        Taken::Never => self.block(func, arg, else_body),
                        Taken::Both => {
                            let then_s = self.block(func, arg, then_body);
                            let else_s = self.block(func, arg, else_body);
                            then_s.join(&else_s)
                        }
                    };
                    total.add(&arm, &mut self.overflowed);
                }
                Stmt::IfArgPositive { body } => {
                    if arg.hi() == 0 {
                        continue;
                    }
                    let positive = self.block(func, arg.at_least(1), body);
                    if arg.lo() >= 1 {
                        total.add(&positive, &mut self.overflowed);
                    } else {
                        // The guard may skip the body entirely.
                        let skipped = Summary::zero(self.n_sites);
                        total.add(&positive.join(&skipped), &mut self.overflowed);
                    }
                }
            }
        }
        total
    }

    fn visit_site(&mut self, total: &mut Summary, func: u32, offset: u32) {
        total.elements = total
            .elements
            .add(StrideInterval::point(1), &mut self.overflowed);
        let idx = self.site_index[&(func, offset)];
        total.visits[idx] = total.visits[idx].add(StrideInterval::point(1), &mut self.overflowed);
    }

    fn trip_interval(&self, trip: Trip, arg: StrideInterval) -> StrideInterval {
        match trip {
            Trip::Fixed(n) => StrideInterval::point(u64::from(n)),
            Trip::Uniform(lo, hi) => StrideInterval::span(u64::from(lo), u64::from(hi)),
            Trip::Arg => arg,
        }
    }
}

fn arg_interval(expr: ArgExpr, caller: StrideInterval) -> StrideInterval {
    match expr {
        ArgExpr::Const(v) => StrideInterval::point(u64::from(v)),
        ArgExpr::Dec => caller.dec(),
        ArgExpr::Half => caller.half(),
        ArgExpr::Draw(lo, hi) => StrideInterval::span(u64::from(lo), u64::from(hi)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opd_microvm::{workloads::Workload, Interpreter, ProgramBuilder};
    use opd_trace::ExecutionTrace;

    #[test]
    fn stride_arithmetic_holds_its_invariants() {
        let mut of = false;
        let a = StrideInterval::span(2, 10); // {2..10}
        let b = StrideInterval::point(3);
        let sum = a.add(b, &mut of);
        assert_eq!((sum.lo(), sum.hi(), sum.stride()), (5, 13, 1));
        // Fixed trip × exact body: stays exact.
        let six = StrideInterval::point(2).mul(StrideInterval::point(3), &mut of);
        assert_eq!((six.lo(), six.hi(), six.stride()), (6, 6, 0));
        // Uniform(2,4) trips × 2 elements/iteration: {4, 6, 8}.
        let p = StrideInterval::point(2).mul(StrideInterval::span(2, 4), &mut of);
        assert_eq!((p.lo(), p.hi(), p.stride()), (4, 8, 2));
        assert!(p.contains(6));
        assert!(!p.contains(5));
        // Join of two points keeps their difference as the stride.
        let j = StrideInterval::point(3).join(StrideInterval::point(9));
        assert_eq!((j.lo(), j.hi(), j.stride()), (3, 9, 6));
        assert!(!of);
    }

    #[test]
    fn stride_saturates_on_overflow() {
        let mut of = false;
        let big = StrideInterval::point(u64::MAX / 2);
        let r = big.mul(StrideInterval::point(3), &mut of);
        assert!(of);
        assert_eq!(r.hi(), u64::MAX);
    }

    #[test]
    fn fixed_loop_counts_are_exact() {
        let mut b = ProgramBuilder::new();
        let main = b.declare("main");
        b.define(main, |f| {
            f.repeat(Trip::Fixed(7), |l| {
                l.branch(TakenDist::Always);
                l.branch(TakenDist::Alternating);
            });
        });
        let program = b.build().unwrap();
        let a = AbsInt::of(&program);
        assert!(!a.overflowed());
        assert_eq!((a.elements().lo(), a.elements().hi()), (14, 14));
        for site in a.sites() {
            assert_eq!((site.visits.lo(), site.visits.hi()), (7, 7));
        }
        // Always: 1 outcome; Alternating with ≥ 2 visits: 2 outcomes.
        assert_eq!((a.alphabet().lo(), a.alphabet().hi()), (3, 3));
    }

    #[test]
    fn uniform_trips_produce_a_strided_interval() {
        let mut b = ProgramBuilder::new();
        let main = b.declare("main");
        b.define(main, |f| {
            f.repeat(Trip::Uniform(2, 5), |l| {
                l.branch(TakenDist::Bernoulli(0.5));
                l.branch(TakenDist::Bernoulli(0.5));
                l.branch(TakenDist::Bernoulli(0.5));
            });
        });
        let a = AbsInt::of(&b.build().unwrap());
        let e = a.elements();
        assert_eq!((e.lo(), e.hi(), e.stride()), (6, 15, 3));
        assert!(e.contains(9) && !e.contains(10));
    }

    #[test]
    fn guarded_recursion_terminates_without_widening() {
        let mut b = ProgramBuilder::new();
        let rec = b.declare("rec");
        let main = b.declare("main");
        b.define(rec, |f| {
            f.branch(TakenDist::Always);
            f.if_arg_positive(|g| {
                g.call(rec, ArgExpr::Dec);
            });
        });
        b.define(main, |f| {
            f.call(rec, ArgExpr::Const(5));
        });
        let a = AbsInt::of(&b.entry(main).build().unwrap());
        assert!(!a.overflowed());
        // arg 5 → exactly 6 visits of the branch (args 5,4,3,2,1,0).
        assert_eq!((a.elements().lo(), a.elements().hi()), (6, 6));
    }

    #[test]
    fn unguarded_recursion_widens_to_top() {
        let mut b = ProgramBuilder::new();
        let rec = b.declare("rec");
        let main = b.declare("main");
        b.define(rec, |f| {
            f.branch(TakenDist::Always);
            f.call(rec, ArgExpr::Const(3));
        });
        b.define(main, |f| {
            f.call(rec, ArgExpr::Const(3));
        });
        let a = AbsInt::of(&b.entry(main).build().unwrap());
        assert!(a.overflowed());
        assert_eq!(a.elements().hi(), u64::MAX);
        // The lower bound stays sound (and finite).
        assert!(a.elements().lo() < u64::MAX);
    }

    #[test]
    fn draw_arguments_widen_the_interval_but_stay_finite() {
        let mut b = ProgramBuilder::new();
        let leaf = b.declare("leaf");
        let main = b.declare("main");
        b.define(leaf, |f| {
            f.repeat(Trip::Arg, |l| {
                l.branch(TakenDist::Always);
            });
        });
        b.define(main, |f| {
            f.call(leaf, ArgExpr::Draw(3, 9));
        });
        let a = AbsInt::of(&b.entry(main).build().unwrap());
        assert!(!a.overflowed());
        assert_eq!((a.elements().lo(), a.elements().hi()), (3, 9));
    }

    #[test]
    fn dynamic_runs_land_inside_the_intervals_for_all_workloads() {
        for w in Workload::ALL {
            let program = w.program(1);
            let a = AbsInt::of(&program);
            assert!(!a.overflowed(), "{w} saturated");
            let mut trace = ExecutionTrace::new();
            Interpreter::new(&program, w.default_seed())
                .run(&mut trace)
                .expect("workloads terminate");
            let emitted = trace.branches().len() as u64;
            assert!(
                a.elements().lo() <= emitted && emitted <= a.elements().hi(),
                "{w}: {emitted} outside [{}, {}]",
                a.elements().lo(),
                a.elements().hi()
            );
            // Per-site dynamic visit counts stay inside their
            // intervals too.
            let mut counts: HashMap<(u32, u32), u64> = HashMap::new();
            for e in trace.branches() {
                *counts
                    .entry((e.site().method().index(), e.site().offset()))
                    .or_insert(0) += 1;
            }
            for site in a.sites() {
                let seen = counts
                    .get(&(site.func.index(), site.offset))
                    .copied()
                    .unwrap_or(0);
                assert!(
                    site.visits.lo() <= seen && seen <= site.visits.hi(),
                    "{w} f{} @{}: {seen} outside [{}, {}]",
                    site.func.index(),
                    site.offset,
                    site.visits.lo(),
                    site.visits.hi()
                );
            }
        }
    }
}
