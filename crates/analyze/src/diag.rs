//! The diagnostic model: stable codes, a severity lattice, and
//! rustc-style rendering.

use core::fmt;

use opd_microvm::{BuildError, Program};

/// Stable identifiers of every lint the analyzer can emit.
///
/// Codes are append-only: a code is never reused or renumbered once
/// released, so tools can match on them across versions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum Code {
    /// `OPD-W001`: a function is unreachable from the entry point.
    UnreachableFunction,
    /// `OPD-E002`: a recursion cycle is not argument-guarded, or does
    /// not strictly decrease its argument — execution may never
    /// terminate.
    UnguardedRecursion,
    /// `OPD-W003`: a branch distribution is degenerate (`p=0`, `p=1`,
    /// or `period=1`) and should be the equivalent deterministic form.
    DegenerateDistribution,
    /// `OPD-E004`: the worst-case trip/argument bound computation
    /// overflowed `u64` — the program's worst case is astronomically
    /// large and no meaningful static bound exists.
    BoundOverflow,
    /// `OPD-E005`: the program violates IR-level structural validity
    /// (the same defects [`opd_microvm::ProgramBuilder`] rejects).
    InvalidStructure,
    /// `OPD-W006`: statically dead code — a zero-trip loop body, a
    /// branch arm that can never execute, or a recursion guard whose
    /// argument is always zero.
    DeadCode,
    /// `OPD-W007`: the static worst-case call depth exceeds the
    /// interpreter's default limit — the program is well-formed but
    /// would abort with `CallDepthExceeded` when run.
    CallDepthBound,
    /// `OPD-C101`: two sweep-grid entries are textually identical
    /// configurations — the second contributes nothing.
    DuplicateConfig,
    /// `OPD-C102`: a detector is provably silent on a workload — the
    /// static branch bound is below `cw + tw`, so its windows can
    /// never warm up and it reports zero phases.
    ProvablySilent,
    /// `OPD-C103`: the skip factor exceeds the current window, so a
    /// phase-end flush over-fills the CW and the config is excluded
    /// from shared-window scanning.
    SkipSwallowsWindow,
    /// `OPD-C104`: a sweep axis is redundant — every pair of grid
    /// entries differing only in that axis is provably equivalent.
    RedundantSweepAxis,
    /// `OPD-C105`: a comparison-op cost bound overflowed `u64`; the
    /// static cost model cannot rank this config and scheduling falls
    /// back to the saturated maximum.
    CostBoundOverflow,
    /// `OPD-C106`: a config is provably equivalent to an earlier grid
    /// entry (its class representative) on every trace, beyond exact
    /// duplication — it is shadowed and can be pruned.
    ShadowedRepresentative,
    /// `OPD-R201`: a declared shared atomic was never touched by any
    /// schedule exploration — its concurrency behavior is unverified.
    UnexploredAtomic,
    /// `OPD-R202`: an atomic written with `Relaxed` read-modify-writes
    /// is read with `Acquire` (or stronger) — the reader expects a
    /// happens-before edge the writer never publishes, the classic
    /// "relaxed RMW used as a release flag" bug.
    RelaxedReleaseFlag,
    /// `OPD-R203`: a multi-shard metric family had a snapshot read
    /// race one of its shard updates — the summed snapshot is torn
    /// across shards and must not be treated as a point-in-time value.
    TornSnapshot,
    /// `OPD-A301`: the certified phase-transition upper bound is zero —
    /// the detector provably never fires on this workload.
    CertNeverFires,
    /// `OPD-A302`: the skip factor is at least `cw + tw`, so the
    /// detector warms on its very first step and the certificate's
    /// judged-step bound collapses to the raw `cost.rs` bound — the
    /// certificate adds no tightness.
    CertNotTighter,
    /// `OPD-A303`: the certified kernel-memory high-water mark exceeds
    /// the admission budget — the session must be rejected.
    CertBudgetExceeded,
    /// `OPD-A304`: the interpreter fuel clamps the certificate — the
    /// static element bound exceeds the fuel, so the certified
    /// intervals describe the truncated run, not the full program.
    CertTruncated,
    /// `OPD-A305`: an abstract-interpretation bound saturated (cycle
    /// widening or `u64` overflow) — the certificate's upper bounds
    /// are vacuous and cannot support admission control.
    CertVacuous,
    /// `OPD-O401`: a service window's p99 frame latency (in virtual
    /// ticks) burned through the latency SLO.
    SloLatencyBurn,
    /// `OPD-O402`: a service window shed more of its offered frames
    /// than the shed SLO allows.
    SloShedBudget,
    /// `OPD-O403`: a service window quarantined more of its sessions
    /// than the quarantine SLO allows.
    SloQuarantineBudget,
    /// `OPD-O404`: the service's completion floor was breached —
    /// too few sessions reached a clean terminal state, or a
    /// completed session failed bit-identity verification.
    SloCompletionFloor,
}

impl Code {
    /// Every code, in numeric order.
    pub const ALL: [Code; 25] = [
        Code::UnreachableFunction,
        Code::UnguardedRecursion,
        Code::DegenerateDistribution,
        Code::BoundOverflow,
        Code::InvalidStructure,
        Code::DeadCode,
        Code::CallDepthBound,
        Code::DuplicateConfig,
        Code::ProvablySilent,
        Code::SkipSwallowsWindow,
        Code::RedundantSweepAxis,
        Code::CostBoundOverflow,
        Code::ShadowedRepresentative,
        Code::UnexploredAtomic,
        Code::RelaxedReleaseFlag,
        Code::TornSnapshot,
        Code::CertNeverFires,
        Code::CertNotTighter,
        Code::CertBudgetExceeded,
        Code::CertTruncated,
        Code::CertVacuous,
        Code::SloLatencyBurn,
        Code::SloShedBudget,
        Code::SloQuarantineBudget,
        Code::SloCompletionFloor,
    ];

    /// The stable textual form, e.g. `OPD-E002`.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Code::UnreachableFunction => "OPD-W001",
            Code::UnguardedRecursion => "OPD-E002",
            Code::DegenerateDistribution => "OPD-W003",
            Code::BoundOverflow => "OPD-E004",
            Code::InvalidStructure => "OPD-E005",
            Code::DeadCode => "OPD-W006",
            Code::CallDepthBound => "OPD-W007",
            Code::DuplicateConfig => "OPD-C101",
            Code::ProvablySilent => "OPD-C102",
            Code::SkipSwallowsWindow => "OPD-C103",
            Code::RedundantSweepAxis => "OPD-C104",
            Code::CostBoundOverflow => "OPD-C105",
            Code::ShadowedRepresentative => "OPD-C106",
            Code::UnexploredAtomic => "OPD-R201",
            Code::RelaxedReleaseFlag => "OPD-R202",
            Code::TornSnapshot => "OPD-R203",
            Code::CertNeverFires => "OPD-A301",
            Code::CertNotTighter => "OPD-A302",
            Code::CertBudgetExceeded => "OPD-A303",
            Code::CertTruncated => "OPD-A304",
            Code::CertVacuous => "OPD-A305",
            Code::SloLatencyBurn => "OPD-O401",
            Code::SloShedBudget => "OPD-O402",
            Code::SloQuarantineBudget => "OPD-O403",
            Code::SloCompletionFloor => "OPD-O404",
        }
    }

    /// The severity this code is reported at. (`OPD-C*` plan codes,
    /// `OPD-R*` race-audit codes, `OPD-A*` certificate codes, and
    /// `OPD-O*` observability/SLO codes carry their own letter at
    /// either severity; program codes use `W`/`E` matching their
    /// severity.)
    #[must_use]
    pub fn severity(self) -> Severity {
        match self {
            Code::UnreachableFunction
            | Code::DegenerateDistribution
            | Code::DeadCode
            | Code::CallDepthBound
            | Code::DuplicateConfig
            | Code::ProvablySilent
            | Code::SkipSwallowsWindow
            | Code::RedundantSweepAxis
            | Code::ShadowedRepresentative
            | Code::UnexploredAtomic
            | Code::RelaxedReleaseFlag
            | Code::TornSnapshot
            | Code::CertNeverFires
            | Code::CertNotTighter
            | Code::CertTruncated
            | Code::CertVacuous => Severity::Warning,
            Code::UnguardedRecursion
            | Code::BoundOverflow
            | Code::InvalidStructure
            | Code::CostBoundOverflow
            | Code::CertBudgetExceeded
            | Code::SloLatencyBurn
            | Code::SloShedBudget
            | Code::SloQuarantineBudget
            | Code::SloCompletionFloor => Severity::Error,
        }
    }

    /// One-line description of what the code means.
    #[must_use]
    pub fn summary(self) -> &'static str {
        match self {
            Code::UnreachableFunction => "function unreachable from the entry point",
            Code::UnguardedRecursion => "recursion cycle without a decreasing argument guard",
            Code::DegenerateDistribution => "degenerate branch distribution",
            Code::BoundOverflow => "worst-case bound overflows u64",
            Code::InvalidStructure => "invalid program structure",
            Code::DeadCode => "statically dead code",
            Code::CallDepthBound => "static call depth exceeds the interpreter limit",
            Code::DuplicateConfig => "duplicate sweep-grid configuration",
            Code::ProvablySilent => "detector provably never warms on this workload",
            Code::SkipSwallowsWindow => "skip factor exceeds the current window",
            Code::RedundantSweepAxis => "sweep axis is provably redundant",
            Code::CostBoundOverflow => "comparison-op cost bound overflows u64",
            Code::ShadowedRepresentative => "config shadowed by an equivalent representative",
            Code::UnexploredAtomic => "shared atomic never covered by schedule exploration",
            Code::RelaxedReleaseFlag => "relaxed RMW flag read with acquire ordering",
            Code::TornSnapshot => "snapshot torn across metric shards",
            Code::CertNeverFires => "certified phase-count upper bound is zero",
            Code::CertNotTighter => "skip swallows the warm-up; certificate adds no tightness",
            Code::CertBudgetExceeded => "certified memory high-water mark exceeds the budget",
            Code::CertTruncated => "certificate clamped by the interpreter fuel",
            Code::CertVacuous => "certificate interval saturated and is vacuous",
            Code::SloLatencyBurn => "window p99 frame latency burned the latency SLO",
            Code::SloShedBudget => "window shed more frames than the shed SLO allows",
            Code::SloQuarantineBudget => "window quarantined more sessions than the SLO allows",
            Code::SloCompletionFloor => "service completion floor breached",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How severe a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but executable; reported, does not fail the lint.
    Warning,
    /// A defect: the program cannot be trusted to run to completion.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding of the lint engine.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    code: Code,
    message: String,
    location: String,
}

impl Diagnostic {
    /// Creates a diagnostic. `location` is a human-readable anchor,
    /// e.g. `fn trace_ray (f0)`.
    #[must_use]
    pub fn new(code: Code, location: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            message: message.into(),
            location: location.into(),
        }
    }

    /// Maps a builder/validation error onto its `OPD-E005` diagnostic.
    #[must_use]
    pub fn from_build_error(program: &Program, err: &BuildError) -> Self {
        let _ = program;
        Diagnostic::new(Code::InvalidStructure, "program", err.to_string())
    }

    /// The stable code.
    #[must_use]
    pub fn code(&self) -> Code {
        self.code
    }

    /// The code's severity.
    #[must_use]
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }

    /// The finding, in one sentence.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Where in the program the finding anchors.
    #[must_use]
    pub fn location(&self) -> &str {
        &self.location
    }

    /// Renders the diagnostic in rustc style:
    ///
    /// ```text
    /// error[OPD-E002]: functions `a` -> `b` -> `a` recurse without a decreasing guard
    ///   --> fn a (f0)
    /// ```
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "{}[{}]: {}\n  --> {}",
            self.severity(),
            self.code,
            self.message,
            self.location
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let mut names: Vec<&str> = Code::ALL.iter().map(|c| c.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Code::ALL.len());
        assert_eq!(Code::UnguardedRecursion.as_str(), "OPD-E002");
        assert!(Code::ALL.iter().all(|c| {
            let s = c.as_str();
            s.starts_with("OPD-") && !c.summary().is_empty()
        }));
    }

    #[test]
    fn severity_matches_code_letter() {
        for code in Code::ALL {
            let letter = code.as_str().as_bytes()[4];
            // Plan-lint (`C`), race-audit (`R`), certificate (`A`),
            // and SLO (`O`) codes use their own letter at either
            // severity; program codes encode their severity in the
            // letter.
            if letter == b'C' || letter == b'R' || letter == b'A' || letter == b'O' {
                continue;
            }
            match code.severity() {
                Severity::Warning => assert_eq!(letter, b'W', "{code}"),
                Severity::Error => assert_eq!(letter, b'E', "{code}"),
            }
        }
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn plan_codes_use_the_c_prefix_and_100_range() {
        let plan: Vec<Code> = Code::ALL
            .iter()
            .copied()
            .filter(|c| c.as_str().as_bytes()[4] == b'C')
            .collect();
        assert_eq!(plan.len(), 6);
        for code in plan {
            let n: u32 = code.as_str()[5..].parse().unwrap();
            assert!((101..=106).contains(&n), "{code}");
        }
        assert_eq!(Code::CostBoundOverflow.severity(), Severity::Error);
        assert_eq!(Code::ShadowedRepresentative.severity(), Severity::Warning);
    }

    #[test]
    fn race_codes_use_the_r_prefix_and_200_range() {
        let race: Vec<Code> = Code::ALL
            .iter()
            .copied()
            .filter(|c| c.as_str().as_bytes()[4] == b'R')
            .collect();
        assert_eq!(race.len(), 3);
        for code in race {
            let n: u32 = code.as_str()[5..].parse().unwrap();
            assert!((201..=203).contains(&n), "{code}");
            assert_eq!(code.severity(), Severity::Warning, "{code}");
        }
    }

    #[test]
    fn cert_codes_use_the_a_prefix_and_300_range() {
        let cert: Vec<Code> = Code::ALL
            .iter()
            .copied()
            .filter(|c| c.as_str().as_bytes()[4] == b'A')
            .collect();
        assert_eq!(cert.len(), 5);
        for code in cert {
            let n: u32 = code.as_str()[5..].parse().unwrap();
            assert!((301..=305).contains(&n), "{code}");
        }
        // Budget rejection is the one hard error in the family — the
        // admission decision, not a quality note.
        assert_eq!(Code::CertBudgetExceeded.severity(), Severity::Error);
        assert_eq!(Code::CertNeverFires.severity(), Severity::Warning);
        assert_eq!(Code::CertVacuous.severity(), Severity::Warning);
    }

    #[test]
    fn slo_codes_use_the_o_prefix_and_400_range() {
        let slo: Vec<Code> = Code::ALL
            .iter()
            .copied()
            .filter(|c| c.as_str().as_bytes()[4] == b'O')
            .collect();
        assert_eq!(slo.len(), 4);
        for code in slo {
            let n: u32 = code.as_str()[5..].parse().unwrap();
            assert!((401..=404).contains(&n), "{code}");
            // An SLO burn is a service-level defect: `opd top` must
            // exit non-zero, so every member of the family is an
            // error.
            assert_eq!(code.severity(), Severity::Error, "{code}");
        }
    }

    #[test]
    fn render_is_rustc_shaped() {
        let d = Diagnostic::new(Code::DeadCode, "fn main (f0)", "loop L2 never iterates");
        let text = d.render();
        assert!(text.starts_with("warning[OPD-W006]: "));
        assert!(text.contains("\n  --> fn main (f0)"));
        assert_eq!(d.to_string(), text);
    }
}
