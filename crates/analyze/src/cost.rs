//! The static sweep cost model.
//!
//! PR 2's program analysis bounds what a workload can *emit* (branch
//! events, alphabet size); this module bounds what a detector config
//! must *do* with those events, without running anything:
//!
//! * **Exact scan counts** — [`predicted_scans`] replicates the sweep
//!   engine's grouping rule (one scan per distinct shape among
//!   window-sharing configs, one per private config) and therefore
//!   matches [`opd_core::SweepEngine::total_scans`] exactly; the
//!   `opd plan` CLI asserts this agreement on every run.
//! * **Comparison-op upper bounds** — per config × workload, from the
//!   static element and alphabet bounds, with checked arithmetic
//!   (overflow surfaces as `OPD-C105`, never as a wrapped number).
//! * **Schedulable unit costs** — [`unit_cost`] prices one
//!   [`SweepUnit`] for LPT distribution, replacing the old heuristic
//!   `SweepUnit::cost()` (a fixed 8:1 scan-to-member weighting that
//!   ignored trace length, skip factor, and model entirely).
//!
//! The per-step op counts mirror the implementation: the unweighted
//! model and the tracked weighted fast path read O(1) incremental
//! counters per judged step, the untracked weighted slow path walks
//! the CW's distinct sites, and Pearson walks the distinct sites of
//! both windows. Window maintenance costs a constant per element
//! (deque push, eviction, two site-table updates, distinct-set
//! upkeep) — once per scan for a shared group, once per member
//! otherwise.

use std::collections::HashSet;

use opd_core::{DetectorConfig, ModelPolicy, SweepUnit, TwPolicy};

/// Relative weight of one element's window maintenance (deque push,
/// eviction, site-table updates, distinct-set upkeep).
const WINDOW_OPS_PER_ELEMENT: u64 = 8;

/// Comparison ops one judged step costs for `config` against a trace
/// whose alphabet (distinct-site count) is at most `alphabet`.
fn per_step_ops(config: &DetectorConfig, alphabet: u64) -> u64 {
    let cw = config.current_window() as u64;
    let tw = config.trailing_window() as u64;
    // A window over a trace with `alphabet` distinct sites holds at
    // most min(capacity, alphabet) distinct entries; degenerate zero
    // bounds still cost the fixed judge overhead.
    let distinct = |cap: u64| cap.min(alphabet).max(1);
    match config.model() {
        // Incremental counters: O(1) per similarity read.
        ModelPolicy::UnweightedSet => 2,
        ModelPolicy::WeightedSet => match config.tw_policy() {
            // Warm constant-TW windows use the tracked integer
            // min-sum fast path.
            TwPolicy::Constant => 2,
            // Adaptive windows judge over capacity: the slow path
            // walks the CW's distinct sites.
            TwPolicy::Adaptive => distinct(cw).saturating_add(2),
        },
        // Pearson walks the distinct sites of both windows.
        ModelPolicy::Pearson => distinct(cw).saturating_add(distinct(tw)).saturating_add(2),
    }
}

/// Static cost of running one config over one workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfigCost {
    steps: u64,
    window_ops: u64,
    compare_ops: Option<u64>,
}

impl ConfigCost {
    /// Costs `config` against a trace of at most `elements` profile
    /// elements drawn from at most `alphabet` distinct sites (both
    /// typically static bounds from [`crate::Analysis`]).
    #[must_use]
    pub fn of(config: &DetectorConfig, elements: u64, alphabet: u64) -> Self {
        let steps = config.shape().steps(elements);
        ConfigCost {
            steps,
            window_ops: elements.saturating_mul(WINDOW_OPS_PER_ELEMENT),
            compare_ops: steps.checked_mul(per_step_ops(config, alphabet)),
        }
    }

    /// Detector steps taken: `ceil(elements / skip)`.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Window-maintenance ops (a constant per consumed element).
    #[must_use]
    pub fn window_ops(&self) -> u64 {
        self.window_ops
    }

    /// Upper bound on comparison ops across all judged steps; `None`
    /// when the checked product overflowed `u64` (lint `OPD-C105`).
    #[must_use]
    pub fn compare_ops(&self) -> Option<u64> {
        self.compare_ops
    }

    /// Total cost (window + comparison ops); `None` on overflow.
    #[must_use]
    pub fn total(&self) -> Option<u64> {
        self.compare_ops
            .and_then(|c| c.checked_add(self.window_ops))
    }
}

/// Trace scans a sweep over `configs` performs, predicted statically:
/// one per distinct shape among window-sharing configs plus one per
/// private config. Matches `SweepEngine::total_scans()` exactly — the
/// grouping rule here is the engine's planning rule.
#[must_use]
pub fn predicted_scans(configs: &[DetectorConfig]) -> usize {
    let mut shapes = HashSet::new();
    let mut scans = 0usize;
    for config in configs {
        if config.shares_windows() {
            if shapes.insert(config.shape()) {
                scans += 1;
            }
        } else {
            scans += 1;
        }
    }
    scans
}

/// Statically derived cost of one planned sweep unit over a trace of
/// at most `elements` elements and `alphabet` distinct sites, for LPT
/// work distribution. Shared groups pay window maintenance once plus
/// each member's per-step residue; private units pay both per member.
/// Saturates (never wraps) so overflowed bounds rank heaviest.
#[must_use]
pub fn unit_cost(
    configs: &[DetectorConfig],
    unit: &SweepUnit,
    elements: u64,
    alphabet: u64,
) -> u64 {
    let mut cost = if unit.is_shared() {
        elements.saturating_mul(WINDOW_OPS_PER_ELEMENT)
    } else {
        0
    };
    for &i in unit.config_indices() {
        let member = ConfigCost::of(&configs[i], elements, alphabet);
        if !unit.is_shared() {
            cost = cost.saturating_add(member.window_ops());
        }
        cost = cost.saturating_add(member.compare_ops().unwrap_or(u64::MAX));
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use opd_core::{AnalyzerPolicy, SweepEngine};

    fn grid() -> Vec<DetectorConfig> {
        let mut configs = Vec::new();
        for cw in [16usize, 32] {
            for model in [ModelPolicy::UnweightedSet, ModelPolicy::WeightedSet] {
                configs.push(
                    DetectorConfig::builder()
                        .current_window(cw)
                        .model(model)
                        .build()
                        .unwrap(),
                );
            }
        }
        configs.push(
            DetectorConfig::builder()
                .current_window(16)
                .tw_policy(TwPolicy::Adaptive)
                .build()
                .unwrap(),
        );
        configs.push(
            DetectorConfig::builder()
                .current_window(4)
                .skip_factor(9)
                .build()
                .unwrap(),
        );
        configs
    }

    #[test]
    fn predicted_scans_match_the_engine_exactly() {
        let configs = grid();
        let engine = SweepEngine::new(&configs);
        assert_eq!(predicted_scans(&configs), engine.total_scans());
        assert_eq!(predicted_scans(&configs), 4); // 2 shapes + 2 private
        assert_eq!(predicted_scans(&[]), 0);
    }

    #[test]
    fn steps_and_ops_reflect_skip_and_model() {
        let unweighted = DetectorConfig::builder()
            .current_window(10)
            .skip_factor(3)
            .build()
            .unwrap();
        let c = ConfigCost::of(&unweighted, 100, 1_000);
        assert_eq!(c.steps(), 34); // ceil(100 / 3)
        assert_eq!(c.compare_ops(), Some(68));
        let pearson = DetectorConfig::builder()
            .current_window(10)
            .trailing_window(20)
            .model(ModelPolicy::Pearson)
            .build()
            .unwrap();
        // Alphabet of 5 caps both windows' distinct walks.
        assert_eq!(ConfigCost::of(&pearson, 100, 5).compare_ops(), Some(1_200));
        assert!(
            ConfigCost::of(&pearson, 100, 5).total().unwrap()
                > ConfigCost::of(&unweighted, 100, 5).total().unwrap()
        );
    }

    #[test]
    fn overflow_is_reported_not_wrapped() {
        let adaptive_weighted = DetectorConfig::builder()
            .current_window(usize::MAX)
            .model(ModelPolicy::WeightedSet)
            .tw_policy(TwPolicy::Adaptive)
            .build()
            .unwrap();
        let c = ConfigCost::of(&adaptive_weighted, u64::MAX, u64::MAX);
        assert_eq!(c.compare_ops(), None);
        assert_eq!(c.total(), None);
        // Saturated, maximal cost for scheduling purposes.
        let configs = [adaptive_weighted];
        let engine = SweepEngine::new(&configs);
        assert_eq!(
            unit_cost(&configs, &engine.units()[0], u64::MAX, u64::MAX),
            u64::MAX
        );
    }

    #[test]
    fn shared_units_amortize_window_maintenance() {
        let mk = |analyzer| {
            DetectorConfig::builder()
                .current_window(100)
                .analyzer(AnalyzerPolicy::Threshold(analyzer))
                .build()
                .unwrap()
        };
        let shared_pair = [mk(0.5), mk(0.7)];
        let engine = SweepEngine::new(&shared_pair);
        assert_eq!(engine.units().len(), 1);
        let shared = unit_cost(&shared_pair, &engine.units()[0], 10_000, 50);
        let solo = [mk(0.5)];
        let solo_engine = SweepEngine::new(&solo);
        let one = unit_cost(&solo, &solo_engine.units()[0], 10_000, 50);
        // Two members cost far less than twice one member: the scan
        // is shared, only the judge residue doubles.
        assert!(shared < one * 2);
        assert!(shared > one);
    }
}
