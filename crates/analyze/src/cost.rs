//! The static sweep cost model.
//!
//! PR 2's program analysis bounds what a workload can *emit* (branch
//! events, alphabet size); this module bounds what a detector config
//! must *do* with those events, without running anything:
//!
//! * **Exact scan counts** — [`predicted_scans`] replicates the sweep
//!   engine's grouping rule (one scan per distinct shape per TW
//!   policy among window-sharing configs — Constant groups share
//!   directly, Adaptive groups through the forking scan — and one per
//!   private config) and therefore
//!   matches [`opd_core::SweepEngine::total_scans`] exactly; the
//!   `opd plan` CLI asserts this agreement on every run.
//! * **Comparison-op upper bounds** — per config × workload, from the
//!   static element and alphabet bounds, with checked arithmetic
//!   (overflow surfaces as `OPD-C105`, never as a wrapped number).
//! * **Schedulable unit costs** — [`unit_cost`] prices one
//!   [`SweepUnit`] for LPT distribution, replacing the old heuristic
//!   `SweepUnit::cost()` (a fixed 8:1 scan-to-member weighting that
//!   ignored trace length, skip factor, and model entirely).
//!
//! The per-step op counts mirror the *default* (SWAR) window kernel
//! of `opd-core` — the one every sweep runs on unless explicitly
//! switched to the scalar reference. Below the rank-mode skip cutoff
//! the kernel judges densely: the unweighted model popcounts the
//! membership bit lanes (one `u64` per 64 alphabet sites), the
//! weighted model min-sums the per-site count columns, and Pearson
//! pays both a count pass and a lane pass. From
//! [`opd_core::RANK_MODE_MIN_SKIP`] upward the kernel may answer each
//! judge from the per-trace rank index instead — three rank lookups
//! and a reduction per site, for every model — which dominates the
//! dense costs, so that regime is bounded by the rank cost whether or
//! not the trace is rank-eligible. Window maintenance costs a
//! constant per element (count/bit updates over the dirty spans) —
//! once per scan for a shared group, once per member otherwise.

use std::collections::HashSet;

use opd_core::{DetectorConfig, ModelPolicy, SweepUnit, RANK_MODE_MIN_SKIP};

/// Relative weight of one element's window maintenance (count and
/// membership-bit updates over the dirty spans, warm tracking).
const WINDOW_OPS_PER_ELEMENT: u64 = 8;

/// Comparison ops one judged step costs for `config` against a trace
/// whose alphabet (distinct-site count) is at most `alphabet`,
/// modeling the default (SWAR) kernel; degenerate zero bounds still
/// cost the fixed judge overhead.
pub(crate) fn per_step_ops(config: &DetectorConfig, alphabet: u64) -> u64 {
    let d = alphabet.max(1);
    if config.skip_factor() >= RANK_MODE_MIN_SKIP {
        // Rank mode (or the dense judging it dominates): three rank
        // lookups and a reduction per site, every model.
        return d.saturating_mul(4).saturating_add(2);
    }
    let lanes = d.div_ceil(64);
    match config.model() {
        // One popcount pass over the membership bit lanes.
        ModelPolicy::UnweightedSet => lanes.saturating_add(2),
        // One min-sum pass over the per-site count columns.
        ModelPolicy::WeightedSet => d.saturating_add(2),
        // A count pass for the moment sums plus a lane pass for the
        // union and shared supports.
        ModelPolicy::Pearson => d.saturating_add(lanes).saturating_add(2),
    }
}

/// Static cost of running one config over one workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfigCost {
    steps: u64,
    window_ops: u64,
    compare_ops: Option<u64>,
}

impl ConfigCost {
    /// Costs `config` against a trace of at most `elements` profile
    /// elements drawn from at most `alphabet` distinct sites (both
    /// typically static bounds from [`crate::Analysis`]).
    #[must_use]
    pub fn of(config: &DetectorConfig, elements: u64, alphabet: u64) -> Self {
        let steps = config.shape().steps(elements);
        ConfigCost {
            steps,
            window_ops: elements.saturating_mul(WINDOW_OPS_PER_ELEMENT),
            compare_ops: steps.checked_mul(per_step_ops(config, alphabet)),
        }
    }

    /// Detector steps taken: `ceil(elements / skip)`.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Window-maintenance ops (a constant per consumed element).
    #[must_use]
    pub fn window_ops(&self) -> u64 {
        self.window_ops
    }

    /// Upper bound on comparison ops across all judged steps; `None`
    /// when the checked product overflowed `u64` (lint `OPD-C105`).
    #[must_use]
    pub fn compare_ops(&self) -> Option<u64> {
        self.compare_ops
    }

    /// Total cost (window + comparison ops); `None` on overflow.
    #[must_use]
    pub fn total(&self) -> Option<u64> {
        self.compare_ops
            .and_then(|c| c.checked_add(self.window_ops))
    }
}

/// Trace scans a sweep over `configs` performs, predicted statically:
/// one per distinct shape among Constant-TW window-sharing configs,
/// one per distinct shape among adaptively sharing configs (the
/// forking scan), plus one per private config. Matches
/// `SweepEngine::total_scans()` exactly — the grouping rule here is
/// the engine's planning rule, including its separate shape maps per
/// TW policy.
#[must_use]
pub fn predicted_scans(configs: &[DetectorConfig]) -> usize {
    let mut constant_shapes = HashSet::new();
    let mut adaptive_shapes = HashSet::new();
    let mut scans = 0usize;
    for config in configs {
        if config.shares_windows() {
            if constant_shapes.insert(config.shape()) {
                scans += 1;
            }
        } else if config.shares_windows_adaptively() {
            if adaptive_shapes.insert(config.shape()) {
                scans += 1;
            }
        } else {
            scans += 1;
        }
    }
    scans
}

/// Statically derived cost of one planned sweep unit over a trace of
/// at most `elements` elements and `alphabet` distinct sites, for LPT
/// work distribution. Shared groups pay window maintenance once plus
/// each member's per-step residue; private units pay both per member.
/// Saturates (never wraps) so overflowed bounds rank heaviest.
#[must_use]
pub fn unit_cost(
    configs: &[DetectorConfig],
    unit: &SweepUnit,
    elements: u64,
    alphabet: u64,
) -> u64 {
    let (window, compare) = unit_cost_parts(configs, unit, elements, alphabet);
    window.saturating_add(compare)
}

/// [`unit_cost`] split into its `(window maintenance, comparison)`
/// parts. The comparison part is a worst case assuming *every* step is
/// judged; a scheduler with a measured judged-step density for the
/// trace at hand can scale it before summing (the experiment runner's
/// calibrated LPT pricing does exactly that).
#[must_use]
pub fn unit_cost_parts(
    configs: &[DetectorConfig],
    unit: &SweepUnit,
    elements: u64,
    alphabet: u64,
) -> (u64, u64) {
    let mut window = if unit.is_shared() {
        elements.saturating_mul(WINDOW_OPS_PER_ELEMENT)
    } else {
        0
    };
    let mut compare = 0u64;
    for &i in unit.config_indices() {
        let member = ConfigCost::of(&configs[i], elements, alphabet);
        if !unit.is_shared() {
            window = window.saturating_add(member.window_ops());
        }
        compare = compare.saturating_add(member.compare_ops().unwrap_or(u64::MAX));
    }
    (window, compare)
}

#[cfg(test)]
mod tests {
    use super::*;
    use opd_core::{AnalyzerPolicy, SweepEngine, TwPolicy};

    fn grid() -> Vec<DetectorConfig> {
        let mut configs = Vec::new();
        for cw in [16usize, 32] {
            for model in [ModelPolicy::UnweightedSet, ModelPolicy::WeightedSet] {
                configs.push(
                    DetectorConfig::builder()
                        .current_window(cw)
                        .model(model)
                        .build()
                        .unwrap(),
                );
            }
        }
        configs.push(
            DetectorConfig::builder()
                .current_window(16)
                .tw_policy(TwPolicy::Adaptive)
                .build()
                .unwrap(),
        );
        configs.push(
            DetectorConfig::builder()
                .current_window(4)
                .skip_factor(9)
                .build()
                .unwrap(),
        );
        configs
    }

    #[test]
    fn predicted_scans_match_the_engine_exactly() {
        let configs = grid();
        let engine = SweepEngine::new(&configs);
        assert_eq!(predicted_scans(&configs), engine.total_scans());
        // 2 constant shapes + 1 adaptive shape + 1 private (skip>cw).
        assert_eq!(predicted_scans(&configs), 4);
        assert_eq!(predicted_scans(&[]), 0);
    }

    #[test]
    fn steps_and_ops_reflect_skip_and_model() {
        let unweighted = DetectorConfig::builder()
            .current_window(10)
            .skip_factor(3)
            .build()
            .unwrap();
        let c = ConfigCost::of(&unweighted, 100, 1_000);
        assert_eq!(c.steps(), 34); // ceil(100 / 3)
                                   // 16 lanes cover a 1000-site alphabet: 34 * (16 + 2).
        assert_eq!(c.compare_ops(), Some(612));
        let pearson = DetectorConfig::builder()
            .current_window(10)
            .trailing_window(20)
            .model(ModelPolicy::Pearson)
            .build()
            .unwrap();
        // 5 count columns + 1 lane + 2 per step, 100 steps.
        assert_eq!(ConfigCost::of(&pearson, 100, 5).compare_ops(), Some(800));
        assert!(
            ConfigCost::of(&pearson, 100, 5).total().unwrap()
                > ConfigCost::of(&unweighted, 100, 5).total().unwrap()
        );
    }

    #[test]
    fn rank_mode_skips_are_priced_per_site() {
        // At skip >= RANK_MODE_MIN_SKIP the kernel may judge through
        // the rank index: 4 ops per site + 2, regardless of model.
        for model in ModelPolicy::ALL_EXTENDED {
            let config = DetectorConfig::builder()
                .current_window(100)
                .skip_factor(50)
                .model(model)
                .build()
                .unwrap();
            let c = ConfigCost::of(&config, 100, 5);
            assert_eq!(c.steps(), 2);
            assert_eq!(c.compare_ops(), Some(2 * (4 * 5 + 2)), "{model}");
        }
    }

    #[test]
    fn overflow_is_reported_not_wrapped() {
        let adaptive_weighted = DetectorConfig::builder()
            .current_window(usize::MAX)
            .model(ModelPolicy::WeightedSet)
            .tw_policy(TwPolicy::Adaptive)
            .build()
            .unwrap();
        let c = ConfigCost::of(&adaptive_weighted, u64::MAX, u64::MAX);
        assert_eq!(c.compare_ops(), None);
        assert_eq!(c.total(), None);
        // Saturated, maximal cost for scheduling purposes.
        let configs = [adaptive_weighted];
        let engine = SweepEngine::new(&configs);
        assert_eq!(
            unit_cost(&configs, &engine.units()[0], u64::MAX, u64::MAX),
            u64::MAX
        );
    }

    #[test]
    fn shared_units_amortize_window_maintenance() {
        let mk = |analyzer| {
            DetectorConfig::builder()
                .current_window(100)
                .analyzer(AnalyzerPolicy::Threshold(analyzer))
                .build()
                .unwrap()
        };
        let shared_pair = [mk(0.5), mk(0.7)];
        let engine = SweepEngine::new(&shared_pair);
        assert_eq!(engine.units().len(), 1);
        let shared = unit_cost(&shared_pair, &engine.units()[0], 10_000, 50);
        let solo = [mk(0.5)];
        let solo_engine = SweepEngine::new(&solo);
        let one = unit_cost(&solo, &solo_engine.units()[0], 10_000, 50);
        // Two members cost far less than twice one member: the scan
        // is shared, only the judge residue doubles.
        assert!(shared < one * 2);
        assert!(shared > one);
    }
}
