//! The static call graph: who calls whom, with the guard/decrease
//! attributes of each call site, plus Tarjan SCC analysis to find
//! recursion cycles and verify they terminate.

use opd_microvm::{ArgExpr, FuncId, Program, Stmt};

/// One static call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallEdge {
    caller: FuncId,
    callee: FuncId,
    arg: ArgExpr,
    guarded: bool,
}

impl CallEdge {
    /// The calling function.
    #[must_use]
    pub fn caller(self) -> FuncId {
        self.caller
    }

    /// The called function.
    #[must_use]
    pub fn callee(self) -> FuncId {
        self.callee
    }

    /// The argument expression passed to the callee.
    #[must_use]
    pub fn arg(self) -> ArgExpr {
        self.arg
    }

    /// `true` if the call sits under an `arg > 0` guard.
    #[must_use]
    pub fn is_guarded(self) -> bool {
        self.guarded
    }

    /// `true` if the argument strictly decreases whenever the guard
    /// holds (`arg-1` and `arg/2` both do for `arg > 0`). Constants and
    /// fresh draws do not decrease, whatever their value.
    #[must_use]
    pub fn is_decreasing(self) -> bool {
        matches!(self.arg, ArgExpr::Dec | ArgExpr::Half)
    }
}

/// A recursion cycle (one strongly connected component with at least
/// one internal call edge) and whether it provably terminates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecursionCycle {
    members: Vec<FuncId>,
    terminating: bool,
}

impl RecursionCycle {
    /// The functions in the cycle, in program order.
    #[must_use]
    pub fn members(&self) -> &[FuncId] {
        &self.members
    }

    /// `true` if every call edge inside the cycle is argument-guarded
    /// *and* strictly decreasing, which bounds the recursion depth by
    /// the largest argument.
    #[must_use]
    pub fn is_terminating(&self) -> bool {
        self.terminating
    }
}

/// The static call graph of a [`Program`].
///
/// # Examples
///
/// ```
/// use opd_analyze::CallGraph;
/// use opd_microvm::workloads::Workload;
///
/// let program = Workload::Srccomp.program(1);
/// let graph = CallGraph::build(&program);
/// // srccomp's expression parser is self-recursive, with a guard.
/// assert!(graph.cycles().iter().all(|c| c.is_terminating()));
/// ```
#[derive(Debug, Clone)]
pub struct CallGraph {
    edges: Vec<CallEdge>,
    cycles: Vec<RecursionCycle>,
}

impl CallGraph {
    /// Builds the call graph and runs the SCC/termination analysis.
    #[must_use]
    pub fn build(program: &Program) -> Self {
        let mut edges = Vec::new();
        program.walk(|ctx, stmt| {
            if let Stmt::Call { callee, arg } = stmt {
                edges.push(CallEdge {
                    caller: ctx.func(),
                    callee: *callee,
                    arg: *arg,
                    guarded: ctx.is_arg_guarded(),
                });
            }
        });
        let n = program.functions().len();
        let scc_of = tarjan(n, &edges);
        let scc_count = scc_of.iter().copied().max().map_or(0, |m| m + 1);

        let mut cycles = Vec::new();
        for scc in 0..scc_count {
            let internal: Vec<&CallEdge> = edges
                .iter()
                .filter(|e| {
                    scc_of[e.caller.index() as usize] == scc
                        && scc_of[e.callee.index() as usize] == scc
                })
                .collect();
            if internal.is_empty() {
                continue; // a trivial SCC: no self or mutual recursion
            }
            let terminating = internal.iter().all(|e| e.is_guarded() && e.is_decreasing());
            // Every member of an SCC with internal edges appears as a
            // caller of at least one internal edge.
            let mut members: Vec<FuncId> = internal.iter().map(|e| e.caller).collect();
            members.sort_unstable();
            members.dedup();
            cycles.push(RecursionCycle {
                members,
                terminating,
            });
        }
        CallGraph { edges, cycles }
    }

    /// Every static call site.
    #[must_use]
    pub fn edges(&self) -> &[CallEdge] {
        &self.edges
    }

    /// The recursion cycles (non-trivial SCCs) of the graph.
    #[must_use]
    pub fn cycles(&self) -> &[RecursionCycle] {
        &self.cycles
    }

    /// `true` if the function participates in any recursion cycle.
    #[must_use]
    pub fn is_recursive(&self, func: FuncId) -> bool {
        self.cycles.iter().any(|c| c.members.contains(&func))
    }
}

/// Iterative Tarjan SCC over function indices; returns the SCC index of
/// each function. Iterative rather than recursive so a pathological
/// call chain cannot overflow the analyzer's stack.
fn tarjan(n: usize, edges: &[CallEdge]) -> Vec<usize> {
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in edges {
        succ[e.caller.index() as usize].push(e.callee.index() as usize);
    }

    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut scc_of = vec![UNSET; n];
    let mut next_index = 0usize;
    let mut scc_count = 0usize;

    // (node, next successor position) frames of the simulated recursion.
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != UNSET {
            continue;
        }
        frames.push((root, 0));
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(&mut (v, ref mut i)) = frames.last_mut() {
            if let Some(&w) = succ[v].get(*i) {
                *i += 1;
                if index[w] == UNSET {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    loop {
                        let w = stack.pop().expect("tarjan stack holds the component");
                        on_stack[w] = false;
                        scc_of[w] = scc_count;
                        if w == v {
                            break;
                        }
                    }
                    scc_count += 1;
                }
            }
        }
    }
    scc_of
}

#[cfg(test)]
mod tests {
    use super::*;
    use opd_microvm::{ProgramBuilder, TakenDist};

    #[test]
    fn straight_line_program_has_no_cycles() {
        let mut b = ProgramBuilder::new();
        let leaf = b.declare("leaf");
        let main = b.declare("main");
        b.define(leaf, |f| {
            f.branch(TakenDist::Always);
        });
        b.define(main, |f| {
            f.call(leaf, ArgExpr::Const(0));
        });
        let g = CallGraph::build(&b.entry(main).build().unwrap());
        assert_eq!(g.edges().len(), 1);
        assert!(g.cycles().is_empty());
        assert!(!g.is_recursive(main));
    }

    #[test]
    fn guarded_decreasing_self_recursion_terminates() {
        let mut b = ProgramBuilder::new();
        let rec = b.declare("rec");
        b.define(rec, |f| {
            f.branch(TakenDist::Always);
            f.if_arg_positive(|g| {
                g.call(rec, ArgExpr::Dec);
            });
        });
        let g = CallGraph::build(&b.build().unwrap());
        assert_eq!(g.cycles().len(), 1);
        assert!(g.cycles()[0].is_terminating());
        assert!(g.is_recursive(rec));
    }

    #[test]
    fn unguarded_recursion_flagged() {
        let mut b = ProgramBuilder::new();
        let rec = b.declare("rec");
        b.define(rec, |f| {
            f.call(rec, ArgExpr::Dec); // decreasing but unguarded
        });
        let g = CallGraph::build(&b.build().unwrap());
        assert!(!g.cycles()[0].is_terminating());
    }

    #[test]
    fn guarded_but_nondecreasing_recursion_flagged() {
        let mut b = ProgramBuilder::new();
        let rec = b.declare("rec");
        b.define(rec, |f| {
            f.if_arg_positive(|g| {
                g.call(rec, ArgExpr::Const(5)); // guard never falsifies
            });
        });
        let g = CallGraph::build(&b.build().unwrap());
        assert!(!g.cycles()[0].is_terminating());
    }

    #[test]
    fn mutual_recursion_is_one_cycle() {
        let mut b = ProgramBuilder::new();
        let even = b.declare("even");
        let odd = b.declare("odd");
        b.define(even, |f| {
            f.if_arg_positive(|g| {
                g.call(odd, ArgExpr::Dec);
            });
        });
        b.define(odd, |f| {
            f.if_arg_positive(|g| {
                g.call(even, ArgExpr::Dec);
            });
        });
        let g = CallGraph::build(&b.entry(even).build().unwrap());
        assert_eq!(g.cycles().len(), 1);
        assert_eq!(g.cycles()[0].members().len(), 2);
        assert!(g.cycles()[0].is_terminating());
    }

    #[test]
    fn workload_cycles_all_terminate() {
        for w in opd_microvm::workloads::Workload::ALL {
            let g = CallGraph::build(&w.program(1));
            assert!(g.cycles().iter().all(RecursionCycle::is_terminating), "{w}");
        }
    }
}
