//! The static call-loop nesting tree: which repetition construct can
//! appear directly inside which, derived purely from the IR.
//!
//! Every dynamic call-loop tree the oracle builds
//! ([`CallLoopForest`]) is an unrolling of this static relation, so
//! the static edge set is a supergraph of every dynamic edge set —
//! the soundness property the differential tests check.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use opd_baseline::{CallLoopForest, Construct, RepNode};
use opd_microvm::{Program, Stmt};

/// The static nesting relation over [`Construct`]s.
///
/// # Examples
///
/// ```
/// use opd_analyze::NestingTree;
/// use opd_baseline::CallLoopForest;
/// use opd_microvm::workloads::Workload;
///
/// let w = Workload::Tracer;
/// let tree = NestingTree::build(&w.program(1));
/// let forest = CallLoopForest::build(&w.trace(1))?;
/// assert!(tree.is_supergraph_of(&forest));
/// # Ok::<(), opd_baseline::ForestError>(())
/// ```
#[derive(Debug, Clone)]
pub struct NestingTree {
    root: Construct,
    edges: BTreeSet<(Construct, Construct)>,
    depth: BTreeMap<Construct, u32>,
}

impl NestingTree {
    /// Builds the nesting relation from the IR.
    ///
    /// The parent of a statement's construct is the innermost loop
    /// enclosing it in the same function, or the function's own method
    /// node at the top level; calls link the caller's context to the
    /// callee's method node. The relation covers *all* functions —
    /// including unreachable ones — so it over-approximates every run.
    #[must_use]
    pub fn build(program: &Program) -> Self {
        let mut edges = BTreeSet::new();
        program.walk(|ctx, stmt| {
            let parent = ctx
                .innermost_loop()
                .map_or(Construct::Method(ctx.func().method_id()), Construct::Loop);
            match stmt {
                Stmt::Loop { id, .. } => {
                    edges.insert((parent, Construct::Loop(*id)));
                }
                Stmt::Call { callee, .. } => {
                    edges.insert((parent, Construct::Method(callee.method_id())));
                }
                Stmt::Branch(_) | Stmt::If { .. } | Stmt::IfArgPositive { .. } => {}
            }
        });
        let root = Construct::Method(program.entry().method_id());

        // Per-nest depth: fewest constructs on a path from the root
        // (root itself at depth 1), by BFS over the static edges.
        let mut children: BTreeMap<Construct, Vec<Construct>> = BTreeMap::new();
        for &(from, to) in &edges {
            children.entry(from).or_default().push(to);
        }
        let mut depth = BTreeMap::new();
        depth.insert(root, 1);
        let mut queue = VecDeque::from([root]);
        while let Some(c) = queue.pop_front() {
            let d = depth[&c];
            for &to in children.get(&c).into_iter().flatten() {
                if let std::collections::btree_map::Entry::Vacant(e) = depth.entry(to) {
                    e.insert(d + 1);
                    queue.push_back(to);
                }
            }
        }

        NestingTree { root, edges, depth }
    }

    /// The root construct: the entry function's method node.
    #[must_use]
    pub fn root(&self) -> Construct {
        self.root
    }

    /// All `(parent, child)` nesting edges.
    #[must_use]
    pub fn edges(&self) -> &BTreeSet<(Construct, Construct)> {
        &self.edges
    }

    /// `true` if `child` can appear directly inside `parent`.
    #[must_use]
    pub fn contains_edge(&self, parent: Construct, child: Construct) -> bool {
        self.edges.contains(&(parent, child))
    }

    /// The minimum nesting depth at which the construct can appear (the
    /// root is at depth 1), or `None` if no chain of nesting edges
    /// connects it to the root.
    #[must_use]
    pub fn depth_of(&self, construct: Construct) -> Option<u32> {
        self.depth.get(&construct).copied()
    }

    /// `true` if every dynamic nesting edge of `forest` (and every
    /// root) exists in this static relation — the soundness property:
    /// the static tree is a supergraph of any tree a run can produce.
    #[must_use]
    pub fn is_supergraph_of(&self, forest: &CallLoopForest) -> bool {
        fn covers(tree: &NestingTree, node: &RepNode) -> bool {
            node.children().iter().all(|child| {
                tree.contains_edge(node.construct(), child.construct()) && covers(tree, child)
            })
        }
        forest
            .roots()
            .iter()
            .all(|r| r.construct() == self.root && covers(self, r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opd_microvm::{ArgExpr, ProgramBuilder, TakenDist, Trip};
    use opd_trace::{LoopId, MethodId};

    #[test]
    fn edges_follow_local_structure_and_calls() {
        let mut b = ProgramBuilder::new();
        let helper = b.declare("helper");
        let main = b.declare("main");
        b.define(helper, |f| {
            f.repeat(Trip::Fixed(2), |l| {
                l.branch(TakenDist::Always);
            });
        });
        b.define(main, |f| {
            f.repeat(Trip::Fixed(3), |outer| {
                outer.repeat(Trip::Fixed(4), |inner| {
                    inner.branch(TakenDist::Always);
                });
                outer.call(helper, ArgExpr::Const(0));
            });
        });
        let p = b.entry(main).build().unwrap();
        let t = NestingTree::build(&p);
        let l = |i| Construct::Loop(LoopId::new(i));
        let m = |i| Construct::Method(MethodId::new(i));
        assert_eq!(t.root(), m(1));
        assert!(t.contains_edge(m(1), l(1))); // main > outer
        assert!(t.contains_edge(l(1), l(2))); // outer > inner
        assert!(t.contains_edge(l(1), m(0))); // outer > call helper
        assert!(t.contains_edge(m(0), l(0))); // helper > its loop
        assert!(!t.contains_edge(m(1), l(2)));
        assert_eq!(t.edges().len(), 4);
    }

    #[test]
    fn depths_count_constructs_from_root() {
        let mut b = ProgramBuilder::new();
        let main = b.declare("main");
        b.define(main, |f| {
            f.repeat(Trip::Fixed(2), |outer| {
                outer.repeat(Trip::Fixed(2), |inner| {
                    inner.branch(TakenDist::Always);
                });
            });
        });
        let p = b.build().unwrap();
        let t = NestingTree::build(&p);
        assert_eq!(t.depth_of(t.root()), Some(1));
        assert_eq!(t.depth_of(Construct::Loop(LoopId::new(0))), Some(2));
        assert_eq!(t.depth_of(Construct::Loop(LoopId::new(1))), Some(3));
        assert_eq!(t.depth_of(Construct::Method(MethodId::new(9))), None);
    }

    #[test]
    fn recursive_programs_have_self_edges() {
        let mut b = ProgramBuilder::new();
        let rec = b.declare("rec");
        b.define(rec, |f| {
            f.branch(TakenDist::Always);
            f.if_arg_positive(|g| {
                g.call(rec, ArgExpr::Dec);
            });
        });
        let t = NestingTree::build(&b.build().unwrap());
        let m = Construct::Method(MethodId::new(0));
        assert!(t.contains_edge(m, m));
        assert_eq!(t.depth_of(m), Some(1));
    }

    #[test]
    fn supergraph_holds_for_every_workload() {
        for w in opd_microvm::workloads::Workload::ALL {
            let tree = NestingTree::build(&w.program(1));
            let forest = CallLoopForest::build(&w.trace(1)).unwrap();
            assert!(tree.is_supergraph_of(&forest), "{w}");
        }
    }

    #[test]
    fn supergraph_rejects_foreign_forests() {
        let tree = NestingTree::build(&opd_microvm::workloads::Workload::Lexgen.program(1));
        let forest =
            CallLoopForest::build(&opd_microvm::workloads::Workload::Tracer.trace(1)).unwrap();
        assert!(!tree.is_supergraph_of(&forest));
    }
}
