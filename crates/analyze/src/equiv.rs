//! The configuration equivalence prover.
//!
//! Two detector configurations are *equivalent* when they produce
//! bit-identical `DetectedPhase` streams on **every** trace. The
//! prover establishes equivalence by canonicalization: each config is
//! rewritten by semantics-preserving rules into a canonical form, and
//! configs with equal canonical forms are declared equivalent.
//! Because every rule preserves output exactly, equality of canonical
//! forms composes transitively and the resulting partition is a true
//! equivalence relation. The rules (worked proof sketches live in
//! DESIGN.md §13):
//!
//! * **Dead resize** — under a constant trailing window the resize
//!   policy is never consulted (`Windows::anchor_and_resize` is only
//!   reached from the Adaptive phase-start path), so `Move` and
//!   `Slide` coincide; the canonical form uses `Slide`.
//! * **Always-fire analyzer** — a `Threshold(t ≤ 0)` analyzer, or an
//!   `Average { delta: 1.0 }` analyzer whose similarities provably
//!   never exceed `1.0`, judges *Phase* at every warm step. Such a
//!   detector emits exactly one phase, from the first warm step to
//!   trace end, and never flushes — so the model, TW policy, and
//!   resize policy are unobservable and collapse; only the window
//!   shape and the anchor policy survive into the canonical form.
//! * **Threshold snapping** — unweighted similarities are exactly
//!   `fl(k/n)` for integers `0 ≤ k ≤ n ≤ cw` (the distinct-site
//!   counts never exceed the CW capacity when `skip ≤ cw`), and
//!   weighted similarities under a constant TW are exactly
//!   `fl(m/(cw·tw))`. Two thresholds with no achievable value between
//!   them make identical decisions everywhere, so each threshold
//!   snaps to the smallest achievable value at or above it. The
//!   search is exact: fractions are compared against the threshold's
//!   dyadic decomposition in integer arithmetic (no float round-off),
//!   and the float the detector would actually compute is re-derived
//!   with the same `as f64` division the window code performs.

use std::cmp::Ordering;
use std::collections::HashMap;
use std::fmt;

use opd_core::{AnalyzerPolicy, DetectorConfig, ModelPolicy, ResizePolicy, TwPolicy};

/// Largest denominator bound the exact fraction search supports.
/// Beyond this the Farey gaps approach the rounding error of `f64`
/// division and snapping is conservatively disabled.
const MAX_SNAP_DENOM: u64 = 1 << 20;

/// Largest fixed denominator (`cw·tw`) the weighted snap supports.
const MAX_FIXED_DENOM: u64 = 1 << 40;

/// A canonicalization rule of the equivalence prover.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum EquivRule {
    /// Resize policy is dead under a constant trailing window.
    DeadResize,
    /// The analyzer fires at every warm step; model, TW policy, and
    /// resize are unobservable.
    AlwaysFire,
    /// No achievable similarity separates the threshold from its
    /// snapped value.
    ThresholdSnap,
}

impl EquivRule {
    /// Stable short name, used in reports and JSON.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            EquivRule::DeadResize => "dead-resize",
            EquivRule::AlwaysFire => "always-fire",
            EquivRule::ThresholdSnap => "threshold-snap",
        }
    }

    /// One-sentence proof sketch of why the rule is sound.
    #[must_use]
    pub fn explain(self) -> &'static str {
        match self {
            EquivRule::DeadResize => {
                "a constant trailing window never reaches the resize path \
                 (Windows::anchor_and_resize is only called at Adaptive phase starts), \
                 so Slide and Move produce identical windows forever"
            }
            EquivRule::AlwaysFire => {
                "the analyzer judges Phase at every warm step (similarities are \
                 always within its firing range), so the detector emits exactly one \
                 phase from the first warm step to trace end and never flushes; the \
                 model, TW policy, and resize policy are never observable"
            }
            EquivRule::ThresholdSnap => {
                "similarities are quotients of bounded integer counts, so no \
                 achievable value lies between the original threshold and its snapped \
                 value; every judge call decides identically under either"
            }
        }
    }
}

impl fmt::Display for EquivRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// `t` as an exact dyadic rational `m · 2^e` (requires `t > 0`,
/// finite).
fn dyadic(t: f64) -> Option<(u64, i32)> {
    if !t.is_finite() || t <= 0.0 {
        return None;
    }
    let bits = t.to_bits();
    let exp_field = ((bits >> 52) & 0x7ff) as i32;
    let frac = bits & ((1u64 << 52) - 1);
    if exp_field == 0 {
        Some((frac, -1074))
    } else {
        Some((frac | (1 << 52), exp_field - 1075))
    }
}

/// The Farey bracket of `t` at denominator bound `max_denom`:
/// `(prev, next)` with `prev < t ≤ next`, `prev` the largest such
/// fraction and `next` the smallest, both in lowest terms with
/// denominators ≤ `max_denom`. Requires `0 < t ≤ 1`.
///
/// The walk is a run-compressed Stern–Brocot descent; every
/// comparison is exact integer arithmetic against the dyadic form of
/// `t`, so no float round-off can misclassify a fraction.
fn farey_bracket(t: f64, max_denom: u64) -> Option<((u64, u64), (u64, u64))> {
    if max_denom == 0 || max_denom > MAX_SNAP_DENOM {
        return None;
    }
    if !t.is_finite() || t <= 0.0 || t > 1.0 {
        return None;
    }
    let (m, e) = dyadic(t)?;
    let s = u32::try_from(-e).ok()?;
    if s > 100 {
        // t below ~2^-48: the shifted numerator would overflow u128.
        return None;
    }
    // value(k/n) vs t, exactly: k·2^s vs m·n.
    let cmp = |k: u64, n: u64| -> Ordering {
        ((u128::from(k)) << s).cmp(&(u128::from(m) * u128::from(n)))
    };
    let mut lo = (0u64, 1u64);
    let mut hi = (1u64, 1u64);
    // Invariant: lo < t ≤ hi, both in lowest terms, and every
    // fraction strictly between them has denominator > lo.1 + hi.1 - 1.
    loop {
        if lo.1 + hi.1 > max_denom {
            break;
        }
        if cmp(lo.0 + hi.0, lo.1 + hi.1) == Ordering::Less {
            // Mediant still below t: advance lo by the largest run
            // lo + j·hi that stays below t within the denominator cap.
            let j_cap = (max_denom - lo.1) / hi.1;
            let (mut a, mut b) = (1u64, j_cap);
            while a < b {
                let mid = (a + b).div_ceil(2);
                if cmp(lo.0 + mid * hi.0, lo.1 + mid * hi.1) == Ordering::Less {
                    a = mid;
                } else {
                    b = mid - 1;
                }
            }
            lo = (lo.0 + a * hi.0, lo.1 + a * hi.1);
        } else {
            // Mediant at or above t: advance hi symmetrically.
            let j_cap = (max_denom - hi.1) / lo.1;
            let (mut a, mut b) = (1u64, j_cap);
            while a < b {
                let mid = (a + b).div_ceil(2);
                if cmp(hi.0 + mid * lo.0, hi.1 + mid * lo.1) != Ordering::Less {
                    a = mid;
                } else {
                    b = mid - 1;
                }
            }
            hi = (hi.0 + a * lo.0, hi.1 + a * lo.1);
        }
    }
    Some((lo, hi))
}

/// The smallest value `fl(k/n)` with `n ≤ max_denom` that is ≥ `t`,
/// i.e. the lowest similarity an unweighted detector with CW capacity
/// `max_denom` can produce that still clears threshold `t`.
///
/// Returns the exact `f64` the detector's division would yield, so a
/// config whose threshold is replaced by the snapped value makes
/// identical decisions on every achievable similarity. Returns `None`
/// when snapping is unsupported (`t` outside `(0, 1]`, or bounds too
/// large for exact arithmetic) — callers must then leave the
/// threshold untouched.
#[must_use]
pub fn snap_threshold(t: f64, max_denom: u64) -> Option<f64> {
    snap_fraction(t, max_denom).map(|(k, n)| k as f64 / n as f64)
}

/// The fraction `(k, n)` whose `f64` division is [`snap_threshold`]'s
/// result — used by the plan witness probes to engineer traces whose
/// similarity lands exactly on a decision boundary.
pub(crate) fn snap_fraction(t: f64, max_denom: u64) -> Option<(u64, u64)> {
    let (prev, next) = farey_bracket(t, max_denom)?;
    // The largest fraction below t may round *up* to ≥ t under f64
    // division; it is then the smallest achievable value clearing t
    // (Farey gaps at this denominator bound exceed one ulp, so no
    // earlier fraction can also cross).
    if prev.0 as f64 / prev.1 as f64 >= t {
        Some(prev)
    } else {
        Some(next)
    }
}

/// The smallest value `fl(m/denom)` that is ≥ `t`: the weighted-model
/// analogue of [`snap_threshold`] for the fixed denominator
/// `cw·tw` a warm constant-TW weighted window divides by.
#[must_use]
pub fn snap_threshold_fixed(t: f64, denom: u64) -> Option<f64> {
    if denom == 0 || denom > MAX_FIXED_DENOM {
        return None;
    }
    if !t.is_finite() || t <= 0.0 || t > 1.0 {
        return None;
    }
    let (m, e) = dyadic(t)?;
    let s = u32::try_from(-e).ok()?;
    if s > 80 {
        return None;
    }
    // ceil(t·denom) in exact integer arithmetic.
    let prod = u128::from(m) * u128::from(denom);
    let m0 = ((prod + ((1u128 << s) - 1)) >> s) as u64;
    debug_assert!((1..=denom).contains(&m0));
    let prev = (m0 - 1) as f64 / denom as f64;
    if prev >= t {
        Some(prev)
    } else {
        Some(m0 as f64 / denom as f64)
    }
}

/// Whether `config`'s analyzer provably judges *Phase* at every warm
/// step, on every trace.
///
/// `Threshold(t ≤ 0)` always fires because every similarity model
/// returns values ≥ 0. `Average { delta: 1.0 }` always fires when
/// similarities provably never exceed `1.0` — true for the unweighted
/// model (exact quotients `k/n ≤ 1`), Pearson (clamped), and the
/// weighted model under a constant TW (integer fast path `m/(cw·tw)`
/// with `m ≤ cw·tw`). The weighted model under an *adaptive* TW is
/// excluded: its over-capacity slow path sums rounded per-site
/// quotients, which can exceed `1.0` by an ulp and leave the running
/// average above `1.0`.
#[must_use]
pub fn always_fires(config: &DetectorConfig) -> bool {
    match config.analyzer() {
        AnalyzerPolicy::Threshold(t) => t <= 0.0,
        AnalyzerPolicy::Average { delta } => {
            delta >= 1.0
                && (config.model() != ModelPolicy::WeightedSet
                    || config.tw_policy() == TwPolicy::Constant)
        }
    }
}

/// Hashable encoding of a canonical form (`DetectorConfig` itself has
/// float fields and no `Hash`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CanonKey {
    cw: usize,
    tw: usize,
    skip: usize,
    tw_policy: u8,
    anchor: u8,
    resize: u8,
    model: u8,
    analyzer_tag: u8,
    param_bits: u64,
}

impl CanonKey {
    fn of(c: &DetectorConfig) -> Self {
        let (analyzer_tag, param_bits) = match c.analyzer() {
            AnalyzerPolicy::Threshold(t) => (0, t.to_bits()),
            AnalyzerPolicy::Average { delta } => (1, delta.to_bits()),
        };
        CanonKey {
            cw: c.current_window(),
            tw: c.trailing_window(),
            skip: c.skip_factor(),
            tw_policy: matches!(c.tw_policy(), TwPolicy::Adaptive).into(),
            anchor: matches!(c.anchor(), opd_core::AnchorPolicy::LeftmostNonNoisy).into(),
            resize: matches!(c.resize(), ResizePolicy::Move).into(),
            model: match c.model() {
                ModelPolicy::UnweightedSet => 0,
                ModelPolicy::WeightedSet => 1,
                ModelPolicy::Pearson => 2,
            },
            analyzer_tag,
            param_bits,
        }
    }
}

/// Canonicalizes one configuration: returns the canonical form and
/// the rules that fired (empty when the config is already canonical).
#[must_use]
pub fn canonicalize(config: &DetectorConfig) -> (DetectorConfig, Vec<EquivRule>) {
    let mut rules = Vec::new();
    let mut resize = config.resize();
    let mut model = config.model();
    let mut tw_policy = config.tw_policy();
    let mut analyzer = config.analyzer();

    if tw_policy == TwPolicy::Constant && resize != ResizePolicy::Slide {
        resize = ResizePolicy::Slide;
        rules.push(EquivRule::DeadResize);
    }

    if always_fires(config) {
        let already = matches!(analyzer, AnalyzerPolicy::Threshold(t) if t.to_bits() == 0)
            && model == ModelPolicy::UnweightedSet
            && tw_policy == TwPolicy::Constant
            && resize == ResizePolicy::Slide;
        if !already {
            rules.push(EquivRule::AlwaysFire);
        }
        analyzer = AnalyzerPolicy::Threshold(0.0);
        model = ModelPolicy::UnweightedSet;
        tw_policy = TwPolicy::Constant;
        resize = ResizePolicy::Slide;
    } else if let AnalyzerPolicy::Threshold(t) = analyzer {
        // Distinct-site counts stay within the CW capacity only when
        // a phase-end flush fits in the CW; over-capacity transients
        // (skip > cw) void the denominator bound.
        if config.skip_factor() <= config.current_window() {
            let snapped = match (model, tw_policy) {
                (ModelPolicy::UnweightedSet, _) => {
                    snap_threshold(t, config.current_window() as u64)
                }
                (ModelPolicy::WeightedSet, TwPolicy::Constant) => (config.current_window() as u64)
                    .checked_mul(config.trailing_window() as u64)
                    .and_then(|d| snap_threshold_fixed(t, d)),
                _ => None,
            };
            if let Some(snap) = snapped {
                if snap.to_bits() != t.to_bits() {
                    analyzer = AnalyzerPolicy::Threshold(snap);
                    rules.push(EquivRule::ThresholdSnap);
                }
            }
        }
    }

    let canon = DetectorConfig::builder()
        .current_window(config.current_window())
        .trailing_window(config.trailing_window())
        .skip_factor(config.skip_factor())
        .tw_policy(tw_policy)
        .anchor(config.anchor())
        .resize(resize)
        .model(model)
        .analyzer(analyzer)
        .build()
        .expect("canonical form of a valid config is valid");
    (canon, rules)
}

/// One class of provably equivalent grid entries.
#[derive(Debug, Clone)]
pub struct EquivClass {
    representative: usize,
    members: Vec<usize>,
    rules: Vec<EquivRule>,
    canonical: DetectorConfig,
}

impl EquivClass {
    /// Index (into the analyzed grid) of the class representative —
    /// the first member in grid order. Running only the
    /// representative reproduces every member's output exactly.
    #[must_use]
    pub fn representative(&self) -> usize {
        self.representative
    }

    /// All member indices, ascending (the representative included).
    #[must_use]
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Rules that fired across the members' canonicalizations, in
    /// rule order, deduplicated. Empty for a trivial (singleton,
    /// already-canonical) class.
    #[must_use]
    pub fn rules(&self) -> &[EquivRule] {
        &self.rules
    }

    /// The shared canonical form.
    #[must_use]
    pub fn canonical(&self) -> &DetectorConfig {
        &self.canonical
    }

    /// `true` when the class merges at least two grid entries.
    #[must_use]
    pub fn is_nontrivial(&self) -> bool {
        self.members.len() > 1
    }

    /// The witness backing the class: which rules prove each member
    /// equal to the canonical form, with their proof sketches.
    #[must_use]
    pub fn proof(&self) -> String {
        if self.members.len() == 1 && self.rules.is_empty() {
            return "singleton class: no other grid entry shares this canonical form".into();
        }
        let mut out = format!(
            "members {:?} share canonical form `{}` via: ",
            self.members, self.canonical
        );
        if self.rules.is_empty() {
            out.push_str("textual identity (exact duplicates)");
        } else {
            for (i, rule) in self.rules.iter().enumerate() {
                if i > 0 {
                    out.push_str("; ");
                }
                out.push_str(rule.as_str());
                out.push_str(" (");
                out.push_str(rule.explain());
                out.push(')');
            }
        }
        out
    }
}

/// Partitions `configs` into provable-equivalence classes, in
/// first-seen order of their representatives.
#[must_use]
pub fn equivalence_classes(configs: &[DetectorConfig]) -> Vec<EquivClass> {
    let mut class_of_key: HashMap<CanonKey, usize> = HashMap::new();
    let mut classes: Vec<EquivClass> = Vec::new();
    for (i, config) in configs.iter().enumerate() {
        let (canon, rules) = canonicalize(config);
        let key = CanonKey::of(&canon);
        let class_index = *class_of_key.entry(key).or_insert_with(|| {
            classes.push(EquivClass {
                representative: i,
                members: Vec::new(),
                rules: Vec::new(),
                canonical: canon,
            });
            classes.len() - 1
        });
        let class = &mut classes[class_index];
        class.members.push(i);
        for rule in rules {
            if !class.rules.contains(&rule) {
                class.rules.push(rule);
            }
        }
        class.rules.sort_unstable();
    }
    classes
}

#[cfg(test)]
mod tests {
    use super::*;
    use opd_core::AnchorPolicy;

    fn config(
        model: ModelPolicy,
        analyzer: AnalyzerPolicy,
        tw_policy: TwPolicy,
        resize: ResizePolicy,
    ) -> DetectorConfig {
        DetectorConfig::builder()
            .current_window(8)
            .trailing_window(8)
            .model(model)
            .analyzer(analyzer)
            .tw_policy(tw_policy)
            .resize(resize)
            .build()
            .unwrap()
    }

    #[test]
    fn farey_bracket_is_exact() {
        // Smallest fraction ≥ 0.51 with denominator ≤ 8 is 4/7; the
        // largest below is 1/2.
        assert_eq!(farey_bracket(0.51, 8), Some(((1, 2), (4, 7))));
        // 0.5 is itself achievable: bracket pins next to 1/2.
        assert_eq!(farey_bracket(0.5, 8), Some(((3, 7), (1, 2))));
        assert_eq!(farey_bracket(1.0, 5), Some(((4, 5), (1, 1))));
        assert_eq!(farey_bracket(0.0, 8), None);
        assert_eq!(farey_bracket(1.5, 8), None);
    }

    #[test]
    fn snap_threshold_picks_smallest_achievable_value() {
        assert_eq!(snap_threshold(0.5, 8), Some(0.5));
        assert_eq!(snap_threshold(0.51, 8), Some(4.0 / 7.0));
        // No fraction with denominator ≤ 8 lies in [0.88, 0.98): both
        // snap to 1.0 and are therefore equivalent thresholds.
        assert_eq!(snap_threshold(0.88, 8), Some(1.0));
        assert_eq!(snap_threshold(0.98, 8), Some(1.0));
        // Dense denominators leave fine thresholds alone only when a
        // fraction sits between them.
        assert_ne!(snap_threshold(0.55, 500), snap_threshold(0.56, 500));
    }

    #[test]
    fn snap_threshold_exhaustive_small_denominators() {
        // Brute-force cross-check: for every float t drawn from a
        // fine lattice, the snap must equal the minimum fl(k/n) ≥ t.
        let denom = 12u64;
        let mut achievable: Vec<f64> = Vec::new();
        for n in 1..=denom {
            for k in 0..=n {
                achievable.push(k as f64 / n as f64);
            }
        }
        achievable.sort_by(f64::total_cmp);
        for i in 0..=1000 {
            let t = f64::from(i) / 1000.0;
            if t <= 0.0 {
                continue;
            }
            let expected = achievable.iter().copied().find(|&v| v >= t);
            assert_eq!(snap_threshold(t, denom), expected, "t={t}");
        }
    }

    #[test]
    fn snap_threshold_fixed_matches_scan() {
        let denom = 64u64 * 48;
        for &t in &[0.1, 0.35, 0.5, 0.665, 0.9, 1.0] {
            let expected = (0..=denom)
                .map(|m| m as f64 / denom as f64)
                .find(|&v| v >= t);
            assert_eq!(snap_threshold_fixed(t, denom), expected, "t={t}");
        }
        assert_eq!(snap_threshold_fixed(0.5, 0), None);
        assert_eq!(snap_threshold_fixed(0.5, MAX_FIXED_DENOM + 1), None);
    }

    #[test]
    fn always_fire_classification() {
        let af =
            |model, analyzer, twp| always_fires(&config(model, analyzer, twp, ResizePolicy::Slide));
        let thr0 = AnalyzerPolicy::Threshold(0.0);
        let avg1 = AnalyzerPolicy::Average { delta: 1.0 };
        assert!(af(ModelPolicy::UnweightedSet, thr0, TwPolicy::Constant));
        assert!(af(ModelPolicy::WeightedSet, thr0, TwPolicy::Adaptive));
        assert!(af(ModelPolicy::UnweightedSet, avg1, TwPolicy::Adaptive));
        assert!(af(ModelPolicy::WeightedSet, avg1, TwPolicy::Constant));
        // Weighted + adaptive sums rounded quotients: avg may exceed
        // 1.0 by an ulp, so the rule conservatively refuses.
        assert!(!af(ModelPolicy::WeightedSet, avg1, TwPolicy::Adaptive));
        assert!(!af(
            ModelPolicy::UnweightedSet,
            AnalyzerPolicy::Threshold(0.1),
            TwPolicy::Constant
        ));
        assert!(!af(
            ModelPolicy::UnweightedSet,
            AnalyzerPolicy::Average { delta: 0.4 },
            TwPolicy::Constant
        ));
    }

    #[test]
    fn dead_resize_and_always_fire_collapse_classes() {
        let thr = AnalyzerPolicy::Threshold(0.5);
        let grid = vec![
            config(
                ModelPolicy::UnweightedSet,
                thr,
                TwPolicy::Constant,
                ResizePolicy::Slide,
            ),
            config(
                ModelPolicy::UnweightedSet,
                thr,
                TwPolicy::Constant,
                ResizePolicy::Move,
            ),
            // Always-fire: model and TW policy collapse too.
            config(
                ModelPolicy::Pearson,
                AnalyzerPolicy::Threshold(0.0),
                TwPolicy::Adaptive,
                ResizePolicy::Move,
            ),
            config(
                ModelPolicy::WeightedSet,
                AnalyzerPolicy::Average { delta: 1.0 },
                TwPolicy::Constant,
                ResizePolicy::Slide,
            ),
            // Distinct: adaptive keeps its resize axis alive.
            config(
                ModelPolicy::UnweightedSet,
                thr,
                TwPolicy::Adaptive,
                ResizePolicy::Slide,
            ),
            config(
                ModelPolicy::UnweightedSet,
                thr,
                TwPolicy::Adaptive,
                ResizePolicy::Move,
            ),
        ];
        let classes = equivalence_classes(&grid);
        assert_eq!(classes.len(), 4);
        assert_eq!(classes[0].members(), &[0, 1]);
        assert_eq!(classes[0].rules(), &[EquivRule::DeadResize]);
        assert_eq!(classes[1].members(), &[2, 3]);
        assert!(classes[1].rules().contains(&EquivRule::AlwaysFire));
        assert_eq!(classes[2].members(), &[4]);
        assert_eq!(classes[3].members(), &[5]);
        assert!(classes[0].proof().contains("dead-resize"));
        assert!(classes[2].proof().contains("singleton"));
    }

    #[test]
    fn threshold_snapping_merges_unachievably_close_thresholds() {
        let mk = |t| {
            config(
                ModelPolicy::UnweightedSet,
                AnalyzerPolicy::Threshold(t),
                TwPolicy::Constant,
                ResizePolicy::Slide,
            )
        };
        // cw = 8: no fraction with denominator ≤ 8 lies in [0.88, 0.98).
        let classes = equivalence_classes(&[mk(0.88), mk(0.98), mk(0.5), mk(0.52)]);
        assert_eq!(classes.len(), 3);
        assert_eq!(classes[0].members(), &[0, 1]);
        assert_eq!(classes[0].rules(), &[EquivRule::ThresholdSnap]);
        // 0.5 is achievable (4/8): 0.5 and 0.52 straddle it vs 4/7.
        assert_eq!(classes[1].members(), &[2]);
        assert_eq!(classes[2].members(), &[3]);
    }

    #[test]
    fn exact_duplicates_merge_with_no_rules() {
        let c = config(
            ModelPolicy::Pearson,
            AnalyzerPolicy::Average { delta: 0.2 },
            TwPolicy::Adaptive,
            ResizePolicy::Move,
        );
        let classes = equivalence_classes(&[c, c]);
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0].members(), &[0, 1]);
        assert!(classes[0].rules().is_empty());
        assert!(classes[0].proof().contains("exact duplicates"));
    }

    #[test]
    fn anchor_survives_always_fire_collapse() {
        let mk = |anchor| {
            DetectorConfig::builder()
                .current_window(8)
                .anchor(anchor)
                .analyzer(AnalyzerPolicy::Threshold(0.0))
                .build()
                .unwrap()
        };
        let classes = equivalence_classes(&[
            mk(AnchorPolicy::RightmostNoisy),
            mk(AnchorPolicy::LeftmostNonNoisy),
        ]);
        assert_eq!(classes.len(), 2, "anchor affects anchored_start");
    }

    // ------------------------------------------------------------------
    // Overflow hardening: the u128 cross-multiplications at the extreme
    // ends of the supported ranges. `farey_bracket` compares
    // `k·2^s` against `m·n` with `k, n ≤ MAX_SNAP_DENOM = 2^20`,
    // `m < 2^53`, `s ≤ 100`; `snap_threshold_fixed` forms
    // `m·denom + 2^s − 1` with `denom ≤ MAX_FIXED_DENOM = 2^40`,
    // `s ≤ 80`. Worst cases (2^120 and ~2^93) must stay below 2^128,
    // and the s-guards must reject exactly the inputs beyond that.
    // ------------------------------------------------------------------

    /// Exact rational comparison of `a/b` vs `c/d` without overflow
    /// concerns — the reference the snap arithmetic must agree with.
    fn frac_cmp(a: u64, b: u64, c: u64, d: u64) -> Ordering {
        (u128::from(a) * u128::from(d)).cmp(&(u128::from(c) * u128::from(b)))
    }

    #[test]
    fn farey_bracket_survives_the_extreme_denominator() {
        // The smallest and largest achievable fractions at the maximum
        // supported denominator: if any intermediate `k << s`
        // overflowed u128, these brackets would come back wrong.
        let d = MAX_SNAP_DENOM;
        let tiny = 1.0 / d as f64;
        let ((pl, pd), (nl, nd)) = farey_bracket(tiny, d).expect("supported");
        assert_eq!((pl, pd), (0, 1));
        assert_eq!((nl, nd), (1, d));

        let near_one = (d - 1) as f64 / d as f64;
        let ((pl, pd), (nl, nd)) = farey_bracket(near_one, d).expect("supported");
        assert_eq!((nl, nd), (d - 1, d), "achievable values bracket themselves");
        assert_eq!(frac_cmp(pl, pd, nl, nd), Ordering::Less);

        // One past the cap is conservatively unsupported, never wrong.
        assert_eq!(farey_bracket(0.5, d + 1), None);
    }

    #[test]
    fn farey_bracket_invariants_hold_exhaustively_at_max_denominator() {
        // Bounded-exhaustive: for every t = fl(k/n) with n ≤ 17, the
        // bracket at denominator MAX_SNAP_DENOM must satisfy
        // prev < t ≤ next (compared EXACTLY, via t's own dyadic form —
        // fl(k/n) is rarely k/n itself) with nothing of denominator
        // ≤ MAX_SNAP_DENOM strictly between. Any u128 slip in the
        // `k·2^s` vs `m·n` comparison would misplace at least one.
        let d = MAX_SNAP_DENOM;
        for n in 1..=17u64 {
            for k in 1..=n {
                let t = k as f64 / n as f64;
                let (m, e) = dyadic(t).expect("positive finite");
                let s = u32::try_from(-e).expect("t ≤ 1");
                // frac vs t, exactly: a·2^s vs m·b.
                let vs_t =
                    |a: u64, b: u64| (u128::from(a) << s).cmp(&(u128::from(m) * u128::from(b)));
                let ((pl, pd), (nl, nd)) = farey_bracket(t, d).expect("supported");
                assert!(nd <= d && pd <= d);
                assert_eq!(vs_t(pl, pd), Ordering::Less, "k={k} n={n}: prev < t");
                assert_ne!(vs_t(nl, nd), Ordering::Less, "k={k} n={n}: next ≥ t");
                assert_eq!(frac_cmp(pl, pd, nl, nd), Ordering::Less, "k={k} n={n}");
                // Farey neighbours: nothing with denominator ≤ d fits
                // strictly between; mediant denominators certify it.
                assert!(pd + nd > d, "k={k} n={n}: a fraction fits between");
            }
        }
    }

    #[test]
    fn farey_s_guard_accepts_2_pow_minus_48_and_rejects_beyond() {
        // s = 1075 − exp_field ≤ 100 ⟺ t ≥ 2^−48. At the boundary the
        // shifted numerator is 2^20 · 2^100 = 2^120 < 2^128: supported.
        let boundary = (2.0f64).powi(-48);
        let ((_, _), (nl, nd)) = farey_bracket(boundary, MAX_SNAP_DENOM).expect("s = 100 fits");
        // 2^−48 < 1/2^20, so the smallest achievable fraction is next.
        assert_eq!((nl, nd), (1, MAX_SNAP_DENOM));

        // One exponent further the guard must refuse (s = 101 would
        // need k·2^101 at k up to 2^20: past 2^121, headroom gone at
        // the next cap doubling — the guard is the documented line).
        assert_eq!(farey_bracket((2.0f64).powi(-49), MAX_SNAP_DENOM), None);
        // Subnormals sit far below the guard.
        assert_eq!(farey_bracket(f64::MIN_POSITIVE / 2.0, MAX_SNAP_DENOM), None);
    }

    #[test]
    fn snap_fixed_survives_the_extreme_denominator() {
        let d = MAX_FIXED_DENOM;
        // t = 1.0 at the maximum denominator: m·d ≈ 2^92·2 is the
        // largest product the routine ever forms.
        assert_eq!(snap_threshold_fixed(1.0, d), Some(1.0));
        // The smallest supported threshold at the maximum denominator
        // snaps to an exact 1/2^k fraction (d is a power of two), so
        // the equality is exact, not approximate.
        let boundary = (2.0f64).powi(-28);
        assert_eq!(snap_threshold_fixed(boundary, d), Some(boundary));
        // Guards: s = 81 and denominators past the cap refuse.
        assert_eq!(snap_threshold_fixed((2.0f64).powi(-29), d), None);
        assert_eq!(snap_threshold_fixed(0.5, d + 1), None);
        assert_eq!(snap_threshold_fixed(0.5, 0), None);
    }

    #[test]
    fn snap_fixed_matches_exact_rational_ceil_exhaustively() {
        // Bounded-exhaustive at a denominator big enough that
        // `m·denom` needs ~93 bits: every t on a lattice straddling
        // the achievable grid must snap to ceil(t·denom)/denom
        // computed by exact rational arithmetic.
        let d = MAX_FIXED_DENOM;
        for i in 1..=512u64 {
            let t = i as f64 / 512.0;
            let snapped = snap_threshold_fixed(t, d).expect("supported");
            // 512 divides d, so every lattice point is achievable and
            // must snap to itself.
            assert_eq!(snapped, t, "t={t}");
        }
        for i in 0..256u64 {
            // Off-lattice: an odd numerator over 2^41 falls exactly
            // between adjacent multiples of 1/2^40; the snap must
            // round up by half a grid cell. The 2^13 offset keeps the
            // dyadic shift at the s = 80 guard boundary — these are
            // the largest shifted products the routine ever forms.
            let num = (1u64 << 13) + 2 * i + 1;
            let t = num as f64 / (2.0f64).powi(41);
            let snapped = snap_threshold_fixed(t, d).expect("supported at s = 80");
            let expected = ((num >> 1) + 1) as f64 / d as f64;
            assert_eq!(snapped, expected, "i={i}");
        }
    }
}
