//! Static analysis of MicroVM programs.
//!
//! The interpreter and the oracle discover a program's structure
//! *dynamically* — by running it and building the call-loop tree. This
//! crate derives the same structure *statically*, straight from the IR:
//!
//! * [`CallGraph`] — who calls whom, SCC (Tarjan) recursion cycles, and
//!   a termination proof for each cycle (every internal call must be
//!   `arg > 0`-guarded **and** argument-decreasing)
//! * [`FlowInfo`] — reachability, per-function maximum arguments, the
//!   executable branch-site alphabet, and dead code
//! * [`NestingTree`] — the static call-loop nesting relation, a
//!   supergraph of every dynamic tree the oracle can build
//! * [`StaticBounds`] — exact worst-case branch counts, event counts,
//!   call depth, and phase-nesting depth, with checked arithmetic
//! * [`Analysis`] — all of the above plus a lint pass with stable
//!   diagnostic codes (`OPD-W001` … `OPD-W007`)
//!
//! The bounds are what the runtime pre-sizes from (`InternedTrace` and
//! the sweep engine allocate to the alphabet bound up front), and the
//! supergraph property is what the differential soundness tests check.
//!
//! A second analysis family targets the *sweep plan* rather than the
//! program: [`PlanAnalysis`] proves detector-config equivalences
//! ([`EquivClass`], [`canonicalize`]), prices each config with a
//! static cost model ([`ConfigCost`], [`unit_cost`]), predicts the
//! sweep engine's exact scan count ([`predicted_scans`]), and lints
//! the grid with codes `OPD-C101` … `OPD-C106`.
//!
//! A third family certifies *resources*: [`AbsInt`] runs the IR
//! through a stride-interval abstract domain (congruence-refined
//! intervals propagated through the call graph), and
//! [`ResourceCertificate`] composes the per-site visit intervals with
//! one detector config's window semantics into sound two-sided bounds
//! on phase transitions, window occupancy, interned sites, kernel
//! memory, and compare-op cost — with [`ResourceCertificate::admits`]
//! as the admission-control entry point and lint codes `OPD-A301` …
//! `OPD-A305`.
//!
//! # Examples
//!
//! ```
//! use opd_analyze::{Analysis, Severity};
//! use opd_microvm::workloads::Workload;
//!
//! let analysis = Analysis::of(&Workload::Querydb.program(1));
//! assert!(analysis.is_clean()); // built-in workloads lint clean
//! assert!(analysis.bounds().branches() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod absint;
mod bounds;
mod callgraph;
mod cert;
mod cost;
mod diag;
mod equiv;
mod flow;
mod lint;
mod nesting;
mod plan;
mod sched;

pub use absint::{AbsInt, SiteVisits, StrideInterval};
pub use bounds::StaticBounds;
pub use callgraph::{CallEdge, CallGraph, RecursionCycle};
pub use cert::{CertInterval, ResourceCertificate};
pub use cost::{predicted_scans, unit_cost, unit_cost_parts, ConfigCost};
pub use diag::{Code, Diagnostic, Severity};
pub use equiv::{
    always_fires, canonicalize, equivalence_classes, snap_threshold, snap_threshold_fixed,
    EquivClass, EquivRule,
};
pub use flow::{DeadKind, DeadSite, FlowInfo};
pub use nesting::NestingTree;
pub use plan::{AxisPairOutcome, AxisWitnesses, PlanAnalysis, PlanWorkload, SweepAxis};
pub use sched::{race_lints, SubsystemSyncProfile, SyncSite};

use opd_microvm::Program;

/// The complete static analysis of one program: structure, bounds, and
/// lint findings.
#[derive(Debug, Clone)]
pub struct Analysis {
    call_graph: CallGraph,
    flow: FlowInfo,
    nesting: NestingTree,
    bounds: StaticBounds,
    diagnostics: Vec<Diagnostic>,
}

impl Analysis {
    /// Analyzes a program end to end.
    #[must_use]
    pub fn of(program: &Program) -> Self {
        let call_graph = CallGraph::build(program);
        let flow = FlowInfo::compute(program);
        let nesting = NestingTree::build(program);
        let bounds = StaticBounds::compute(program);
        let diagnostics = lint::collect(program, &call_graph, &flow, &bounds);
        Analysis {
            call_graph,
            flow,
            nesting,
            bounds,
            diagnostics,
        }
    }

    /// The static call graph and its recursion cycles.
    #[must_use]
    pub fn call_graph(&self) -> &CallGraph {
        &self.call_graph
    }

    /// Reachability, maximum arguments, alphabet, and dead code.
    #[must_use]
    pub fn flow(&self) -> &FlowInfo {
        &self.flow
    }

    /// The static call-loop nesting relation.
    #[must_use]
    pub fn nesting(&self) -> &NestingTree {
        &self.nesting
    }

    /// The worst-case execution bounds.
    #[must_use]
    pub fn bounds(&self) -> StaticBounds {
        self.bounds
    }

    /// Every lint finding, in a stable order.
    #[must_use]
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Number of error-severity findings.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    #[must_use]
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// `true` if the lint produced no findings at all (the
    /// deny-warnings bar the built-in workloads are held to).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Renders the analysis (bounds, structure summary, diagnostics)
    /// as one JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"alphabet_bound\":{},\"executable_sites\":{},",
                "\"branches_bound\":{},\"events_bound\":{},",
                "\"call_depth_bound\":{},\"nest_depth_bound\":{},",
                "\"overflowed\":{},\"nesting_edges\":{},",
                "\"recursion_cycles\":{},\"diagnostics\":{}}}"
            ),
            self.flow.alphabet_bound(),
            self.flow.executable_sites(),
            self.bounds.branches(),
            self.bounds.events(),
            self.bounds.call_depth(),
            self.bounds.nest_depth(),
            self.bounds.overflowed(),
            self.nesting.edges().len(),
            self.call_graph.cycles().len(),
            lint::diagnostics_json(&self.diagnostics),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opd_microvm::workloads::Workload;
    use opd_microvm::{ArgExpr, ProgramBuilder, TakenDist, Trip};

    #[test]
    fn workloads_are_clean() {
        for w in Workload::ALL {
            let a = Analysis::of(&w.program(1));
            assert!(
                a.is_clean(),
                "{w}: {:?}",
                a.diagnostics()
                    .iter()
                    .map(Diagnostic::render)
                    .collect::<Vec<_>>()
            );
            assert_eq!(a.error_count(), 0);
            assert_eq!(a.warning_count(), 0);
        }
    }

    #[test]
    fn a_thoroughly_broken_program_trips_many_codes() {
        let mut b = ProgramBuilder::new();
        let orphan = b.declare("orphan");
        let rec = b.declare("rec");
        let main = b.declare("main");
        b.define(orphan, |f| {
            f.branch(TakenDist::Always);
        });
        b.define(rec, |f| {
            f.call(rec, ArgExpr::Const(3)); // unguarded recursion
        });
        b.define(main, |f| {
            f.branch(TakenDist::Bernoulli(1.0)); // degenerate
            f.repeat(Trip::Fixed(0), |l| {
                l.branch(TakenDist::Always); // dead
            });
            f.call(rec, ArgExpr::Const(1));
        });
        let a = Analysis::of(&b.entry(main).build().unwrap());
        let codes: Vec<Code> = a.diagnostics().iter().map(Diagnostic::code).collect();
        assert!(codes.contains(&Code::UnguardedRecursion));
        assert!(codes.contains(&Code::UnreachableFunction));
        assert!(codes.contains(&Code::DegenerateDistribution));
        assert!(codes.contains(&Code::DeadCode));
        assert!(codes.contains(&Code::BoundOverflow));
        assert!(a.error_count() >= 2);
        assert!(a.warning_count() >= 3);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let a = Analysis::of(&Workload::Blockcomp.program(1));
        let json = a.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"alphabet_bound\":"));
        assert!(json.contains("\"diagnostics\":[]"));
    }
}
