//! Property tests for the resource certificates: for arbitrary
//! generated programs × arbitrary detector configs × arbitrary fuel,
//! every obs-free dynamic counter (elements, steps, interned sites,
//! detected phases, peak window occupancy, kernel memory) lands
//! inside the interval its [`ResourceCertificate`] certifies, and the
//! certified compare-op bound never exceeds the flat cost model.
//!
//! On failure the message carries the full MicroVM listing and the
//! config, so every counterexample is replayable as
//! `opd trace <listing> --config ...`.

use proptest::prelude::*;

use opd_analyze::{AbsInt, FlowInfo, ResourceCertificate};
use opd_core::{
    AnalyzerPolicy, DetectorConfig, InternedTrace, ModelPolicy, PhaseDetector, TwPolicy,
};
use opd_microvm::{ArgExpr, Interpreter, ProgramBuilder, TakenDist, Trip};
use opd_trace::{ExecutionTrace, ProfileElement};

/// A recipe for one statement (the `analysis_props` generator, kept
/// in lockstep so the two suites stress the same program space).
#[derive(Debug, Clone)]
enum StmtSpec {
    Branch(u8),
    Loop(u8, Vec<StmtSpec>),
    VarLoop(u8, Vec<StmtSpec>),
    Cond(Vec<StmtSpec>, Vec<StmtSpec>),
    CallHelper(u8),
    Recurse,
}

fn arb_stmt(depth: u32) -> impl Strategy<Value = StmtSpec> {
    let leaf = prop_oneof![
        (0u8..=4).prop_map(StmtSpec::Branch),
        (0u8..=5).prop_map(StmtSpec::CallHelper),
        Just(StmtSpec::Recurse),
    ];
    leaf.prop_recursive(depth, 20, 4, |inner| {
        prop_oneof![
            ((1u8..5), prop::collection::vec(inner.clone(), 1..4))
                .prop_map(|(n, body)| StmtSpec::Loop(n, body)),
            ((1u8..4), prop::collection::vec(inner.clone(), 1..3))
                .prop_map(|(n, body)| StmtSpec::VarLoop(n, body)),
            (
                prop::collection::vec(inner.clone(), 0..3),
                prop::collection::vec(inner, 0..3)
            )
                .prop_map(|(t, e)| StmtSpec::Cond(t, e)),
        ]
    })
}

fn dist_of(tag: u8) -> TakenDist {
    match tag {
        0 => TakenDist::Always,
        1 => TakenDist::Never,
        2 => TakenDist::Bernoulli(0.5),
        3 => TakenDist::Alternating,
        _ => TakenDist::Periodic(3),
    }
}

fn emit(
    specs: &[StmtSpec],
    b: &mut opd_microvm::BlockBuilder<'_>,
    helper: opd_microvm::FuncId,
    me: opd_microvm::FuncId,
) {
    for spec in specs {
        match spec {
            StmtSpec::Branch(tag) => {
                b.branch(dist_of(*tag));
            }
            StmtSpec::Loop(n, body) => {
                b.repeat(Trip::Fixed(u32::from(*n)), |l| emit(body, l, helper, me));
            }
            StmtSpec::VarLoop(n, body) => {
                let hi = u32::from(*n);
                b.repeat(Trip::Uniform(1, hi.max(1)), |l| emit(body, l, helper, me));
            }
            StmtSpec::Cond(t, e) => {
                b.cond(
                    TakenDist::Bernoulli(0.5),
                    |tb| emit(t, tb, helper, me),
                    |eb| emit(e, eb, helper, me),
                );
            }
            StmtSpec::CallHelper(arg) => {
                b.call(helper, ArgExpr::Const(u32::from(*arg)));
            }
            StmtSpec::Recurse => {
                b.if_arg_positive(|g| {
                    g.call(me, ArgExpr::Dec);
                });
            }
        }
    }
}

fn build_program(specs: &[StmtSpec], entry_arg: u32) -> Option<opd_microvm::Program> {
    let mut b = ProgramBuilder::new();
    let helper = b.declare("helper");
    let main = b.declare("main");
    b.define(helper, |f| {
        f.branch(TakenDist::Bernoulli(0.6));
        f.repeat(Trip::Arg, |l| {
            l.branch(TakenDist::Alternating);
        });
    });
    b.define(main, |f| {
        f.branch(TakenDist::Always);
        emit(specs, f, helper, main);
    });
    b.entry(main).entry_arg(entry_arg);
    b.build().ok()
}

/// A valid-by-construction detector config: every tag combination
/// builds (the shimmed proptest has no `prop_filter`).
fn arb_config() -> impl Strategy<Value = DetectorConfig> {
    (0u8..5, 0u8..4, 0u8..4, 0u8..2, 0u8..3, 0u8..4).prop_map(
        |(cw, tw, skip, policy, model, analyzer)| {
            DetectorConfig::builder()
                .current_window([2usize, 4, 8, 37, 100][cw as usize])
                .trailing_window([2usize, 5, 16, 64][tw as usize])
                .skip_factor([1usize, 2, 5, 40][skip as usize])
                .tw_policy(if policy == 0 {
                    TwPolicy::Constant
                } else {
                    TwPolicy::Adaptive
                })
                .model(match model {
                    0 => ModelPolicy::UnweightedSet,
                    1 => ModelPolicy::WeightedSet,
                    _ => ModelPolicy::Pearson,
                })
                .analyzer(match analyzer {
                    0 => AnalyzerPolicy::Threshold(0.0),
                    1 => AnalyzerPolicy::Threshold(0.5),
                    2 => AnalyzerPolicy::Average { delta: 0.1 },
                    _ => AnalyzerPolicy::Average { delta: 1.0 },
                })
                .build()
                .expect("all generated combinations are valid")
        },
    )
}

/// The peak scalar CW + TW occupancy over a skip-aligned run.
fn measured_peak_occupancy(config: &DetectorConfig, elements: &[ProfileElement]) -> u64 {
    let mut detector = PhaseDetector::new(*config);
    let mut peak = 0u64;
    for chunk in elements.chunks(config.skip_factor().max(1)) {
        detector.process(chunk);
        let w = detector.windows();
        peak = peak.max((w.cw_len() + w.tw_len()) as u64);
    }
    peak
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dynamic_counters_stay_inside_their_certificates(
        specs in prop::collection::vec(arb_stmt(3), 1..6),
        entry_arg in 0u32..6,
        config in arb_config(),
        seed in any::<u64>(),
        fuel_tag in 0u8..3,
    ) {
        let Some(program) = build_program(&specs, entry_arg) else {
            return Ok(());
        };
        let fuel = [150u64, 5_000, 200_000][fuel_tag as usize];
        let absint = AbsInt::of(&program);
        let flow = FlowInfo::compute(&program);
        let cert = ResourceCertificate::from_parts(&absint, &flow, &config, fuel);
        // The counterexample, replayable by hand: full IR + config.
        let ctx = || format!("config: {config:?}\nfuel: {fuel}\nprogram:\n{}", program.dump());

        let mut trace = ExecutionTrace::new();
        Interpreter::new(&program, seed)
            .with_fuel(fuel)
            .run(&mut trace)
            .expect("generated programs terminate within limits");
        let elements: Vec<ProfileElement> = trace.branches().iter().copied().collect();
        let interned = InternedTrace::from_elements(elements.iter().copied());

        prop_assert!(
            cert.elements().contains(elements.len() as u64),
            "elements {} not in [{},{}]\n{}",
            elements.len(), cert.elements().lo(), cert.elements().hi(), ctx()
        );
        prop_assert!(
            cert.sites().contains(u64::from(interned.distinct_count())),
            "sites {} not in [{},{}]\n{}",
            interned.distinct_count(), cert.sites().lo(), cert.sites().hi(), ctx()
        );

        let steps = (elements.len() as u64).div_ceil(config.skip_factor().max(1) as u64);
        prop_assert!(
            cert.steps().contains(steps),
            "steps {steps} not in [{},{}]\n{}",
            cert.steps().lo(), cert.steps().hi(), ctx()
        );

        let mut detector = PhaseDetector::new(config);
        let phases = detector.run_interned_phases_only(&interned).len() as u64;
        prop_assert!(
            cert.phases().contains(phases),
            "phases {phases} not in [{},{}]\n{}",
            cert.phases().lo(), cert.phases().hi(), ctx()
        );
        prop_assert!(
            cert.memory_bytes().contains(detector.kernel_footprint_bytes()),
            "memory {} not in [{},{}]\n{}",
            detector.kernel_footprint_bytes(),
            cert.memory_bytes().lo(), cert.memory_bytes().hi(), ctx()
        );

        let peak = measured_peak_occupancy(&config, &elements);
        prop_assert!(
            cert.occupancy().contains(peak),
            "occupancy {peak} not in [{},{}]\n{}",
            cert.occupancy().lo(), cert.occupancy().hi(), ctx()
        );

        // The certificate may never claim more compare ops than the
        // flat cost model admits (vacuous certs carry no claim).
        if let Some(bound) = cert.cost_compare_bound() {
            if !cert.vacuous() {
                prop_assert!(
                    cert.compare_ops().hi() <= bound,
                    "certified hi {} exceeds cost bound {bound}\n{}",
                    cert.compare_ops().hi(), ctx()
                );
            }
        }

        // Admission is monotone in the budget.
        prop_assert!(cert.admits(u64::MAX), "{}", ctx());
        prop_assert!(
            !cert.admits(cert.memory_bytes().hi().saturating_sub(1))
                || cert.memory_bytes().hi() == 0,
            "{}",
            ctx()
        );
    }
}
