//! Property tests: for arbitrary generated programs, everything the
//! interpreter and the oracle observe dynamically stays within the
//! analyzer's static bounds.

use proptest::prelude::*;

use opd_analyze::Analysis;
use opd_baseline::CallLoopForest;
use opd_core::InternedTrace;
use opd_microvm::{ArgExpr, Interpreter, ProgramBuilder, TakenDist, Trip};
use opd_trace::ExecutionTrace;

/// A recipe for one statement, interpreted into builder calls with
/// bounded nesting (mirrors the generator in `opd-microvm`'s property
/// tests, with variable trips and draw arguments added).
#[derive(Debug, Clone)]
enum StmtSpec {
    Branch(u8),
    Loop(u8, Vec<StmtSpec>),
    VarLoop(u8, Vec<StmtSpec>),
    Cond(Vec<StmtSpec>, Vec<StmtSpec>),
    CallHelper(u8),
    Recurse,
}

fn arb_stmt(depth: u32) -> impl Strategy<Value = StmtSpec> {
    let leaf = prop_oneof![
        (0u8..=4).prop_map(StmtSpec::Branch),
        (0u8..=5).prop_map(StmtSpec::CallHelper),
        Just(StmtSpec::Recurse),
    ];
    leaf.prop_recursive(depth, 20, 4, |inner| {
        prop_oneof![
            ((1u8..5), prop::collection::vec(inner.clone(), 1..4))
                .prop_map(|(n, body)| StmtSpec::Loop(n, body)),
            ((1u8..4), prop::collection::vec(inner.clone(), 1..3))
                .prop_map(|(n, body)| StmtSpec::VarLoop(n, body)),
            (
                prop::collection::vec(inner.clone(), 0..3),
                prop::collection::vec(inner, 0..3)
            )
                .prop_map(|(t, e)| StmtSpec::Cond(t, e)),
        ]
    })
}

fn dist_of(tag: u8) -> TakenDist {
    match tag {
        0 => TakenDist::Always,
        1 => TakenDist::Never,
        2 => TakenDist::Bernoulli(0.5),
        3 => TakenDist::Alternating,
        _ => TakenDist::Periodic(3),
    }
}

fn emit(
    specs: &[StmtSpec],
    b: &mut opd_microvm::BlockBuilder<'_>,
    helper: opd_microvm::FuncId,
    me: opd_microvm::FuncId,
) {
    for spec in specs {
        match spec {
            StmtSpec::Branch(tag) => {
                b.branch(dist_of(*tag));
            }
            StmtSpec::Loop(n, body) => {
                b.repeat(Trip::Fixed(u32::from(*n)), |l| emit(body, l, helper, me));
            }
            StmtSpec::VarLoop(n, body) => {
                let hi = u32::from(*n);
                b.repeat(Trip::Uniform(1, hi.max(1)), |l| emit(body, l, helper, me));
            }
            StmtSpec::Cond(t, e) => {
                b.cond(
                    TakenDist::Bernoulli(0.5),
                    |tb| emit(t, tb, helper, me),
                    |eb| emit(e, eb, helper, me),
                );
            }
            StmtSpec::CallHelper(arg) => {
                b.call(helper, ArgExpr::Const(u32::from(*arg)));
            }
            StmtSpec::Recurse => {
                b.if_arg_positive(|g| {
                    g.call(me, ArgExpr::Dec);
                });
            }
        }
    }
}

fn build_program(specs: &[StmtSpec], entry_arg: u32) -> Option<opd_microvm::Program> {
    let mut b = ProgramBuilder::new();
    let helper = b.declare("helper");
    let main = b.declare("main");
    b.define(helper, |f| {
        f.branch(TakenDist::Bernoulli(0.6));
        f.repeat(Trip::Arg, |l| {
            l.branch(TakenDist::Alternating);
        });
    });
    b.define(main, |f| {
        // Guarantee at least one branch so traces are never empty.
        f.branch(TakenDist::Always);
        emit(specs, f, helper, main);
    });
    b.entry(main).entry_arg(entry_arg);
    b.build().ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dynamic_observations_never_exceed_static_bounds(
        specs in prop::collection::vec(arb_stmt(3), 1..6),
        entry_arg in 0u32..6,
        seed in any::<u64>(),
    ) {
        let Some(program) = build_program(&specs, entry_arg) else {
            return Ok(());
        };
        let analysis = Analysis::of(&program);
        let bounds = analysis.bounds();
        prop_assert!(!bounds.overflowed());
        prop_assert_eq!(analysis.error_count(), 0);

        let mut trace = ExecutionTrace::new();
        // Fuel caps runaway (but still terminating) cases; a truncated
        // run only ever observes *less*, so the bounds must still hold.
        let summary = Interpreter::new(&program, seed)
            .with_fuel(200_000)
            .run(&mut trace)
            .expect("generated programs terminate within limits");

        prop_assert!(summary.branches <= bounds.branches());
        prop_assert!(summary.events <= bounds.events());
        prop_assert!(summary.max_depth as u64 <= bounds.call_depth());

        let interned = InternedTrace::from(trace.branches());
        prop_assert!(
            u64::from(interned.distinct_count()) <= analysis.flow().alphabet_bound()
        );

        let forest = CallLoopForest::build(&trace).expect("well nested");
        prop_assert!(analysis.nesting().is_supergraph_of(&forest));
        prop_assert!(u64::from(forest.max_depth()) <= bounds.nest_depth());
        for edge in forest.construct_edges() {
            prop_assert!(analysis.nesting().edges().contains(&edge));
        }
    }
}
