//! Differential soundness tests: every static claim the analyzer
//! makes must dominate what the interpreter and the oracle observe
//! dynamically, for every built-in workload — plus one deliberately
//! broken program per error diagnostic code.

use opd_analyze::{Analysis, Code, Diagnostic, Severity};
use opd_baseline::CallLoopForest;
use opd_core::InternedTrace;
use opd_microvm::workloads::Workload;
use opd_microvm::{
    parse_program, ArgExpr, Interpreter, ParseError, ProgramBuilder, TakenDist, Trip,
};
use opd_trace::ExecutionTrace;

#[test]
fn workloads_lint_clean_at_deny_level() {
    for w in Workload::ALL {
        let a = Analysis::of(&w.program(1));
        assert!(a.is_clean(), "{w}: {:?}", a.diagnostics());
        assert_eq!(a.error_count() + a.warning_count(), 0, "{w}");
    }
}

#[test]
fn static_bounds_dominate_dynamic_observations() {
    for w in Workload::ALL {
        for scale in [1, 2] {
            let program = w.program(scale);
            let a = Analysis::of(&program);
            let bounds = a.bounds();
            assert!(!bounds.overflowed(), "{w}@{scale}");

            let mut trace = ExecutionTrace::new();
            let summary = Interpreter::new(&program, w.default_seed())
                .run(&mut trace)
                .expect("workloads terminate");

            assert!(
                summary.branches <= bounds.branches(),
                "{w}@{scale}: {} dynamic branches > static bound {}",
                summary.branches,
                bounds.branches()
            );
            assert!(
                summary.events <= bounds.events(),
                "{w}@{scale}: {} dynamic events > static bound {}",
                summary.events,
                bounds.events()
            );
            assert!(
                summary.max_depth as u64 <= bounds.call_depth(),
                "{w}@{scale}: dynamic depth {} > static bound {}",
                summary.max_depth,
                bounds.call_depth()
            );

            let interned = InternedTrace::from(trace.branches());
            assert!(
                u64::from(interned.distinct_count()) <= a.flow().alphabet_bound(),
                "{w}@{scale}: {} distinct elements > alphabet bound {}",
                interned.distinct_count(),
                a.flow().alphabet_bound()
            );
        }
    }
}

#[test]
fn static_nesting_tree_is_a_supergraph_of_every_oracle_forest() {
    for w in Workload::ALL {
        let a = Analysis::of(&w.program(1));
        let forest = CallLoopForest::build(&w.trace(1)).expect("well-nested");
        assert!(a.nesting().is_supergraph_of(&forest), "{w}");
        // Edge-set inclusion, stated directly on the construct sets.
        for edge in forest.construct_edges() {
            assert!(a.nesting().edges().contains(&edge), "{w}: missing {edge:?}");
        }
        assert!(
            u64::from(forest.max_depth()) <= a.bounds().nest_depth(),
            "{w}: dynamic nest depth {} > static bound {}",
            forest.max_depth(),
            a.bounds().nest_depth()
        );
    }
}

// One deliberately broken program per error code.

#[test]
fn unguarded_recursion_is_rejected_with_e002() {
    let mut b = ProgramBuilder::new();
    let f = b.declare("spin");
    b.define(f, |body| {
        body.branch(TakenDist::Always);
        body.call(f, ArgExpr::Const(7)); // neither guarded nor decreasing
    });
    let a = Analysis::of(&b.build().unwrap());
    let codes: Vec<Code> = a.diagnostics().iter().map(Diagnostic::code).collect();
    assert!(codes.contains(&Code::UnguardedRecursion), "{codes:?}");
    assert_eq!(Code::UnguardedRecursion.severity(), Severity::Error);
    assert!(a.error_count() >= 1);
}

#[test]
fn u64_overflowing_loop_nest_is_rejected_with_e004() {
    let mut b = ProgramBuilder::new();
    let f = b.declare("huge");
    b.define(f, |body| {
        body.repeat(Trip::Fixed(4_000_000_000), |l1| {
            l1.repeat(Trip::Fixed(4_000_000_000), |l2| {
                l2.repeat(Trip::Fixed(4_000_000_000), |l3| {
                    l3.branch(TakenDist::Alternating);
                });
            });
        });
    });
    let a = Analysis::of(&b.build().unwrap());
    let codes: Vec<Code> = a.diagnostics().iter().map(Diagnostic::code).collect();
    assert!(codes.contains(&Code::BoundOverflow), "{codes:?}");
    assert_eq!(Code::BoundOverflow.severity(), Severity::Error);
    assert!(a.bounds().overflowed());
}

#[test]
fn structurally_invalid_listing_maps_to_e005() {
    // The parser funnels through the same shared `Program::validate`
    // the builder uses, so an inverted trip range (a defect the line
    // scanner cannot see) surfaces as a BuildError; its diagnostic
    // mapping is the stable OPD-E005 code.
    let listing = "\
// program: 1 functions, 1 loops, 1 branch sites, entry f0 (arg 0)
fn main (f0) // entry {
  loop L0 x[5..=2] {
    branch @0 p=0.5
  }
}
";
    let err = match parse_program(listing) {
        Err(ParseError::Build(err)) => err,
        other => panic!("expected a build error, got {other:?}"),
    };
    let probe = opd_microvm::workloads::Workload::Lexgen.program(1);
    let diag = Diagnostic::from_build_error(&probe, &err);
    assert_eq!(diag.code(), Code::InvalidStructure);
    assert_eq!(diag.severity(), Severity::Error);
    assert!(
        diag.message().contains("inverted range"),
        "{}",
        diag.message()
    );
}

#[test]
fn depth_limit_breach_warns_w007() {
    let mut b = ProgramBuilder::new();
    let f = b.declare("ladder");
    b.define(f, |body| {
        body.branch(TakenDist::Always);
        body.if_arg_positive(|g| {
            g.call(f, ArgExpr::Dec);
        });
    });
    b.entry_arg(700); // terminates, but deeper than the interpreter allows
    let a = Analysis::of(&b.build().unwrap());
    let codes: Vec<Code> = a.diagnostics().iter().map(Diagnostic::code).collect();
    assert!(codes.contains(&Code::CallDepthBound), "{codes:?}");
    assert_eq!(Code::CallDepthBound.severity(), Severity::Warning);
    assert!(!a.bounds().overflowed());
    assert_eq!(a.bounds().call_depth(), 701);
}
