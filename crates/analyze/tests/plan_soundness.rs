//! Differential soundness of the equivalence prover: every pair of
//! configs the prover claims equivalent must produce bit-identical
//! `DetectedPhase` streams — over every built-in workload's trace and
//! over proptest-generated traces. A single divergence would disprove
//! a rule, so these tests run the claim against reality.

use opd_analyze::{equivalence_classes, PlanAnalysis};
use opd_core::{
    AnalyzerPolicy, AnchorPolicy, DetectedPhase, DetectorConfig, InternedTrace, ModelPolicy,
    PhaseDetector, ResizePolicy, SweepEngine, TwPolicy,
};
use opd_microvm::workloads::Workload;
use opd_microvm::Interpreter;
use opd_trace::{ExecutionTrace, MethodId, ProfileElement};
use proptest::prelude::*;

/// Branches per workload trace — enough to warm every grid config
/// (largest cw + tw here is 128) thousands of times over.
const FUEL: u64 = 40_000;

fn workload_trace(w: Workload) -> InternedTrace {
    let program = w.program(1);
    let mut trace = ExecutionTrace::new();
    Interpreter::new(&program, w.default_seed())
        .with_fuel(FUEL)
        .run(&mut trace)
        .expect("workloads terminate");
    InternedTrace::from(trace.branches())
}

fn phases(config: DetectorConfig, trace: &InternedTrace) -> Vec<DetectedPhase> {
    let mut detector = PhaseDetector::new(config);
    let _ = detector.run_interned_phases_only(trace);
    detector.take_phases()
}

fn intern(ids: &[u32]) -> InternedTrace {
    InternedTrace::from_elements(
        ids.iter()
            .map(|&site| ProfileElement::new(MethodId::new(0), site, true)),
    )
}

/// A grid engineered so every prover rule merges something:
/// dead-resize collapses, always-fire collapses (threshold 0 and
/// delta 1 in several models and policies), threshold snapping in
/// both the unweighted and the weighted fixed-denominator form, and
/// exact duplicates.
fn merging_grid() -> Vec<DetectorConfig> {
    let mk = |cw: usize| {
        DetectorConfig::builder()
            .current_window(cw)
            .trailing_window(cw)
    };
    let mut grid = vec![
        // Dead resize: Constant TW never takes the resize path.
        mk(64).resize(ResizePolicy::Slide).build().unwrap(),
        mk(64).resize(ResizePolicy::Move).build().unwrap(),
        mk(64)
            .resize(ResizePolicy::Move)
            .model(ModelPolicy::Pearson)
            .anchor(AnchorPolicy::LeftmostNonNoisy)
            .build()
            .unwrap(),
        mk(64)
            .model(ModelPolicy::Pearson)
            .anchor(AnchorPolicy::LeftmostNonNoisy)
            .build()
            .unwrap(),
        // Always fire: threshold 0 and delta 1 collapse across models
        // and TW policies (same shape and anchor).
        mk(32)
            .analyzer(AnalyzerPolicy::Threshold(0.0))
            .build()
            .unwrap(),
        mk(32)
            .analyzer(AnalyzerPolicy::Average { delta: 1.0 })
            .build()
            .unwrap(),
        mk(32)
            .model(ModelPolicy::Pearson)
            .analyzer(AnalyzerPolicy::Threshold(0.0))
            .build()
            .unwrap(),
        mk(32)
            .model(ModelPolicy::WeightedSet)
            .analyzer(AnalyzerPolicy::Threshold(0.0))
            .build()
            .unwrap(),
        mk(32)
            .tw_policy(TwPolicy::Adaptive)
            .analyzer(AnalyzerPolicy::Threshold(0.0))
            .build()
            .unwrap(),
        mk(32)
            .tw_policy(TwPolicy::Adaptive)
            .resize(ResizePolicy::Move)
            .analyzer(AnalyzerPolicy::Average { delta: 1.0 })
            .build()
            .unwrap(),
        // Threshold snapping, unweighted: a 49-element window cannot
        // distinguish thresholds inside one Farey-49 gap.
        mk(49)
            .analyzer(AnalyzerPolicy::Threshold(0.501))
            .build()
            .unwrap(),
        mk(49)
            .analyzer(AnalyzerPolicy::Threshold(0.505))
            .build()
            .unwrap(),
        // Threshold snapping, weighted fixed denominator cw * tw = 400.
        mk(20)
            .model(ModelPolicy::WeightedSet)
            .analyzer(AnalyzerPolicy::Threshold(0.5001))
            .build()
            .unwrap(),
        mk(20)
            .model(ModelPolicy::WeightedSet)
            .analyzer(AnalyzerPolicy::Threshold(0.5012))
            .build()
            .unwrap(),
        // Exact duplicate of the first config.
        mk(64).resize(ResizePolicy::Slide).build().unwrap(),
        // Controls that must NOT merge with anything above.
        mk(64)
            .analyzer(AnalyzerPolicy::Threshold(0.7))
            .build()
            .unwrap(),
        mk(128)
            .analyzer(AnalyzerPolicy::Threshold(0.0))
            .build()
            .unwrap(),
        mk(32)
            .anchor(AnchorPolicy::LeftmostNonNoisy)
            .analyzer(AnalyzerPolicy::Threshold(0.0))
            .build()
            .unwrap(),
    ];
    grid.push(grid[4]); // another duplicate, later in the grid
    grid
}

#[test]
fn the_merging_grid_actually_merges() {
    let grid = merging_grid();
    let classes = equivalence_classes(&grid);
    assert!(
        classes.len() < grid.len(),
        "expected nontrivial classes, got {} classes for {} configs",
        classes.len(),
        grid.len()
    );
    // Dead resize: 0,1,14 merge; 2,3 merge. Always-fire: 4..=9,18
    // merge. Snapping: 10,11 merge; 12,13 merge. Controls stay alone.
    let class_of = |i: usize| {
        classes
            .iter()
            .position(|c| c.members().contains(&i))
            .unwrap()
    };
    assert_eq!(class_of(0), class_of(1));
    assert_eq!(class_of(0), class_of(14));
    assert_eq!(class_of(2), class_of(3));
    assert_eq!(class_of(4), class_of(5));
    assert_eq!(class_of(4), class_of(9));
    assert_eq!(class_of(4), class_of(18));
    assert_eq!(class_of(10), class_of(11));
    assert_eq!(class_of(12), class_of(13));
    assert_ne!(class_of(0), class_of(15));
    assert_ne!(class_of(4), class_of(16)); // different shape
    assert_ne!(class_of(4), class_of(17)); // different anchor
}

#[test]
fn claimed_equivalences_hold_on_every_workload() {
    let grid = merging_grid();
    let classes = equivalence_classes(&grid);
    for w in Workload::ALL {
        let trace = workload_trace(w);
        for class in classes.iter().filter(|c| c.is_nontrivial()) {
            let reference = phases(grid[class.representative()], &trace);
            for &m in class.members() {
                assert_eq!(
                    phases(grid[m], &trace),
                    reference,
                    "{w}: config #{m} diverges from representative #{} ({})",
                    class.representative(),
                    class.proof(),
                );
            }
        }
    }
}

#[test]
fn pruned_grid_sweep_equals_full_grid_class_by_class() {
    let grid = merging_grid();
    let plan = PlanAnalysis::of(&grid, &[]);
    let pruned = plan.pruned_configs();
    assert!(pruned.len() < grid.len());
    for w in [Workload::Lexgen, Workload::Querydb, Workload::Audiodec] {
        let trace = workload_trace(w);
        let full: Vec<Vec<DetectedPhase>> = SweepEngine::new(&grid).run_all(&trace);
        let per_class: Vec<Vec<DetectedPhase>> = SweepEngine::new(&pruned).run_all(&trace);
        let expanded = plan.expand(&per_class);
        assert_eq!(expanded, full, "{w}");
    }
}

#[test]
fn predicted_scans_match_the_engine_on_both_grids() {
    let grid = merging_grid();
    let plan = PlanAnalysis::of(&grid, &[]);
    assert_eq!(
        plan.predicted_scans_full(),
        SweepEngine::new(&grid).total_scans()
    );
    assert_eq!(
        plan.predicted_scans_pruned(),
        SweepEngine::new(&plan.pruned_configs()).total_scans()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random traces over small alphabets stress the rules where
    /// engineered traces might be too regular: every claimed merge in
    /// the grid must hold on arbitrary input.
    #[test]
    fn claimed_equivalences_hold_on_random_traces(
        ids in proptest::collection::vec(0u32..24, 0..2_000),
    ) {
        let trace = intern(&ids);
        let grid = merging_grid();
        for class in equivalence_classes(&grid).iter().filter(|c| c.is_nontrivial()) {
            let reference = phases(grid[class.representative()], &trace);
            for &m in class.members() {
                prop_assert_eq!(
                    &phases(grid[m], &trace),
                    &reference,
                    "config #{} vs representative #{}",
                    m,
                    class.representative()
                );
            }
        }
    }

    /// The snapped threshold is observationally identical on random
    /// traces even for thresholds the grid does not use.
    #[test]
    fn snapping_preserves_behavior_on_random_traces(
        ids in proptest::collection::vec(0u32..12, 0..1_200),
        t in 0.0f64..1.0,
        cw in 2usize..40,
    ) {
        let mk = |threshold| {
            DetectorConfig::builder()
                .current_window(cw)
                .trailing_window(cw)
                .analyzer(AnalyzerPolicy::Threshold(threshold))
                .build()
                .unwrap()
        };
        let snapped = opd_analyze::snap_threshold(t, cw as u64).unwrap();
        let trace = intern(&ids);
        prop_assert_eq!(phases(mk(t), &trace), phases(mk(snapped), &trace));
    }
}
