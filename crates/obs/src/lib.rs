//! Observability for the phase-detection stack: structured detector
//! events, a lock-free metrics registry, and per-unit sweep profiling.
//!
//! This crate is a *leaf*: it depends only on `opd-trace`, so
//! `opd-core` can depend on it **optionally** (behind its `obs`
//! feature) without a cycle. The contract is zero overhead when off,
//! twice over:
//!
//! * **Compile-time off** — `opd-core` built without `obs` does not
//!   link this crate at all (`scripts/check.sh` guards the dependency
//!   edge with `cargo tree`).
//! * **Runtime off** — the [`DetectorObserver`] trait carries a
//!   `const ACTIVE: bool`; instrumented code guards every event
//!   construction with `if O::ACTIVE`, so the [`NullObserver`]
//!   monomorphizes the instrumented run paths back to the
//!   uninstrumented machine code (asserted allocation-free and within
//!   noise of the plain path by the repository's observer suite and
//!   `BENCH_obs.json`).
//!
//! [`DetectorEvent`] is the event vocabulary (window slides/moves,
//! similarity scores, analyzer decisions, phase transitions);
//! [`MetricsRegistry`] is the sharded counter/histogram registry the
//! sweep paths record into; [`UnitMetrics`] is the plain per-unit
//! accumulator cross-checked against the static cost model. [`Span`]
//! and [`SpanRecorder`] extend the same discipline to *causal*
//! tracing — virtual-time spans with parent ids, recorded through the
//! identical `const ACTIVE` guard — and [`FlightRing`] is the
//! fixed-capacity recent-span buffer behind per-session post-mortems.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod event;
mod metrics;
mod observer;
#[cfg(feature = "sched")]
pub mod sched_model;
mod span;

pub use event::{DetectorEvent, ResizeKind};
pub use metrics::{
    CounterId, HistogramId, HistogramSnapshot, MetricsRegistry, MetricsSnapshot, UnitMetrics,
    HISTOGRAM_BUCKETS,
};
pub use observer::{
    DetectorObserver, FnObserver, MeterObserver, NullObserver, RecordedPhase, RecordingObserver,
};
pub use span::{
    parse_span_log, render_span_log, FlightRing, NullSpanRecorder, Span, SpanKind, SpanLog,
    SpanRecorder, SPAN_LOG_HEADER,
};
