//! Schedule-exploration models that drive the **real**
//! [`MetricsRegistry`] code — not an abstraction of it — under
//! `opd-sched`'s explorer. Only compiled with the `sched` feature.
//!
//! Two models cover the two halves of the registry's ordering
//! contract (see the module docs of [`crate::MetricsRegistry`]'s
//! source):
//!
//! - [`writers_then_snapshot`]: quiesced exactness — after joining
//!   every writer, a snapshot is exact, under *every* interleaving of
//!   the writers.
//! - [`live_snapshot_monotone`]: live consistency — snapshots taken
//!   while a writer is running are monotone between themselves and
//!   never exceed the written total, again under every interleaving.
//!
//! Both use the registry's tagged entry points to pin updates to
//! known shards, which keeps the state space small and the expected
//! object set exact; the untagged paths go through the same code with
//! a tag that is itself deterministic under the explorer.

use std::sync::Arc;

use opd_sched::{check, thread};

use crate::MetricsRegistry;

/// Quiesced-snapshot exactness: two writers each add to their own
/// shard of one counter and record one histogram observation; after
/// both joins a snapshot must be exact. Explored exhaustively this
/// proves the join edges (not the `Relaxed` cells) are what make the
/// sweep paths' snapshots correct.
pub fn writers_then_snapshot() {
    let mut r = MetricsRegistry::new(2);
    let c = r.counter("ops");
    let h = r.histogram("lat");
    let r = Arc::new(r);
    let workers: Vec<thread::JoinHandle> = (0..2u64)
        .map(|i| {
            let r = Arc::clone(&r);
            thread::spawn(move || {
                r.add_tagged(c, i, 1);
                r.add_tagged(c, i, 2);
                r.record_tagged(h, i, 3);
            })
        })
        .collect();
    for w in workers {
        w.join();
    }
    let snap = r.snapshot();
    check(
        snap.counter("ops") == Some(6),
        "quiesced counter snapshot is exact",
    );
    check(
        snap.histogram("lat").map(super::HistogramSnapshot::count) == Some(2),
        "quiesced histogram snapshot is exact",
    );
}

/// Live-snapshot monotonicity: one writer increments both shards of a
/// counter while the registering thread takes two snapshots. Every
/// interleaving must satisfy `snap1 <= snap2 <= total`, and the
/// quiesced snapshot after the join must be exact. A registry that
/// ever lost an update or double-counted would fail here with a
/// schedule witness.
pub fn live_snapshot_monotone() {
    let mut r = MetricsRegistry::new(2);
    let c = r.counter("ops");
    let r = Arc::new(r);
    let writer = {
        let r = Arc::clone(&r);
        thread::spawn(move || {
            r.add_tagged(c, 0, 1);
            r.add_tagged(c, 1, 1);
            r.add_tagged(c, 0, 1);
        })
    };
    let s1 = r.snapshot().counter("ops").unwrap_or(0);
    let s2 = r.snapshot().counter("ops").unwrap_or(0);
    check(s1 <= s2, "concurrent snapshots are monotone");
    check(s2 <= 3, "a snapshot never exceeds what was written");
    writer.join();
    check(
        r.snapshot().counter("ops") == Some(3),
        "quiesced total is exact",
    );
}

/// The shard-cell labels [`writers_then_snapshot`] must touch — the
/// ground truth for the `OPD-R201` (unexplored atomic) lint. The
/// histogram contributes only the cells the model's single bucket
/// (value 3 -> bucket 2) lands in.
#[must_use]
pub fn expected_objects() -> Vec<String> {
    let mut v = vec!["ops[0]".to_owned(), "ops[1]".to_owned()];
    let bucket = 2;
    for shard in 0..2usize {
        v.push(format!(
            "lat[{}]",
            shard * crate::HISTOGRAM_BUCKETS + bucket
        ));
    }
    v
}
