//! The structured event vocabulary emitted by an instrumented
//! detector run.

use core::fmt;

use opd_trace::PhaseState;

/// How an adaptive trailing window was resized at a phase start —
/// mirrors `opd-core`'s `ResizePolicy` without depending on it (this
/// crate sits below `opd-core` in the dependency order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResizeKind {
    /// The trailing window slid to absorb current-window elements.
    Slide,
    /// The trailing window moved to the anchor, keeping its length.
    Move,
}

impl fmt::Display for ResizeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ResizeKind::Slide => "slide",
            ResizeKind::Move => "move",
        })
    }
}

/// One event of a detector run, in emission order:
///
/// * every step emits [`Step`](DetectorEvent::Step), then (once the
///   windows are warm) [`Similarity`](DetectorEvent::Similarity), then
///   [`Decision`](DetectorEvent::Decision);
/// * a `T → P` edge adds [`PhaseStart`](DetectorEvent::PhaseStart)
///   (preceded by [`WindowResize`](DetectorEvent::WindowResize) under
///   an adaptive trailing window);
/// * a `P → T` edge adds [`PhaseEnd`](DetectorEvent::PhaseEnd) and
///   [`WindowFlush`](DetectorEvent::WindowFlush);
/// * a phase still open at end-of-trace is closed by a final
///   [`PhaseEnd`](DetectorEvent::PhaseEnd).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DetectorEvent {
    /// One detector step consumed `len` profile elements starting at
    /// trace offset `start`.
    Step {
        /// Step index (0-based).
        step: u64,
        /// Trace offset of the step's first element.
        start: u64,
        /// Elements consumed by this step.
        len: u32,
        /// Whether both windows were full when the step was judged.
        warm: bool,
    },
    /// The model similarity computed at a warm step.
    Similarity {
        /// Step index.
        step: u64,
        /// Similarity in `[0, 1]`.
        value: f64,
        /// The analyzer's effective threshold at this step.
        threshold: f64,
        /// Comparison ops this judged step cost (the runtime
        /// counterpart of the static cost model's per-step bound).
        ops: u64,
    },
    /// The analyzer's verdict for a step.
    Decision {
        /// Step index.
        step: u64,
        /// State before this step.
        prev: PhaseState,
        /// State after this step.
        state: PhaseState,
    },
    /// A `T → P` edge: a phase began.
    PhaseStart {
        /// Step index.
        step: u64,
        /// Detection-point start offset.
        start: u64,
        /// Anchored (retroactive) start offset.
        anchored_start: u64,
    },
    /// A `P → T` edge or end-of-trace close: a phase ended.
    PhaseEnd {
        /// Step index.
        step: u64,
        /// End offset (exclusive).
        end: u64,
    },
    /// An adaptive trailing window was resized at a phase start.
    WindowResize {
        /// Step index.
        step: u64,
        /// The resize policy applied.
        kind: ResizeKind,
        /// Trailing-window length after the resize.
        tw_len: u64,
    },
    /// The windows were flushed at a phase end, re-seeded with the
    /// last `kept` elements.
    WindowFlush {
        /// Step index.
        step: u64,
        /// Elements kept to re-seed the current window.
        kept: u32,
    },
}

fn letter(state: PhaseState) -> char {
    if state.is_phase() {
        'P'
    } else {
        'T'
    }
}

impl DetectorEvent {
    /// The event's step index.
    #[must_use]
    pub fn step(&self) -> u64 {
        match *self {
            DetectorEvent::Step { step, .. }
            | DetectorEvent::Similarity { step, .. }
            | DetectorEvent::Decision { step, .. }
            | DetectorEvent::PhaseStart { step, .. }
            | DetectorEvent::PhaseEnd { step, .. }
            | DetectorEvent::WindowResize { step, .. }
            | DetectorEvent::WindowFlush { step, .. } => step,
        }
    }

    /// A short machine-stable tag for the event kind.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            DetectorEvent::Step { .. } => "step",
            DetectorEvent::Similarity { .. } => "similarity",
            DetectorEvent::Decision { .. } => "decision",
            DetectorEvent::PhaseStart { .. } => "phase_start",
            DetectorEvent::PhaseEnd { .. } => "phase_end",
            DetectorEvent::WindowResize { .. } => "window_resize",
            DetectorEvent::WindowFlush { .. } => "window_flush",
        }
    }

    /// Renders the event as one JSON object (hand-rolled — the
    /// workspace's `serde_json` resolves to an offline stub).
    #[must_use]
    pub fn to_json(&self) -> String {
        match *self {
            DetectorEvent::Step {
                step,
                start,
                len,
                warm,
            } => format!(
                "{{\"type\": \"step\", \"step\": {step}, \"start\": {start}, \
                 \"len\": {len}, \"warm\": {warm}}}"
            ),
            DetectorEvent::Similarity {
                step,
                value,
                threshold,
                ops,
            } => format!(
                "{{\"type\": \"similarity\", \"step\": {step}, \"value\": {value:.6}, \
                 \"threshold\": {threshold:.6}, \"ops\": {ops}}}"
            ),
            DetectorEvent::Decision { step, prev, state } => format!(
                "{{\"type\": \"decision\", \"step\": {step}, \"prev\": \"{}\", \
                 \"state\": \"{}\"}}",
                letter(prev),
                letter(state),
            ),
            DetectorEvent::PhaseStart {
                step,
                start,
                anchored_start,
            } => format!(
                "{{\"type\": \"phase_start\", \"step\": {step}, \"start\": {start}, \
                 \"anchored_start\": {anchored_start}}}"
            ),
            DetectorEvent::PhaseEnd { step, end } => {
                format!("{{\"type\": \"phase_end\", \"step\": {step}, \"end\": {end}}}")
            }
            DetectorEvent::WindowResize { step, kind, tw_len } => format!(
                "{{\"type\": \"window_resize\", \"step\": {step}, \"kind\": \"{kind}\", \
                 \"tw_len\": {tw_len}}}"
            ),
            DetectorEvent::WindowFlush { step, kept } => {
                format!("{{\"type\": \"window_flush\", \"step\": {step}, \"kept\": {kept}}}")
            }
        }
    }
}

impl fmt::Display for DetectorEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DetectorEvent::Step {
                step,
                start,
                len,
                warm,
            } => write!(
                f,
                "step {step:>6} @{start:<9} len={len}{}",
                if warm { "" } else { " (warming)" }
            ),
            DetectorEvent::Similarity {
                step,
                value,
                threshold,
                ops,
            } => write!(
                f,
                "  similarity {value:.4} (threshold {threshold:.4}, ops {ops}) at step {step}"
            ),
            DetectorEvent::Decision { step, prev, state } => {
                write!(
                    f,
                    "  decision {} -> {} at step {step}",
                    letter(prev),
                    letter(state)
                )
            }
            DetectorEvent::PhaseStart {
                step,
                start,
                anchored_start,
            } => write!(
                f,
                "PHASE START at step {step}: detected @{start}, anchored @{anchored_start}"
            ),
            DetectorEvent::PhaseEnd { step, end } => {
                write!(f, "PHASE END   at step {step}: @{end}")
            }
            DetectorEvent::WindowResize { step, kind, tw_len } => write!(
                f,
                "  window resize ({kind}) at step {step}: tw_len={tw_len}"
            ),
            DetectorEvent::WindowFlush { step, kept } => {
                write!(f, "  window flush at step {step}: kept {kept} element(s)")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_event_kind_renders_both_ways() {
        let events = [
            DetectorEvent::Step {
                step: 1,
                start: 500,
                len: 500,
                warm: true,
            },
            DetectorEvent::Similarity {
                step: 1,
                value: 0.75,
                threshold: 0.5,
                ops: 2,
            },
            DetectorEvent::Decision {
                step: 1,
                prev: PhaseState::Transition,
                state: PhaseState::Phase,
            },
            DetectorEvent::PhaseStart {
                step: 1,
                start: 500,
                anchored_start: 250,
            },
            DetectorEvent::PhaseEnd { step: 9, end: 4500 },
            DetectorEvent::WindowResize {
                step: 1,
                kind: ResizeKind::Slide,
                tw_len: 900,
            },
            DetectorEvent::WindowFlush { step: 9, kept: 1 },
        ];
        for e in &events {
            assert_eq!(
                e.step(),
                if e.kind().starts_with("phase_end") {
                    9
                } else {
                    e.step()
                }
            );
            let json = e.to_json();
            assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
            assert!(json.contains(e.kind()), "{json}");
            assert!(!e.to_string().is_empty());
        }
        assert_eq!(ResizeKind::Move.to_string(), "move");
    }

    #[test]
    fn decision_letters_match_states() {
        let e = DetectorEvent::Decision {
            step: 0,
            prev: PhaseState::Phase,
            state: PhaseState::Transition,
        };
        assert!(e.to_json().contains("\"prev\": \"P\""));
        assert!(e.to_json().contains("\"state\": \"T\""));
    }
}
