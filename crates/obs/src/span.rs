//! Causal spans: the structured, virtual-time trace vocabulary of the
//! serve stack, plus the fixed-capacity flight ring that backs
//! per-session post-mortems.
//!
//! A [`Span`] is one completed unit of work — a frame's ingest, its
//! decode, a detector run, a supervisor backoff — stamped entirely in
//! *virtual ticks*, never wall clock, so span logs from the
//! deterministic vshard simulation are byte-identical across thread
//! counts. Causality is explicit: every span carries its session
//! (`client`), its `vshard`, and the `id` of its causal parent
//! (`0` = root), so one frame's full path
//! `frame_ingest → decode → detect → phase_event` is reconstructible
//! from the flat log.
//!
//! [`SpanRecorder`] follows the same `const ACTIVE` monomorphization
//! discipline as [`DetectorObserver`](crate::DetectorObserver):
//! instrumented code guards every span construction with
//! `if R::ACTIVE`, so the [`NullSpanRecorder`] compiles the traced
//! paths back to the plain machine code — zero allocation, zero
//! branching on live data (asserted by the repository's span suite
//! and the `BENCH_dash.json` overhead gate).

use std::collections::VecDeque;
use std::fmt;

/// What kind of work a span covers. Names are the stable snake_case
/// vocabulary used by span logs, `opd trace --kind`, and post-mortems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// A frame's whole path: enqueue tick to processed tick; `detail`
    /// is the frame index. The causal root of its children.
    FrameIngest,
    /// The resync decode of one frame; `detail` is the records lost
    /// to corruption (0 for a clean frame).
    Decode,
    /// The detector steps judged for one frame; `detail` is the step
    /// count.
    Detect,
    /// One phase boundary notification; `detail` is
    /// `(phase ordinal << 1) | is_end`.
    PhaseEvent,
    /// A supervisor backoff: fail tick to restart tick; `detail` is
    /// the attempt counter carried into the restart.
    Backoff,
    /// The recovery replay at a restart; `detail` is the elements
    /// replayed.
    Retry,
    /// A crash or poison hazard killed the running attempt; `detail`
    /// is the attempt that died.
    HazardKill,
    /// A wedged frame hit the supervisor deadline: wedge tick to kill
    /// tick; `detail` is the attempt that wedged.
    DeadlineKill,
    /// The session was quarantined (terminal); `detail` is the poison
    /// frame count that tripped the allowance.
    Quarantine,
}

impl SpanKind {
    /// Every kind, in lifecycle order.
    pub const ALL: [SpanKind; 9] = [
        SpanKind::FrameIngest,
        SpanKind::Decode,
        SpanKind::Detect,
        SpanKind::PhaseEvent,
        SpanKind::Backoff,
        SpanKind::Retry,
        SpanKind::HazardKill,
        SpanKind::DeadlineKill,
        SpanKind::Quarantine,
    ];

    /// Stable snake_case name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::FrameIngest => "frame_ingest",
            SpanKind::Decode => "decode",
            SpanKind::Detect => "detect",
            SpanKind::PhaseEvent => "phase_event",
            SpanKind::Backoff => "backoff",
            SpanKind::Retry => "retry",
            SpanKind::HazardKill => "hazard_kill",
            SpanKind::DeadlineKill => "deadline_kill",
            SpanKind::Quarantine => "quarantine",
        }
    }

    /// Inverse of [`name`](SpanKind::name).
    #[must_use]
    pub fn from_name(name: &str) -> Option<SpanKind> {
        SpanKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

impl fmt::Display for SpanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One completed span. Times are virtual ticks; ids are a per-session
/// monotonic sequence (so `(client, id)` is globally unique and fully
/// deterministic), and `parent` names the causal parent's id within
/// the same session (`0` = root).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Per-session sequence number, starting at 1.
    pub id: u64,
    /// The causal parent's id within the same session; 0 = root.
    pub parent: u64,
    /// What work this span covers.
    pub kind: SpanKind,
    /// The session (client) this span belongs to.
    pub client: u32,
    /// The virtual shard the session runs in.
    pub vshard: u32,
    /// Virtual tick the work began.
    pub start: u64,
    /// Virtual tick the work completed (`>= start`).
    pub end: u64,
    /// Kind-specific payload (see [`SpanKind`]).
    pub detail: u64,
}

impl Span {
    /// The stable one-line `key=value` rendering used by span logs
    /// and post-mortem documents — greppable, and parsed back by
    /// [`parse_line`](Span::parse_line).
    #[must_use]
    pub fn to_line(&self) -> String {
        format!(
            "kind={} client={} vshard={} id={} parent={} start={} end={} detail={}",
            self.kind.name(),
            self.client,
            self.vshard,
            self.id,
            self.parent,
            self.start,
            self.end,
            self.detail
        )
    }

    /// Parses a [`to_line`](Span::to_line) rendering.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed or missing field.
    pub fn parse_line(line: &str) -> Result<Span, String> {
        let mut kind = None;
        let (mut client, mut vshard) = (None, None);
        let (mut id, mut parent, mut start, mut end, mut detail) = (None, None, None, None, None);
        for field in line.split_ascii_whitespace() {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("span field `{field}` is not key=value"))?;
            let num = |v: &str| -> Result<u64, String> {
                v.parse().map_err(|_| format!("bad {key} `{v}`"))
            };
            match key {
                "kind" => {
                    kind = Some(
                        SpanKind::from_name(value)
                            .ok_or_else(|| format!("unknown span kind `{value}`"))?,
                    );
                }
                "client" => client = Some(u32::try_from(num(value)?).map_err(|e| e.to_string())?),
                "vshard" => vshard = Some(u32::try_from(num(value)?).map_err(|e| e.to_string())?),
                "id" => id = Some(num(value)?),
                "parent" => parent = Some(num(value)?),
                "start" => start = Some(num(value)?),
                "end" => end = Some(num(value)?),
                "detail" => detail = Some(num(value)?),
                other => return Err(format!("unknown span field `{other}`")),
            }
        }
        let missing = |f: &str| format!("span line is missing `{f}`");
        Ok(Span {
            id: id.ok_or_else(|| missing("id"))?,
            parent: parent.ok_or_else(|| missing("parent"))?,
            kind: kind.ok_or_else(|| missing("kind"))?,
            client: client.ok_or_else(|| missing("client"))?,
            vshard: vshard.ok_or_else(|| missing("vshard"))?,
            start: start.ok_or_else(|| missing("start"))?,
            end: end.ok_or_else(|| missing("end"))?,
            detail: detail.ok_or_else(|| missing("detail"))?,
        })
    }

    /// One-object JSON rendering (hand-rolled, like every other
    /// artifact in the repository).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"kind\": \"{}\", \"client\": {}, \"vshard\": {}, \"id\": {}, \"parent\": {}, \"start\": {}, \"end\": {}, \"detail\": {}}}",
            self.kind.name(),
            self.client,
            self.vshard,
            self.id,
            self.parent,
            self.start,
            self.end,
            self.detail
        )
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_line())
    }
}

/// Receives spans as instrumented code completes them.
///
/// The `const ACTIVE` contract mirrors
/// [`DetectorObserver`](crate::DetectorObserver): traced code guards
/// every span construction with `if R::ACTIVE { ... }`, so a recorder
/// with `ACTIVE = false` monomorphizes the traced path back to the
/// plain machine code.
pub trait SpanRecorder {
    /// `false` compiles span construction out entirely.
    const ACTIVE: bool = true;

    /// Called once per completed span.
    fn record(&mut self, span: &Span);

    /// Takes every span recorded so far (empty for recorders that
    /// keep none).
    fn drain(&mut self) -> Vec<Span> {
        Vec::new()
    }
}

/// The do-nothing recorder: `ACTIVE = false`, so traced code
/// monomorphizes to the plain path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSpanRecorder;

impl SpanRecorder for NullSpanRecorder {
    const ACTIVE: bool = false;

    #[inline(always)]
    fn record(&mut self, _: &Span) {}
}

// The null recorder must never flip active: traced paths rely on the
// guard folding to `if false`.
const _: () = assert!(!NullSpanRecorder::ACTIVE);

/// Records every span into a growable log, in emission order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanLog {
    /// Every recorded span, oldest first.
    pub spans: Vec<Span>,
}

impl SpanRecorder for SpanLog {
    fn record(&mut self, span: &Span) {
        self.spans.push(*span);
    }

    fn drain(&mut self) -> Vec<Span> {
        std::mem::take(&mut self.spans)
    }
}

/// First line of every span-log file written by `opd serve
/// --spans-out` (and how `opd trace` recognizes one).
pub const SPAN_LOG_HEADER: &str = "# opd-spans-v1";

/// Renders spans as a span-log document: the version header, then one
/// [`Span::to_line`] per span.
#[must_use]
pub fn render_span_log(spans: &[Span]) -> String {
    let mut out = String::with_capacity(spans.len() * 80 + SPAN_LOG_HEADER.len() + 1);
    out.push_str(SPAN_LOG_HEADER);
    out.push('\n');
    for s in spans {
        out.push_str(&s.to_line());
        out.push('\n');
    }
    out
}

/// Parses a [`render_span_log`] document.
///
/// # Errors
///
/// Returns a message if the header is missing or any line fails
/// [`Span::parse_line`].
pub fn parse_span_log(text: &str) -> Result<Vec<Span>, String> {
    let mut lines = text.lines();
    match lines.next() {
        Some(SPAN_LOG_HEADER) => {}
        _ => return Err(format!("span log must start with `{SPAN_LOG_HEADER}`")),
    }
    lines
        .filter(|l| !l.trim().is_empty())
        .map(Span::parse_line)
        .collect()
}

/// A fixed-capacity ring of the most recent spans: the per-session
/// flight recorder. Pushing past capacity evicts the oldest span;
/// iteration is always oldest → newest.
#[derive(Debug, Clone)]
pub struct FlightRing {
    capacity: usize,
    buf: VecDeque<Span>,
    recorded: u64,
}

impl FlightRing {
    /// A ring keeping the last `capacity` spans (at least 1).
    #[must_use]
    pub fn new(capacity: usize) -> FlightRing {
        let capacity = capacity.max(1);
        FlightRing {
            capacity,
            buf: VecDeque::with_capacity(capacity),
            recorded: 0,
        }
    }

    /// [`new`](FlightRing::new) without the buffer pre-allocation:
    /// nothing is allocated until the first push. This is the
    /// disabled-tracing arm of traced session paths, where the ring
    /// is constructed but never pushed to — it keeps that path
    /// allocation-free.
    #[must_use]
    pub fn inert(capacity: usize) -> FlightRing {
        FlightRing {
            capacity: capacity.max(1),
            buf: VecDeque::new(),
            recorded: 0,
        }
    }

    /// Appends a span, evicting the oldest if the ring is full.
    pub fn push(&mut self, span: Span) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(span);
        self.recorded += 1;
    }

    /// The retained spans, oldest first.
    pub fn spans(&self) -> impl Iterator<Item = &Span> {
        self.buf.iter()
    }

    /// Retained span count (`<= capacity`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing has been retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The fixed retention bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Spans ever pushed, including evicted ones.
    #[must_use]
    pub fn total_recorded(&self) -> u64 {
        self.recorded
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64) -> Span {
        Span {
            id,
            parent: id.saturating_sub(1),
            kind: SpanKind::ALL[(id as usize) % SpanKind::ALL.len()],
            client: 7,
            vshard: 3,
            start: id * 2,
            end: id * 2 + 1,
            detail: id * 10,
        }
    }

    #[test]
    fn kind_names_roundtrip() {
        for k in SpanKind::ALL {
            assert_eq!(SpanKind::from_name(k.name()), Some(k));
        }
        assert_eq!(SpanKind::from_name("warp_core"), None);
    }

    #[test]
    fn span_line_roundtrips() {
        for id in 1..=20 {
            let s = span(id);
            assert_eq!(Span::parse_line(&s.to_line()), Ok(s));
        }
    }

    #[test]
    fn span_line_parse_rejects_malformed_input() {
        assert!(Span::parse_line("kind=frame_ingest").is_err());
        assert!(Span::parse_line(
            "kind=bogus client=0 vshard=0 id=1 parent=0 start=0 end=0 detail=0"
        )
        .is_err());
        assert!(Span::parse_line("notakeyvalue").is_err());
        assert!(Span::parse_line("kind=decode wat=1").is_err());
    }

    #[test]
    fn span_log_roundtrips_and_requires_header() {
        let spans: Vec<Span> = (1..=5).map(span).collect();
        let log = render_span_log(&spans);
        assert!(log.starts_with(SPAN_LOG_HEADER));
        assert_eq!(parse_span_log(&log), Ok(spans));
        assert!(parse_span_log("kind=decode client=0").is_err());
    }

    #[test]
    fn ring_wraparound_keeps_exactly_the_last_capacity_in_order() {
        // The flight-recorder contract: capacity + k pushes retain
        // exactly the last `capacity` spans, order preserved.
        for capacity in [1usize, 3, 8] {
            for k in [0u64, 1, 5] {
                let mut ring = FlightRing::new(capacity);
                let total = capacity as u64 + k;
                for id in 1..=total {
                    ring.push(span(id));
                }
                assert_eq!(ring.len(), capacity);
                assert_eq!(ring.total_recorded(), total);
                let kept: Vec<u64> = ring.spans().map(|s| s.id).collect();
                let expect: Vec<u64> = (total - capacity as u64 + 1..=total).collect();
                assert_eq!(kept, expect, "capacity {capacity}, k {k}");
            }
        }
    }

    // The ACTIVE contract is a compile-time fact; pin it as one.
    const _: () = assert!(!NullSpanRecorder::ACTIVE);
    const _: () = assert!(SpanLog::ACTIVE);

    #[test]
    fn null_recorder_is_inert() {
        let mut r = NullSpanRecorder;
        r.record(&span(1));
        assert!(r.drain().is_empty());
    }

    #[test]
    fn span_log_recorder_collects_in_order() {
        let mut log = SpanLog::default();
        for id in 1..=4 {
            log.record(&span(id));
        }
        let drained = log.drain();
        assert_eq!(drained.len(), 4);
        assert!(drained.windows(2).all(|w| w[0].id < w[1].id));
        assert!(log.spans.is_empty());
    }
}
