//! A lock-free, sharded metrics registry: counters and fixed-bucket
//! log2 histograms, snapshot-on-demand.
//!
//! Writers never contend on a lock: every metric is an array of
//! cache-line-padded shards, and each thread picks its shard by
//! SplitMix64-mixing a per-thread tag — uniform shard spread without
//! any coordination.
//!
//! # Ordering contract
//!
//! Every shard cell is updated and read with `Relaxed` ordering, and
//! that is a *contract*, not an accident:
//!
//! - Updates are always `fetch_add` (never load-then-store), so no
//!   increment can be lost regardless of interleaving — each shard's
//!   value is monotone non-decreasing.
//! - A snapshot sums the shards with `Relaxed` loads and therefore
//!   carries no happens-before edge of its own: while writers are
//!   live it may be *torn across shards* (the sum need not equal the
//!   registry's state at any single instant), but it is always
//!   monotone between two snapshots by one thread, and never exceeds
//!   what has been written.
//! - Exactness comes from the caller's synchronization, not the
//!   registry's: the sweep paths snapshot only after joining their
//!   workers, and the join edge is what makes the quiesced snapshot
//!   exact.
//!
//! Both halves of the contract — quiesced exactness and live
//! monotonicity — are explored exhaustively by the schedule explorer
//! over the real registry code (see [`sched_model`], `sched` feature)
//! and stress-tested under the OS scheduler.
//!
//! Under the `sched` feature the shard cells become instrumented
//! [`opd_sched::SyncAtomicU64`]s and the thread tag is derived from
//! the deterministic model-thread index whenever a schedule
//! exploration is active, so shard selection (and with it the whole
//! registry) replays identically across runs.

use std::sync::atomic::Ordering;

#[cfg(not(feature = "sched"))]
use std::sync::atomic::AtomicU64 as AtomicCell;

#[cfg(feature = "sched")]
use opd_sched::SyncAtomicU64 as AtomicCell;

#[cfg(not(feature = "sched"))]
use std::sync::atomic::AtomicU64;

/// Number of histogram buckets: bucket 0 holds zero values and bucket
/// `1 + floor(log2(v))` holds value `v`, so all of `u64` is covered.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A cache-line-padded atomic cell: one shard of one metric.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedU64(AtomicCell);

/// SplitMix64's finalizer: mixes a per-thread tag into a uniformly
/// distributed shard selector.
#[must_use]
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(not(feature = "sched"))]
thread_local! {
    static THREAD_TAG: u64 = {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        splitmix64(NEXT.fetch_add(1, Ordering::Relaxed))
    };
}

/// The calling thread's shard tag. On ordinary threads this is a
/// SplitMix64-mixed process-wide counter (assigned once per thread,
/// `Relaxed` is sufficient: the counter is only ever incremented and
/// uniqueness, not ordering, is what shard spread needs). Inside an
/// active schedule exploration it is the mixed model-thread index, so
/// shard selection is deterministic and replays exactly.
#[cfg(not(feature = "sched"))]
fn thread_tag() -> u64 {
    THREAD_TAG.with(|&tag| tag)
}

/// See the non-`sched` variant. Under the explorer the tag comes from
/// the deterministic model-thread index; the thread-local counter
/// fallback covers ordinary threads when the feature is compiled in
/// but no exploration is active.
#[cfg(feature = "sched")]
fn thread_tag() -> u64 {
    if let Some(t) = opd_sched::current_thread_index() {
        return splitmix64(t as u64);
    }
    thread_local! {
        static THREAD_TAG: u64 = {
            static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
            splitmix64(NEXT.fetch_add(1, Ordering::Relaxed))
        };
    }
    THREAD_TAG.with(|&tag| tag)
}

fn shard_for_tag(tag: u64, shards: usize) -> usize {
    debug_assert!(shards.is_power_of_two());
    (tag as usize) & (shards - 1)
}

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

#[derive(Debug)]
struct CounterFamily {
    name: &'static str,
    shards: Box<[PaddedU64]>,
}

#[derive(Debug)]
struct HistogramFamily {
    name: &'static str,
    /// `shards × HISTOGRAM_BUCKETS`, shard-major.
    buckets: Box<[PaddedU64]>,
}

/// The registry: metrics are registered up front (while the registry
/// is still exclusively owned), then shared by reference across
/// worker threads for lock-free recording.
#[derive(Debug)]
pub struct MetricsRegistry {
    shards: usize,
    counters: Vec<CounterFamily>,
    histograms: Vec<HistogramFamily>,
}

impl MetricsRegistry {
    /// A registry with `shards` shards per metric (rounded up to a
    /// power of two, at least 1).
    #[must_use]
    pub fn new(shards: usize) -> Self {
        MetricsRegistry {
            shards: shards.max(1).next_power_of_two(),
            counters: Vec::new(),
            histograms: Vec::new(),
        }
    }

    /// A registry sharded for the machine's available parallelism.
    #[must_use]
    pub fn for_host() -> Self {
        let n = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
        Self::new(n)
    }

    /// Registers a counter and returns its handle.
    pub fn counter(&mut self, name: &'static str) -> CounterId {
        let shards: Box<[PaddedU64]> = (0..self.shards).map(|_| PaddedU64::default()).collect();
        #[cfg(feature = "sched")]
        for (i, cell) in shards.iter().enumerate() {
            cell.0.set_label(format!("{name}[{i}]"));
        }
        self.counters.push(CounterFamily { name, shards });
        CounterId(self.counters.len() - 1)
    }

    /// Registers a histogram and returns its handle.
    pub fn histogram(&mut self, name: &'static str) -> HistogramId {
        let buckets: Box<[PaddedU64]> = (0..self.shards * HISTOGRAM_BUCKETS)
            .map(|_| PaddedU64::default())
            .collect();
        #[cfg(feature = "sched")]
        for (i, cell) in buckets.iter().enumerate() {
            cell.0.set_label(format!("{name}[{i}]"));
        }
        self.histograms.push(HistogramFamily { name, buckets });
        HistogramId(self.histograms.len() - 1)
    }

    /// Adds `n` to a counter (lock-free; callable from any thread).
    pub fn add(&self, id: CounterId, n: u64) {
        self.add_tagged(id, thread_tag(), n);
    }

    /// [`add`](Self::add) with an explicit shard tag — the injectable
    /// seam the explorer models use to pin updates to known shards.
    /// `Relaxed` suffices: increments are RMWs (nothing is lost) and
    /// snapshot exactness comes from the caller's join edge.
    pub fn add_tagged(&self, id: CounterId, tag: u64, n: u64) {
        let shard = shard_for_tag(tag, self.shards);
        self.counters[id.0].shards[shard]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Records one observation of `value` into a histogram.
    pub fn record(&self, id: HistogramId, value: u64) {
        self.record_tagged(id, thread_tag(), value);
    }

    /// [`record`](Self::record) with an explicit shard tag (see
    /// [`add_tagged`](Self::add_tagged)).
    pub fn record_tagged(&self, id: HistogramId, tag: u64, value: u64) {
        let bucket = if value == 0 {
            0
        } else {
            1 + value.ilog2() as usize
        };
        let shard = shard_for_tag(tag, self.shards);
        self.histograms[id.0].buckets[shard * HISTOGRAM_BUCKETS + bucket]
            .0
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Sums every metric's shards into a point-in-time snapshot.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|c| {
                let total = c
                    .shards
                    .iter()
                    .map(|s| s.0.load(Ordering::Relaxed))
                    .sum::<u64>();
                (c.name, total)
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|h| {
                let mut buckets = [0u64; HISTOGRAM_BUCKETS];
                for (i, cell) in h.buckets.iter().enumerate() {
                    buckets[i % HISTOGRAM_BUCKETS] += cell.0.load(Ordering::Relaxed);
                }
                (h.name, HistogramSnapshot { buckets })
            })
            .collect();
        MetricsSnapshot {
            counters,
            histograms,
        }
    }
}

/// A summed view of one histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observation counts per log2 bucket (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramSnapshot {
    /// An all-zero snapshot, for accumulating observations outside a
    /// registry (per-window views, parsed artifacts).
    #[must_use]
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }

    /// Adds one observation of `value`, using the same log2 bucket
    /// rule as [`MetricsRegistry::record`].
    pub fn record(&mut self, value: u64) {
        let bucket = if value == 0 {
            0
        } else {
            1 + value.ilog2() as usize
        };
        self.buckets[bucket] += 1;
    }

    /// Total observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Inclusive lower bound of the values in bucket `i` (0 for the
    /// zero bucket, otherwise `2^(i-1)`).
    #[must_use]
    pub fn bucket_floor(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// The highest non-empty bucket's index, if any observation was
    /// recorded.
    #[must_use]
    pub fn max_bucket(&self) -> Option<usize> {
        self.buckets.iter().rposition(|&c| c > 0)
    }

    /// Inclusive upper bound of the values in bucket `i` (0 for the
    /// zero bucket, otherwise `2^i - 1`, saturating at `u64::MAX`).
    #[must_use]
    pub fn bucket_ceiling(i: usize) -> u64 {
        match i {
            0 => 0,
            64.. => u64::MAX,
            _ => (1u64 << i) - 1,
        }
    }

    /// The `q`-quantile (`0.0..=1.0`, clamped) of the recorded
    /// observations, interpolated within log2 buckets.
    ///
    /// The rank is the standard fractional rank `q * (count - 1)`
    /// over the sorted observations; the bucket holding that rank
    /// contributes linearly between its floor and its ceiling. Exact
    /// bucket boundaries are exact: a rank landing on the first
    /// observation of a bucket yields precisely
    /// [`bucket_floor`](HistogramSnapshot::bucket_floor). Returns
    /// `None` when nothing was recorded.
    #[must_use]
    pub fn percentile(&self, q: f64) -> Option<f64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        #[allow(clippy::cast_precision_loss)]
        let rank = q.clamp(0.0, 1.0) * ((n - 1) as f64);
        let mut below = 0u64;
        for (i, &cnt) in self.buckets.iter().enumerate() {
            if cnt == 0 {
                continue;
            }
            #[allow(clippy::cast_precision_loss)]
            let (lo, hi) = (below as f64, (below + cnt) as f64);
            if rank < hi || below + cnt == n {
                let floor = Self::bucket_floor(i);
                let ceiling = Self::bucket_ceiling(i);
                let frac = ((rank - lo) / (hi - lo)).clamp(0.0, 1.0);
                #[allow(clippy::cast_precision_loss)]
                return Some(floor as f64 + frac * (ceiling - floor) as f64);
            }
            below += cnt;
        }
        None
    }
}

/// A point-in-time view of every registered metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, total)` per counter, in registration order.
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, buckets)` per histogram, in registration order.
    pub histograms: Vec<(&'static str, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Looks a counter up by name.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// Looks a histogram up by name.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, h)| h)
    }

    /// Renders the snapshot as a Prometheus-style text exposition:
    /// counters verbatim, histograms as cumulative `_bucket{le="…"}`
    /// series over the log2 bucket ceilings (up to the highest
    /// non-empty bucket) plus `_count`. Metric names are sanitized to
    /// `[a-zA-Z0-9_]` and prefixed `opd_`.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        fn sanitize(name: &str) -> String {
            let mut out = String::with_capacity(name.len() + 4);
            out.push_str("opd_");
            for c in name.chars() {
                out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
            }
            out
        }
        let mut out = String::new();
        for &(name, total) in &self.counters {
            let name = sanitize(name);
            out.push_str(&format!("# TYPE {name} counter\n{name} {total}\n"));
        }
        for (name, hist) in &self.histograms {
            let name = sanitize(name);
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let top = hist.max_bucket().unwrap_or(0);
            let mut cumulative = 0u64;
            for (i, &cnt) in hist.buckets.iter().enumerate().take(top + 1) {
                cumulative += cnt;
                let le = HistogramSnapshot::bucket_ceiling(i);
                out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
            }
            out.push_str(&format!(
                "{name}_bucket{{le=\"+Inf\"}} {count}\n{name}_count {count}\n",
                count = hist.count()
            ));
        }
        out
    }
}

/// Plain (non-atomic) per-unit sweep accounting: what one
/// `SweepEngine` unit run actually did, accumulated on the worker
/// thread and cross-checked against the static cost model.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct UnitMetrics {
    /// Trace scans performed (1 per shared group, 1 per private
    /// member).
    pub scans: u64,
    /// Detector steps taken across all scans.
    pub steps: u64,
    /// `(member, step)` pairs that were actually judged (windows warm
    /// and refilled).
    pub judged_steps: u64,
    /// Comparison ops spent on similarity computation and judging —
    /// the runtime counterpart of `ConfigCost::compare_ops`.
    pub compare_ops: u64,
    /// Profile elements consumed across all scans.
    pub elements: u64,
}

impl UnitMetrics {
    /// An all-zero accumulator.
    #[must_use]
    pub fn new() -> Self {
        UnitMetrics::default()
    }

    /// Adds another accumulator's totals into this one.
    pub fn merge(&mut self, other: &UnitMetrics) {
        self.scans += other.scans;
        self.steps += other.steps;
        self.judged_steps += other.judged_steps;
        self.compare_ops += other.compare_ops;
        self.elements += other.elements;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sum_across_threads() {
        let mut r = MetricsRegistry::new(8);
        let c = r.counter("ops");
        let r = &r;
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(move || {
                    for _ in 0..10_000 {
                        r.add(c, 3);
                    }
                });
            }
        });
        assert_eq!(r.snapshot().counter("ops"), Some(8 * 10_000 * 3));
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let mut r = MetricsRegistry::new(1);
        let h = r.histogram("lat");
        for v in [0u64, 1, 2, 3, 4, 1023, 1024, u64::MAX] {
            r.record(h, v);
        }
        let snap = r.snapshot();
        let hist = snap.histogram("lat").unwrap();
        assert_eq!(hist.count(), 8);
        assert_eq!(hist.buckets[0], 1); // 0
        assert_eq!(hist.buckets[1], 1); // 1
        assert_eq!(hist.buckets[2], 2); // 2, 3
        assert_eq!(hist.buckets[3], 1); // 4
        assert_eq!(hist.buckets[10], 1); // 1023
        assert_eq!(hist.buckets[11], 1); // 1024
        assert_eq!(hist.buckets[64], 1); // u64::MAX
        assert_eq!(hist.max_bucket(), Some(64));
        assert_eq!(HistogramSnapshot::bucket_floor(0), 0);
        assert_eq!(HistogramSnapshot::bucket_floor(11), 1024);
        assert_eq!(snap.histogram("nope"), None);
        assert_eq!(snap.counter("nope"), None);
    }

    #[test]
    fn histograms_sum_across_threads() {
        let mut r = MetricsRegistry::new(4);
        let h = r.histogram("v");
        let r = &r;
        std::thread::scope(|s| {
            for t in 0..4u64 {
                s.spawn(move || {
                    for i in 0..1_000 {
                        r.record(h, t * 1_000 + i);
                    }
                });
            }
        });
        assert_eq!(r.snapshot().histogram("v").unwrap().count(), 4_000);
    }

    #[test]
    fn live_snapshots_are_monotone_under_stress() {
        // The OS-scheduler half of the snapshot-consistency story
        // (the exhaustive half runs under the explorer, see
        // `sched_model`): concurrent writers + a snapshotter never
        // observe a non-monotone or overshooting total.
        let mut r = MetricsRegistry::new(4);
        let c = r.counter("ops");
        let r = &r;
        const PER_THREAD: u64 = 20_000;
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(move || {
                    for _ in 0..PER_THREAD {
                        r.add(c, 1);
                    }
                });
            }
            let mut last = 0;
            for _ in 0..1_000 {
                let now = r.snapshot().counter("ops").unwrap();
                assert!(now >= last, "non-monotone snapshot: {last} -> {now}");
                assert!(now <= 4 * PER_THREAD, "snapshot overshoots: {now}");
                last = now;
            }
        });
        assert_eq!(r.snapshot().counter("ops"), Some(4 * PER_THREAD));
    }

    #[test]
    fn tagged_updates_pin_shards() {
        let mut r = MetricsRegistry::new(4);
        let c = r.counter("ops");
        let h = r.histogram("lat");
        for tag in 0..8u64 {
            r.add_tagged(c, tag, 1);
            r.record_tagged(h, tag, 5);
        }
        let snap = r.snapshot();
        assert_eq!(snap.counter("ops"), Some(8));
        assert_eq!(snap.histogram("lat").unwrap().count(), 8);
        // Tags reduce mod the shard count: tag and tag+4 share a
        // shard, so exactly 4 shards were touched with 2 each.
        for shard in 0..4 {
            assert_eq!(r.counters[c.0].shards[shard].0.load(Ordering::Relaxed), 2);
        }
    }

    #[test]
    fn splitmix_spreads_sequential_tags() {
        // Sequential thread tags must not all land in one shard.
        let shards: std::collections::HashSet<u64> =
            (0..16u64).map(|t| splitmix64(t) & 7).collect();
        assert!(shards.len() >= 4, "poor spread: {shards:?}");
    }

    #[test]
    fn unit_metrics_merge_adds_fields() {
        let mut a = UnitMetrics {
            scans: 1,
            steps: 10,
            judged_steps: 5,
            compare_ops: 100,
            elements: 1_000,
        };
        a.merge(&a.clone());
        assert_eq!(
            a,
            UnitMetrics {
                scans: 2,
                steps: 20,
                judged_steps: 10,
                compare_ops: 200,
                elements: 2_000,
            }
        );
    }

    #[test]
    fn percentile_is_exact_on_bucket_boundaries() {
        // Rank landing on the first observation of a bucket yields
        // exactly the bucket floor — the documented boundary contract.
        let mut h = HistogramSnapshot::empty();
        assert_eq!(h.percentile(0.5), None);
        h.record(0); // bucket 0
        h.record(1); // bucket 1, floor 1
        h.record(4); // bucket 3, floor 4
        h.record(5); // bucket 3
        assert_eq!(h.percentile(0.0), Some(0.0));
        // rank 1.0 is the first (only) observation of bucket 1.
        assert_eq!(h.percentile(1.0 / 3.0), Some(1.0));
        // rank 2.0 is the first observation of bucket 3: exactly 4.
        assert_eq!(h.percentile(2.0 / 3.0), Some(4.0));
        // rank 3.0 is halfway through bucket 3 [4, 7]: 4 + 0.5 * 3.
        assert_eq!(h.percentile(1.0), Some(5.5));
        // Out-of-range quantiles clamp.
        assert_eq!(h.percentile(-1.0), h.percentile(0.0));
        assert_eq!(h.percentile(9.0), h.percentile(1.0));
    }

    #[test]
    fn percentile_interpolates_within_a_bucket() {
        let mut h = HistogramSnapshot::empty();
        for _ in 0..5 {
            h.record(100); // bucket 7: [64, 127]
        }
        // All mass in one bucket: p0 is the floor, p100 walks toward
        // (but stays below) the ceiling.
        assert_eq!(h.percentile(0.0), Some(64.0));
        let p100 = h.percentile(1.0).unwrap();
        assert!(p100 > 64.0 && p100 < 127.0, "{p100}");
        // A single observation reports its bucket floor at every q.
        let mut one = HistogramSnapshot::empty();
        one.record(1024);
        assert_eq!(one.percentile(0.5), Some(1024.0));
        assert_eq!(HistogramSnapshot::bucket_ceiling(0), 0);
        assert_eq!(HistogramSnapshot::bucket_ceiling(11), 2047);
        assert_eq!(HistogramSnapshot::bucket_ceiling(64), u64::MAX);
    }

    #[test]
    fn prometheus_exposition_is_cumulative_and_sanitized() {
        let mut r = MetricsRegistry::new(1);
        let c = r.counter("serve.frames_processed");
        let h = r.histogram("serve.latency_ticks");
        r.add(c, 7);
        r.record(h, 0);
        r.record(h, 3);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("# TYPE opd_serve_frames_processed counter\n"));
        assert!(text.contains("opd_serve_frames_processed 7\n"));
        assert!(text.contains("# TYPE opd_serve_latency_ticks histogram\n"));
        assert!(text.contains("opd_serve_latency_ticks_bucket{le=\"0\"} 1\n"));
        // Bucket 2 holds value 3; the series is cumulative.
        assert!(text.contains("opd_serve_latency_ticks_bucket{le=\"3\"} 2\n"));
        assert!(text.contains("opd_serve_latency_ticks_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("opd_serve_latency_ticks_count 2\n"));
        assert!(!text.contains("serve."), "names must be sanitized");
    }

    #[test]
    fn registry_for_host_has_power_of_two_shards() {
        let r = MetricsRegistry::for_host();
        assert!(r.shards.is_power_of_two());
        let r3 = MetricsRegistry::new(3);
        assert_eq!(r3.shards, 4);
    }
}
