//! The observer trait and its stock implementations.

use crate::event::DetectorEvent;
use crate::metrics::UnitMetrics;

/// Receives the structured event stream of an instrumented detector
/// run.
///
/// The associated `ACTIVE` constant is the zero-overhead-when-off
/// switch: instrumented code guards every event construction with
/// `if O::ACTIVE { ... }`, so an observer with `ACTIVE = false`
/// ([`NullObserver`]) monomorphizes the instrumented path back to the
/// uninstrumented machine code — no event is ever built, no call is
/// ever made.
pub trait DetectorObserver {
    /// Whether this observer wants events at all. Leave at the default
    /// (`true`) for any observer that reads events.
    const ACTIVE: bool = true;

    /// Called once per emitted event, in emission order.
    fn on_event(&mut self, event: &DetectorEvent);
}

/// The do-nothing observer: `ACTIVE = false`, so instrumented run
/// paths compile to the same code as their uninstrumented twins (the
/// repository's observer-equivalence suite asserts bit-identical
/// results and an allocation-free steady state).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl DetectorObserver for NullObserver {
    const ACTIVE: bool = false;

    #[inline(always)]
    fn on_event(&mut self, _event: &DetectorEvent) {}
}

/// Calls a closure per event — the streaming adaptor used by
/// `opd trace`.
#[derive(Debug)]
pub struct FnObserver<F: FnMut(&DetectorEvent)>(pub F);

impl<F: FnMut(&DetectorEvent)> DetectorObserver for FnObserver<F> {
    #[inline]
    fn on_event(&mut self, event: &DetectorEvent) {
        (self.0)(event);
    }
}

/// One phase reconstructed purely from the event stream (no access to
/// the detector's own phase list) — the observer-equivalence suite
/// compares these against `DetectedPhase` records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordedPhase {
    /// Detection-point start offset.
    pub start: u64,
    /// Anchored (retroactive) start offset.
    pub anchored_start: u64,
    /// End offset, if the stream contained the phase's end.
    pub end: Option<u64>,
}

/// Buffers every event and reconstructs the phase-transition sequence
/// from `phase_start`/`phase_end` events alone.
#[derive(Debug, Default)]
pub struct RecordingObserver {
    /// Every event received, in order.
    pub events: Vec<DetectorEvent>,
}

impl RecordingObserver {
    /// An empty recorder.
    #[must_use]
    pub fn new() -> Self {
        RecordingObserver::default()
    }

    /// Reconstructs the detected phases from the recorded
    /// `phase_start` / `phase_end` events.
    #[must_use]
    pub fn phases(&self) -> Vec<RecordedPhase> {
        let mut out: Vec<RecordedPhase> = Vec::new();
        for e in &self.events {
            match *e {
                DetectorEvent::PhaseStart {
                    start,
                    anchored_start,
                    ..
                } => out.push(RecordedPhase {
                    start,
                    anchored_start,
                    end: None,
                }),
                DetectorEvent::PhaseEnd { end, .. } => {
                    if let Some(open) = out.last_mut() {
                        debug_assert!(open.end.is_none(), "phase ended twice");
                        open.end = Some(end);
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// The per-step `(prev, state)` decision sequence.
    #[must_use]
    pub fn decisions(&self) -> Vec<(u64, bool)> {
        self.events
            .iter()
            .filter_map(|e| match *e {
                DetectorEvent::Decision { step, state, .. } => Some((step, state.is_phase())),
                _ => None,
            })
            .collect()
    }
}

impl DetectorObserver for RecordingObserver {
    fn on_event(&mut self, event: &DetectorEvent) {
        self.events.push(*event);
    }
}

/// Accumulates [`UnitMetrics`] from the event stream without
/// buffering it: steps from `step` events, judged steps and
/// comparison ops from `similarity` events.
#[derive(Debug, Default)]
pub struct MeterObserver {
    /// The running totals (scans/elements are the caller's to fill;
    /// the meter only sees steps).
    pub metrics: UnitMetrics,
}

impl MeterObserver {
    /// A zeroed meter.
    #[must_use]
    pub fn new() -> Self {
        MeterObserver::default()
    }
}

impl DetectorObserver for MeterObserver {
    #[inline]
    fn on_event(&mut self, event: &DetectorEvent) {
        match *event {
            DetectorEvent::Step { .. } => self.metrics.steps += 1,
            DetectorEvent::Similarity { ops, .. } => {
                self.metrics.judged_steps += 1;
                self.metrics.compare_ops += ops;
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opd_trace::PhaseState;

    #[test]
    fn recording_observer_reconstructs_phases() {
        let mut r = RecordingObserver::new();
        let stream = [
            DetectorEvent::Step {
                step: 0,
                start: 0,
                len: 10,
                warm: false,
            },
            DetectorEvent::PhaseStart {
                step: 3,
                start: 30,
                anchored_start: 12,
            },
            DetectorEvent::Decision {
                step: 3,
                prev: PhaseState::Transition,
                state: PhaseState::Phase,
            },
            DetectorEvent::PhaseEnd { step: 7, end: 70 },
            DetectorEvent::PhaseStart {
                step: 9,
                start: 90,
                anchored_start: 85,
            },
        ];
        for e in &stream {
            r.on_event(e);
        }
        assert_eq!(
            r.phases(),
            vec![
                RecordedPhase {
                    start: 30,
                    anchored_start: 12,
                    end: Some(70)
                },
                RecordedPhase {
                    start: 90,
                    anchored_start: 85,
                    end: None
                },
            ]
        );
        assert_eq!(r.decisions(), vec![(3, true)]);
        assert_eq!(r.events.len(), stream.len());
    }

    #[test]
    fn meter_observer_counts_steps_and_ops() {
        let mut m = MeterObserver::new();
        m.on_event(&DetectorEvent::Step {
            step: 0,
            start: 0,
            len: 5,
            warm: false,
        });
        m.on_event(&DetectorEvent::Step {
            step: 1,
            start: 5,
            len: 5,
            warm: true,
        });
        m.on_event(&DetectorEvent::Similarity {
            step: 1,
            value: 0.5,
            threshold: 0.5,
            ops: 7,
        });
        assert_eq!(m.metrics.steps, 2);
        assert_eq!(m.metrics.judged_steps, 1);
        assert_eq!(m.metrics.compare_ops, 7);
    }

    // The switch the whole layer hangs on: NullObserver must opt out
    // at compile time while ordinary observers stay opted in.
    const _: () = assert!(!NullObserver::ACTIVE);
    const _: () = assert!(RecordingObserver::ACTIVE);

    #[test]
    fn null_observer_is_inactive() {
        let mut n = NullObserver;
        n.on_event(&DetectorEvent::PhaseEnd { step: 0, end: 0 });
        let mut seen = 0;
        {
            let mut f = FnObserver(|_: &DetectorEvent| seen += 1);
            f.on_event(&DetectorEvent::PhaseEnd { step: 0, end: 0 });
        }
        assert_eq!(seen, 1);
    }
}
